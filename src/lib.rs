//! Facade crate for the `oolong-datagroups` workspace.
//!
//! Re-exports the sub-crates so downstream users can depend on a single
//! crate. See [`datagroups`] for the paper's contribution (the modular
//! side-effect checker), [`syntax`] for the `oolong` language frontend,
//! [`prover`] for the Simplify-style theorem prover, and [`interp`] for the
//! reference interpreter with its runtime effect monitor.
//!
//! ```
//! use oolong::datagroups::{Checker, CheckOptions};
//! use oolong::syntax::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "group value
//!      field num in value
//!      proc bump(r) modifies r.value
//!      impl bump(r) { assume r != null ; r.num := r.num + 1 }",
//! )?;
//! let report = Checker::new(&program, CheckOptions::default())?.check_all();
//! assert!(report.all_verified());
//! # Ok(())
//! # }
//! ```
pub use datagroups;
pub use oolong_corpus as corpus;
pub use oolong_diagnose as diagnose;
pub use oolong_engine as engine;
pub use oolong_infer as infer;
pub use oolong_interp as interp;
pub use oolong_logic as logic;
pub use oolong_prover as prover;
pub use oolong_sema as sema;
pub use oolong_serve as serve;
pub use oolong_syntax as syntax;
