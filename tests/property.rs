//! Property-based tests over the whole pipeline.

use oolong::corpus::{extend_source, generate_source, GenConfig};
use oolong::interp::{included_locations, ExecConfig, Interp, Loc, RngOracle, Value};
use oolong::logic::{Atom, Formula, Term};
use oolong::prover::{prove, Budget, Outcome};
use oolong::sema::Scope;
use oolong::syntax::{parse_expr, parse_program, pretty, Expr};
use proptest::prelude::*;

// ----------------------------------------------------------- expression AST

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::ident("x")),
        Just(Expr::ident("y")),
        Just(Expr::Const(
            oolong::syntax::Const::Null,
            oolong::syntax::Span::DUMMY
        )),
        (0i64..100)
            .prop_map(|n| Expr::Const(oolong::syntax::Const::Int(n), oolong::syntax::Span::DUMMY)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::select(e, "f")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                op: oolong::syntax::BinOp::Add,
                lhs: Box::new(a),
                rhs: Box::new(b),
                span: oolong::syntax::Span::DUMMY,
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                op: oolong::syntax::BinOp::Eq,
                lhs: Box::new(a),
                rhs: Box::new(b),
                span: oolong::syntax::Span::DUMMY,
            }),
            inner.prop_map(|e| Expr::Unary {
                op: oolong::syntax::UnaryOp::Neg,
                operand: Box::new(e),
                span: oolong::syntax::Span::DUMMY,
            }),
        ]
    })
}

proptest! {
    /// Pretty-printing an expression and reparsing yields the same
    /// canonical print (print ∘ parse ∘ print = print).
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = pretty::print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("reparse of `{printed}` failed: {d}"));
        prop_assert_eq!(pretty::print_expr(&reparsed), printed);
    }
}

// -------------------------------------------------------- generated programs

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated programs are well-formed and round-trip through the
    /// pretty-printer.
    #[test]
    fn generated_programs_roundtrip(seed in 0u64..5_000) {
        let source = generate_source(seed, &GenConfig::default());
        let program = parse_program(&source).expect("generated source parses");
        Scope::analyze(&program).expect("generated source analyses");
        let printed = pretty::print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|d| panic!("reparse failed: {d}\n{printed}"));
        prop_assert_eq!(pretty::print_program(&reparsed), printed);
    }

    /// Extension sources are strict supersets that still analyse.
    #[test]
    fn extensions_analyse(seed in 0u64..2_000) {
        let base = generate_source(seed, &GenConfig::default());
        let ext = extend_source(&base, seed ^ 0xabcd, &GenConfig::default());
        prop_assert!(ext.starts_with(&base));
        let program = parse_program(&ext).expect("extension parses");
        Scope::analyze(&program).expect("extension analyses");
    }

    /// The interpreter is deterministic for a fixed seed.
    #[test]
    fn interpreter_is_deterministic(seed in 0u64..1_000, run_seed in 0u64..50) {
        let source = generate_source(seed, &GenConfig::default());
        let program = parse_program(&source).expect("parses");
        let scope = Scope::analyze(&program).expect("analyses");
        let Some((_, info)) = scope.impls().next() else { return Ok(()) };
        let name = scope.proc_info(info.proc).name.clone();
        let run = |s| {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(s));
            interp.run_proc_fresh(&name)
        };
        prop_assert_eq!(run(run_seed), run(run_seed));
    }
}

// ------------------------------------------------ prover stats invariants

/// The verification conditions of a generated cyclic-rep program (the
/// prover telemetry's stress shape: rep-inclusion axioms that can
/// instantiate forever).
fn cyclic_vcs(seed: u64) -> Vec<(Vec<Formula>, Formula)> {
    use oolong::datagroups::{CheckOptions, Checker};
    let source = oolong::corpus::generate_cyclic_source(seed);
    let program = parse_program(&source).expect("cyclic source parses");
    let checker = Checker::new(&program, CheckOptions::default()).expect("analyses");
    let impls: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    impls
        .into_iter()
        .map(|id| {
            let vc = checker.vc(id).expect("vc generates");
            (vc.hypotheses, vc.goal)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Prover stats are a pure function of (VC, budget): two runs of the
    /// same obligation agree on *every* counter, including the per-axiom
    /// profile. This is the contract that lets the engine cache stats and
    /// replay them from the event log on warm runs.
    #[test]
    fn prover_stats_are_deterministic(seed in 0u64..500) {
        let budget = Budget::tiny();
        for (hyps, goal) in cyclic_vcs(seed) {
            let first = prove(&hyps, &goal, &budget);
            let second = prove(&hyps, &goal, &budget);
            prop_assert_eq!(first.outcome, second.outcome);
            // `Stats` is `Eq`: this compares the scalar counters, the
            // exhausted dimension, and the full per-quantifier profile.
            prop_assert_eq!(first.stats, second.stats);
        }
    }

    /// Instantiation counts are monotone in the instantiation budget: the
    /// search is deterministic and a budget check only ever *cuts off* the
    /// search, so a run with a smaller `max_instances` performs a prefix
    /// of the work of a run with a larger one.
    #[test]
    fn instantiation_counts_are_monotone_in_budget(
        seed in 0u64..500,
        small in 4usize..40,
        extra in 1usize..200,
    ) {
        let mut lean = Budget::tiny();
        lean.max_instances = small;
        let mut roomy = lean.clone();
        roomy.max_instances = small + extra;
        for (hyps, goal) in cyclic_vcs(seed) {
            let starved = prove(&hyps, &goal, &lean);
            let fed = prove(&hyps, &goal, &roomy);
            prop_assert!(
                starved.stats.instances <= fed.stats.instances,
                "instances fell from {} to {} when max_instances grew {} -> {}",
                starved.stats.instances, fed.stats.instances,
                lean.max_instances, roomy.max_instances
            );
        }
    }
}

// ------------------------------------------- congruence closure vs naive

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The E-graph's congruence closure agrees with a naive fixpoint: for
    /// random equations over a small term universe, both decide the same
    /// equalities.
    #[test]
    fn egraph_matches_naive_congruence_closure(
        eqs in proptest::collection::vec((0usize..12, 0usize..12), 1..6)
    ) {
        use oolong::prover::EGraph;
        // Universe: constants a, b, c and one level of f-applications.
        let consts = ["a", "b", "c"];
        let mut universe: Vec<Term> = consts.iter().map(|c| Term::var(*c)).collect();
        for c in consts {
            universe.push(Term::uninterp("f", vec![Term::var(c)]));
        }
        for c in consts {
            universe.push(Term::uninterp(
                "f",
                vec![Term::uninterp("f", vec![Term::var(c)])],
            ));
        }
        let n = universe.len();

        // E-graph side.
        let mut eg = EGraph::new();
        let ids: Vec<_> = universe.iter().map(|t| eg.intern(t).unwrap()).collect();
        for &(i, j) in &eqs {
            eg.merge(ids[i % n], ids[j % n]).unwrap();
        }

        // Naive side: union-find + congruence fixpoint over the universe.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        };
        for &(i, j) in &eqs {
            union(&mut parent, i % n, j % n);
        }
        // Congruence: f(s) ~ f(t) when s ~ t, across ALL application pairs
        // (including cross-level, e.g. a ~ f(a) forces f(a) ~ f(f(a))).
        // Universe layout: 0..3 consts, 3..6 f(consts), 6..9 f(f(consts));
        // the argument of the application at index i is arg[i].
        let arg: Vec<usize> = vec![usize::MAX, usize::MAX, usize::MAX, 0, 1, 2, 3, 4, 5];
        loop {
            let mut changed = false;
            for i in 3..n {
                for j in 3..n {
                    if find(&mut parent, arg[i]) == find(&mut parent, arg[j])
                        && find(&mut parent, i) != find(&mut parent, j)
                    {
                        union(&mut parent, i, j);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    eg.same_class(ids[i], ids[j]),
                    find(&mut parent, i) == find(&mut parent, j),
                    "disagreement on {} ~ {} under {:?}",
                    universe[i], universe[j], eqs
                );
            }
        }
    }
}

// ------------------------------------------------ ground prover validity

/// A ground formula over variables `a`, `b` and constants `0`, `1`, `2`,
/// built from equalities and connectives.
#[derive(Debug, Clone)]
enum GF {
    Eq(u8, u8), // indices into the term universe
    Not(Box<GF>),
    And(Box<GF>, Box<GF>),
    Or(Box<GF>, Box<GF>),
}

/// Term universe: 0 => var a, 1 => var b, 2..=4 => constants 0, 1, 2.
fn gf_term(i: u8) -> Term {
    match i {
        0 => Term::var("a"),
        1 => Term::var("b"),
        n => Term::int(i64::from(n) - 2),
    }
}

fn gf_to_formula(f: &GF) -> Formula {
    match f {
        GF::Eq(i, j) => Formula::eq(gf_term(*i), gf_term(*j)),
        GF::Not(p) => Formula::not(gf_to_formula(p)),
        GF::And(p, q) => Formula::and(vec![gf_to_formula(p), gf_to_formula(q)]),
        GF::Or(p, q) => Formula::or(vec![gf_to_formula(p), gf_to_formula(q)]),
    }
}

/// Evaluates under an assignment of `a`, `b` to domain values; constants
/// map to themselves. Domain {0..4} suffices for the finite model property
/// of equality logic with two variables and three distinguished constants.
fn gf_eval(f: &GF, a: i64, b: i64) -> bool {
    fn value(i: u8, a: i64, b: i64) -> i64 {
        match i {
            0 => a,
            1 => b,
            n => i64::from(n) - 2,
        }
    }
    match f {
        GF::Eq(i, j) => value(*i, a, b) == value(*j, a, b),
        GF::Not(p) => !gf_eval(p, a, b),
        GF::And(p, q) => gf_eval(p, a, b) && gf_eval(q, a, b),
        GF::Or(p, q) => gf_eval(p, a, b) || gf_eval(q, a, b),
    }
}

fn arb_gf() -> impl Strategy<Value = GF> {
    let leaf = (0u8..5, 0u8..5).prop_map(|(i, j)| GF::Eq(i, j));
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| GF::Not(Box::new(p))),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| GF::And(Box::new(p), Box::new(q))),
            (inner.clone(), inner).prop_map(|(p, q)| GF::Or(Box::new(p), Box::new(q))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On ground equality formulas the prover is a decision procedure:
    /// `Proved` exactly when the formula is valid (checked by brute force
    /// over a sufficiently large finite domain).
    #[test]
    fn prover_decides_ground_equality_formulas(gf in arb_gf()) {
        let formula = gf_to_formula(&gf);
        let valid = (0i64..5).all(|a| (0i64..5).all(|b| gf_eval(&gf, a, b)));
        let proof = prove(&[], &formula, &Budget::default());
        if valid {
            prop_assert_eq!(proof.outcome, Outcome::Proved, "valid but not proved: {}", formula);
        } else {
            prop_assert_eq!(proof.outcome, Outcome::NotProved, "invalid but {:?}: {}", proof.outcome, formula);
        }
    }
}

// -------------------------------------------------- inclusion denotation

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The concrete inclusion denotation agrees with the axiomatised `≽`
    /// on random *restriction-respecting* stores (pivot links form an
    /// acyclic chain with unique values, as pivot uniqueness guarantees):
    /// the prover, given a ground description of the store's pivots,
    /// proves exactly the `Inc` facts the fixpoint computes.
    #[test]
    fn denotation_agrees_with_axioms(link01 in any::<bool>(), link12 in any::<bool>()) {
        let links: Vec<(usize, usize)> = [(0, 1, link01), (1, 2, link12)]
            .into_iter()
            .filter(|&(_, _, on)| on)
            .map(|(a, b, _)| (a, b))
            .collect();
        // Scope: stack of vectors, pivot vec: contents →vec elems.
        let program = parse_program(
            "group contents
             group elems
             field cnt in elems
             field vec in contents maps elems into contents",
        ).expect("parses");
        let scope = Scope::analyze(&program).expect("analyses");
        let vec_attr = scope.attr("vec").unwrap();
        let contents = scope.attr("contents").unwrap();

        // Build the store: 3 objects, pivot links per `links`.
        let mut store = oolong::interp::Store::new();
        let objs: Vec<_> = (0..3).map(|_| store.alloc()).collect();
        for &(from, to) in &links {
            store.write(Loc { obj: objs[from], attr: vec_attr }, Value::Obj(objs[to]));
        }

        // Ground description of the store for the prover.
        let mut fresh = oolong::logic::FreshGen::new();
        let mut hyps = oolong::datagroups::background::universal_background(true, false, &mut fresh);
        hyps.extend(oolong::datagroups::background::scope_background(&scope, &mut fresh));
        let obj_term = |o: oolong::interp::ObjId| Term::var(format!("o{}", o.0));
        for (i, &oi) in objs.iter().enumerate() {
            // Distinct objects, all alive, none null.
            hyps.push(Formula::neq(obj_term(oi), Term::null()));
            for &oj in &objs[i + 1..] {
                hyps.push(Formula::neq(obj_term(oi), obj_term(oj)));
            }
            let pivot_val = store.read(Loc { obj: oi, attr: vec_attr });
            let val_term = match pivot_val {
                Value::Obj(o) => obj_term(o),
                _ => Term::null(),
            };
            hyps.push(Formula::eq(
                Term::select(Term::store(), obj_term(oi), Term::attr("vec")),
                val_term,
            ));
        }

        // Check agreement for the contents group of object 0.
        let root = Loc { obj: objs[0], attr: contents };
        let denoted = included_locations(&scope, &store, root);
        for (_, info) in scope.attrs() {
            let _ = info;
        }
        for &target in &objs {
            for attr_name in ["contents", "elems", "cnt", "vec"] {
                let attr_id = scope.attr(attr_name).unwrap();
                let loc = Loc { obj: target, attr: attr_id };
                let goal = Formula::Atom(Atom::Inc {
                    store: Term::store(),
                    obj: obj_term(objs[0]),
                    attr: Term::attr("contents"),
                    obj2: obj_term(target),
                    attr2: Term::attr(attr_name),
                });
                let proof = prove(&hyps, &goal, &Budget::default());
                if denoted.contains(&loc) {
                    prop_assert_eq!(
                        proof.outcome, Outcome::Proved,
                        "denotation says {:?} ∈ contents closure but prover disagrees (links {:?})",
                        (target, attr_name), links
                    );
                } else {
                    // The axioms must not prove inclusions the concrete
                    // fixpoint rejects.
                    prop_assert_ne!(
                        proof.outcome, Outcome::Proved,
                        "prover claims {:?} included but the denotation rejects it (links {:?})",
                        (target, attr_name), links
                    );
                }
            }
        }
    }
}

// ------------------------------------------- e-graph trail round-tripping

/// Applies a random op sequence (interning applications and sums, merging,
/// disequating) to the E-graph. Stops at the first [`Conflict`] — the
/// trail must restore even a contradictory E-graph, so conflicted
/// prefixes stay in the sample population.
fn apply_trail_ops(
    eg: &mut oolong::prover::EGraph,
    pool: &mut Vec<Term>,
    ids: &mut Vec<oolong::prover::NodeId>,
    ops: &[(u64, usize, usize)],
) {
    for &(kind, i, j) in ops {
        let n = pool.len();
        match kind % 5 {
            0 => {
                let t = Term::uninterp("f", vec![pool[i % n]]);
                let Ok(id) = eg.intern(&t) else { return };
                pool.push(t);
                ids.push(id);
            }
            1 => {
                let t = Term::uninterp("g", vec![pool[i % n], pool[j % n]]);
                let Ok(id) = eg.intern(&t) else { return };
                pool.push(t);
                ids.push(id);
            }
            2 => {
                // Sums engage the eager arithmetic evaluator.
                let t = Term::add(pool[i % n], pool[j % n]);
                let Ok(id) = eg.intern(&t) else { return };
                pool.push(t);
                ids.push(id);
            }
            3 => {
                if eg.merge(ids[i % ids.len()], ids[j % ids.len()]).is_err() {
                    return;
                }
            }
            _ => {
                if eg
                    .assert_diseq(ids[i % ids.len()], ids[j % ids.len()])
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Base universe: free constants and small integers, pre-interned so
/// merges can hit both uninterpreted and evaluated classes.
fn trail_base(eg: &mut oolong::prover::EGraph) -> (Vec<Term>, Vec<oolong::prover::NodeId>) {
    let pool: Vec<Term> = vec![
        Term::var("a"),
        Term::var("b"),
        Term::var("c"),
        Term::int(0),
        Term::int(1),
        Term::int(2),
        Term::null(),
    ];
    let ids = pool.iter().map(|t| eg.intern(t).unwrap()).collect();
    (pool, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `push`/`pop` round-trips the full E-graph state: whatever happens
    /// between the checkpoint and the pop — new nodes, merges with
    /// congruence repair, arithmetic evaluation, disequations, even a
    /// conflict — the canonical state rendering afterwards is identical
    /// to the one before.
    #[test]
    fn egraph_push_pop_roundtrips(
        setup in proptest::collection::vec((0u64..255, 0usize..32, 0usize..32), 0..12),
        branch in proptest::collection::vec((0u64..255, 0usize..32, 0usize..32), 1..16),
    ) {
        use oolong::prover::EGraph;
        let mut eg = EGraph::new();
        let (mut pool, mut ids) = trail_base(&mut eg);
        apply_trail_ops(&mut eg, &mut pool, &mut ids, &setup);
        let before = eg.debug_state();
        let merges_before = eg.merge_count();
        let mark = eg.push();
        apply_trail_ops(&mut eg, &mut pool, &mut ids, &branch);
        eg.pop(mark);
        prop_assert_eq!(eg.debug_state(), before, "ops {:?} then {:?}", setup, branch);
        prop_assert_eq!(eg.merge_count(), merges_before);
    }

    /// Nested checkpoints unwind LIFO at arbitrary depths: popping any
    /// suffix of the mark stack restores exactly the state that was
    /// captured when the corresponding mark was taken.
    #[test]
    fn egraph_nested_push_pop_roundtrips(
        segments in proptest::collection::vec(
            proptest::collection::vec((0u64..255, 0usize..32, 0usize..32), 1..8),
            1..5,
        ),
        keep in 0usize..5,
    ) {
        use oolong::prover::EGraph;
        let mut eg = EGraph::new();
        let (mut pool, mut ids) = trail_base(&mut eg);
        let mut marks = Vec::new();
        let mut snapshots = Vec::new();
        for seg in &segments {
            snapshots.push(eg.debug_state());
            marks.push(eg.push());
            apply_trail_ops(&mut eg, &mut pool, &mut ids, seg);
        }
        // Pop back to a random retained depth, checking each level.
        let keep = keep % (marks.len() + 1);
        while marks.len() > keep {
            let mark = marks.pop().unwrap();
            let expected = snapshots.pop().unwrap();
            eg.pop(mark);
            prop_assert_eq!(
                eg.debug_state(), expected,
                "level {} of {:?}", marks.len(), segments
            );
        }
    }
}

// ------------------------------------------------------ hash-consed terms

use oolong::logic::{Cst, TermNode};

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        Just(Term::var("x")),
        Just(Term::var("y")),
        Just(Term::store()),
        Just(Term::store0()),
        Just(Term::null()),
        Just(Term::attr("f")),
        Just(Term::attr("grp")),
        (0i64..50).prop_map(Term::int),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Term::succ),
            inner.clone().prop_map(Term::neg),
            inner.clone().prop_map(Term::new_obj),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::mul(a, b)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(s, x, a)| Term::select(s, x, a)),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(s, x, a, v)| Term::update(s, x, a, v)),
            proptest::collection::vec(inner, 1..3).prop_map(|args| Term::uninterp("fn1", args)),
        ]
    })
}

/// Rebuilds `t` bottom-up through the public constructors, exactly as a
/// second independent construction of the same structural term would.
fn rebuild(t: Term) -> Term {
    match t.node() {
        TermNode::Var(v) => Term::var(*v),
        TermNode::Const(c) => Term::lit(*c),
        TermNode::App(f, args) => Term::app(*f, args.iter().map(|a| rebuild(*a)).collect()),
    }
}

/// A minimal recursive-descent parser for the `Display` rendering of
/// [`Term`] (the crate has no term parser; this one exists only to state
/// the round-trip property). Handles exactly the forms `arb_term`
/// produces: identifiers, integers, `null`, `#attr`, `t⁺`, `(a op b)`,
/// `head(args)` calls, and the store forms `s(x·a)` / `s(x·a := v)`.
fn parse_term(text: &str) -> Term {
    struct P {
        chars: Vec<char>,
        pos: usize,
    }
    impl P {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }
        fn skip_ws(&mut self) {
            while self.peek() == Some(' ') {
                self.pos += 1;
            }
        }
        fn eat(&mut self, c: char) -> bool {
            self.skip_ws();
            if self.peek() == Some(c) {
                self.pos += 1;
                true
            } else {
                false
            }
        }
        fn expect(&mut self, c: char) {
            assert!(self.eat(c), "expected `{c}` at {}", self.pos);
        }
        fn ident(&mut self) -> String {
            self.skip_ws();
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '$' || c == '!')
            {
                self.pos += 1;
            }
            assert!(self.pos > start, "expected identifier at {start}");
            self.chars[start..self.pos].iter().collect()
        }
        fn term(&mut self) -> Term {
            let mut t = self.primary();
            loop {
                self.skip_ws();
                if self.eat('⁺') {
                    t = Term::succ(t);
                } else if self.peek() == Some('(') {
                    // A parenthesized group after a *composite* term is
                    // always a select/update postfix (calls are consumed
                    // inside `primary`, where the head is a bare name).
                    t = self.store_postfix(t);
                } else {
                    return t;
                }
            }
        }
        /// Parses `(x·a)` or `(x·a := v)` after the head store term.
        fn store_postfix(&mut self, head: Term) -> Term {
            self.expect('(');
            let obj = self.term();
            self.expect('·');
            let attr = self.term();
            self.skip_ws();
            if self.eat(')') {
                Term::select(head, obj, attr)
            } else {
                self.expect(':');
                self.expect('=');
                let value = self.term();
                self.expect(')');
                Term::update(head, obj, attr, value)
            }
        }
        fn primary(&mut self) -> Term {
            self.skip_ws();
            match self.peek().expect("unexpected end of term") {
                '(' => {
                    self.expect('(');
                    let a = self.term();
                    self.skip_ws();
                    let op = self.chars[self.pos];
                    self.pos += 1;
                    let b = self.term();
                    self.expect(')');
                    match op {
                        '+' => Term::add(a, b),
                        '-' => Term::sub(a, b),
                        '*' => Term::mul(a, b),
                        other => panic!("unknown operator `{other}`"),
                    }
                }
                '#' => {
                    self.expect('#');
                    Term::attr(self.ident().as_str())
                }
                c if c.is_ascii_digit() => {
                    let mut n = 0i64;
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        n = n * 10 + (self.chars[self.pos] as i64 - '0' as i64);
                        self.pos += 1;
                    }
                    Term::int(n)
                }
                _ => {
                    let name = self.ident();
                    match name.as_str() {
                        "null" => return Term::null(),
                        "true" => return Term::lit(Cst::Bool(true)),
                        "false" => return Term::lit(Cst::Bool(false)),
                        _ => {}
                    }
                    self.skip_ws();
                    if self.peek() != Some('(') {
                        return Term::var(name.as_str());
                    }
                    // Either a call `f(a, b)` or a select/update whose
                    // head is the variable `name`: disambiguated by the
                    // separator after the first argument.
                    self.expect('(');
                    let first = self.term();
                    self.skip_ws();
                    if self.peek() == Some('·') {
                        self.expect('·');
                        let attr = self.term();
                        self.skip_ws();
                        let head = Term::var(name.as_str());
                        if self.eat(')') {
                            return Term::select(head, first, attr);
                        }
                        self.expect(':');
                        self.expect('=');
                        let value = self.term();
                        self.expect(')');
                        return Term::update(head, first, attr, value);
                    }
                    let mut args = vec![first];
                    while self.eat(',') {
                        args.push(self.term());
                    }
                    self.expect(')');
                    match name.as_str() {
                        "neg" => Term::neg(args.remove(0)),
                        "new" => Term::new_obj(args.remove(0)),
                        _ => Term::uninterp(name.as_str(), args),
                    }
                }
            }
        }
    }
    let mut p = P {
        chars: text.chars().collect(),
        pos: 0,
    };
    let t = p.term();
    p.skip_ws();
    assert_eq!(p.pos, p.chars.len(), "trailing input in `{text}`");
    t
}

proptest! {
    /// Interning is canonical: constructing the same structural term a
    /// second time yields the *same arena id*, so structural equality and
    /// id equality coincide.
    #[test]
    fn hash_consing_is_canonical(t in arb_term()) {
        let again = rebuild(t);
        prop_assert_eq!(t.id(), again.id());
        prop_assert_eq!(t, again);
    }

    /// The content digest (what fingerprints hash) is a function of
    /// structure alone: independently rebuilt terms hash identically.
    #[test]
    fn term_digest_is_structural(t in arb_term()) {
        use oolong::logic::stable_hash128;
        prop_assert_eq!(stable_hash128(&t), stable_hash128(&rebuild(t)));
    }

    /// Display round-trip: parsing a term's rendering re-interns the very
    /// same arena node.
    #[test]
    fn term_display_roundtrip(t in arb_term()) {
        let printed = t.to_string();
        let reparsed = parse_term(&printed);
        prop_assert_eq!(t.id(), reparsed.id(), "`{}` reparsed as `{}`", printed, reparsed);
    }
}

/// The interner-boundary gate: raw-string construction of interned
/// payloads must funnel through `Symbol::intern` (via the `Into<Symbol>`
/// constructors). Scans crate sources for `FnSym::Uninterp(`/`Cst::Attr(`
/// applied to string expressions outside the two modules that own the
/// representation.
#[test]
fn interned_payloads_are_not_built_from_raw_strings() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut offenders = Vec::new();
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable source tree") {
            let path = entry.expect("dirent").path();
            if path.is_dir() {
                // Vendored dev-dependency stubs don't touch the logic.
                if path.ends_with("crates/proptest")
                    || path.ends_with("crates/rand")
                    || path.ends_with("crates/criterion")
                {
                    continue;
                }
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = path.strip_prefix(path.ancestors().nth(4).unwrap()).unwrap();
            let rel = rel.to_string_lossy().replace('\\', "/");
            // The representation owners may mention the raw constructors.
            if rel.ends_with("logic/src/term.rs") || rel.ends_with("logic/src/intern.rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable source");
            for (lineno, line) in text.lines().enumerate() {
                for needle in ["FnSym::Uninterp(", "Cst::Attr("] {
                    let Some(at) = line.find(needle) else {
                        continue;
                    };
                    let tail = &line[at + needle.len()..];
                    // Only the constructor's argument span matters; text
                    // past the closing paren belongs to the surrounding
                    // expression (e.g. a match arm destructuring the
                    // variant).
                    let span = tail.split(')').next().unwrap_or(tail);
                    // Symbol-typed payloads (bindings, `*name`, `sym`,
                    // `Symbol::intern(..)`) are fine; string-expression
                    // payloads are the violation.
                    let raw = span.trim_start().starts_with('"')
                        || span.contains(".to_string()")
                        || span.contains("String::from")
                        || span.contains("format!")
                        || span.contains(".into()");
                    if raw {
                        offenders.push(format!("{rel}:{}: {}", lineno + 1, line.trim()));
                    }
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw-string construction of interned payloads outside the interner:\n{}",
        offenders.join("\n")
    );
}
