//! The pattern-policy gate: every background axiom carries a *declared*
//! activation policy.
//!
//! Heuristic trigger inference (`oolong_prover::infer_triggers`) is a
//! fallback for user-level quantifiers only. The background predicates are
//! ours — we know exactly which terms each axiom should fire on and when —
//! so every quantified background axiom must declare its PATS/MPAT
//! patterns and scheduling phase through `background::declare`, the single
//! constructor that keeps the formula's trigger list and the scheduler's
//! policy in sync. Two layers enforce this:
//!
//! 1. A **source scan** of `crates/core/src/background.rs`: the only
//!    permitted `Formula::forall` call site is inside `fn declare` itself.
//!    A new axiom written with a raw `Formula::forall` fails this test
//!    with the offending line number, before any behavioural symptom.
//! 2. A **runtime sweep** of every corpus program (both checker modes,
//!    both language levels reachable from the corpus): each background
//!    axiom's policy either declares at least one pattern, or the axiom is
//!    ground — a quantifier-free fact with nothing to match. No quantified
//!    axiom may reach the prover pattern-less, where it would silently
//!    fall back to heuristic inference (or worse, to unguided saturation).

use oolong::corpus;
use oolong::datagroups::{CheckOptions, Checker};
use oolong::logic::Formula;
use oolong::syntax::parse_program;

/// Whether a quantifier occurs anywhere in the formula.
fn has_quantifier(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => false,
        Formula::Not(inner) => has_quantifier(inner),
        Formula::And(parts) | Formula::Or(parts) => parts.iter().any(has_quantifier),
        Formula::Implies(a, b) | Formula::Iff(a, b) => has_quantifier(a) || has_quantifier(b),
        Formula::Labeled(_, inner) => has_quantifier(inner),
        Formula::Forall(..) | Formula::Exists(..) => true,
    }
}

#[test]
fn background_quantifiers_are_built_only_through_declare() {
    let source = include_str!("../crates/core/src/background.rs");

    // Locate the span of `fn declare`: from its signature to the next
    // top-level (column-zero) item.
    let decl_start = source
        .lines()
        .position(|l| l.starts_with("fn declare("))
        .expect("background.rs defines `fn declare` — the gate scans for it by name");
    let decl_end = decl_start
        + 1
        + source
            .lines()
            .skip(decl_start + 1)
            .position(|l| {
                !l.is_empty() && !l.starts_with(' ') && !l.starts_with('}') && !l.starts_with("//")
            })
            .unwrap_or(0);

    let mut offenders = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if !line.contains("Formula::forall") && !line.contains("Formula::Forall") {
            continue;
        }
        if i > decl_start && i < decl_end {
            continue; // the one sanctioned constructor call
        }
        offenders.push(format!(
            "  crates/core/src/background.rs:{}: {}",
            i + 1,
            line.trim()
        ));
    }
    assert!(
        offenders.is_empty(),
        "background axioms must declare their patterns through `declare`, \
         never a raw quantifier constructor:\n{}",
        offenders.join("\n")
    );

    // And the fallback stays out of the background entirely.
    let inference: Vec<String> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("infer_triggers"))
        .map(|(i, l)| format!("  crates/core/src/background.rs:{}: {}", i + 1, l.trim()))
        .collect();
    assert!(
        inference.is_empty(),
        "heuristic trigger inference is user-level only; the background \
         must declare:\n{}",
        inference.join("\n")
    );
}

#[test]
fn every_background_axiom_declares_a_policy() {
    for p in corpus::all() {
        for naive in [false, true] {
            let program = parse_program(p.source).expect("corpus program parses");
            let options = CheckOptions {
                naive,
                ..CheckOptions::default()
            };
            let checker = Checker::new(&program, options).expect("corpus program analyses");
            for (name, formula, policy) in checker.background_policies() {
                if policy.is_declared() {
                    continue;
                }
                assert!(
                    !has_quantifier(&formula),
                    "{} (naive={naive}): background axiom `{name}` is quantified \
                     but declares no PATS/MPAT patterns — it would fall back to \
                     heuristic trigger inference",
                    p.name
                );
            }
        }
    }
}

#[test]
fn declared_triggers_are_the_formula_triggers() {
    // `declare` guarantees the policy's trigger list *is* the quantifier's
    // trigger list; this pins the invariant the scheduler relies on at the
    // API boundary, where a future refactor of `declare` would surface.
    for p in corpus::all() {
        let program = parse_program(p.source).expect("corpus program parses");
        let checker =
            Checker::new(&program, CheckOptions::default()).expect("corpus program analyses");
        for (name, formula, policy) in checker.background_policies() {
            if let Formula::Forall(_, triggers, _) = &formula {
                assert_eq!(
                    triggers,
                    &policy.all_triggers(),
                    "{}: axiom `{name}`: the prover's trigger list and the \
                     declared policy disagree",
                    p.name
                );
            }
        }
    }
}
