//! Integration tests for the resident verification service: concurrent
//! clients observe the batch engine's verdicts (and warm requests make
//! zero prover calls, established by the per-response event lists), an
//! overloaded server answers *every* request with attributed degraded
//! verdicts instead of hanging, the `check` response reuses the CLI's
//! `check --json` schema byte for byte, and a full scripted session
//! (check → warm recheck → explain → stats → shutdown) runs clean.

use oolong::engine::{BatchUnit, Engine, EngineOptions, Json};
use oolong::serve::{response_ok, Client, ServeOptions, Server, ServerHandle};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

/// A scratch directory unique to one test (socket, cache, event log).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oolong-serve-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spawn_server(dir: &std::path::Path, options: ServeOptions) -> ServerHandle {
    Server::bind(ServeOptions {
        socket: dir.join("oolong.sock"),
        quiet: true,
        ..options
    })
    .expect("server binds")
    .spawn()
}

fn corpus_units() -> Vec<BatchUnit> {
    oolong::corpus::all()
        .iter()
        .map(|p| BatchUnit {
            name: format!("corpus:{}", p.name),
            source: p.source.to_string(),
        })
        .collect()
}

/// The `(unit, proc) → verdict label` map of a response's `result`.
fn verdicts_of(unit: &str, response: &Json) -> Vec<(String, String, String)> {
    response
        .get("result")
        .and_then(|r| r.get("impls"))
        .and_then(Json::as_array)
        .expect("result.impls")
        .iter()
        .map(|rep| {
            (
                unit.to_string(),
                rep.get("proc")
                    .and_then(Json::as_str)
                    .expect("proc")
                    .to_string(),
                rep.get("verdict")
                    .and_then(Json::as_str)
                    .expect("verdict")
                    .to_string(),
            )
        })
        .collect()
}

/// Counts events of one kind in a response's `events` member.
fn count_events(response: &Json, kind: &str) -> usize {
    response
        .get("events")
        .and_then(Json::as_array)
        .expect("events member")
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some(kind))
        .count()
}

/// Counts actual prover invocations in a response: `prover_profile`
/// events that are *not* replays of cached statistics.
fn prover_calls(response: &Json) -> usize {
    response
        .get("events")
        .and_then(Json::as_array)
        .expect("events member")
        .iter()
        .filter(|e| {
            e.get("event").and_then(Json::as_str) == Some("prover_profile")
                && e.get("cached") != Some(&Json::Bool(true))
        })
        .count()
}

/// Eight parallel clients checking the whole paper corpus — with
/// overlapping cold and warm rounds — observe exactly the verdicts the
/// batch engine computes, and every request of the warm round is served
/// without a single prover call.
#[test]
fn concurrent_clients_match_batch_verdicts() {
    let dir = scratch("equiv");
    let handle = spawn_server(
        &dir,
        ServeOptions {
            cache_dir: Some(dir.join("cache")),
            workers: 4,
            ..ServeOptions::default()
        },
    );

    let units = corpus_units();
    const CLIENTS: usize = 8;
    let warm_gate = Arc::new(Barrier::new(CLIENTS));
    let observed: Vec<_> = std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for client_id in 0..CLIENTS {
            let socket = handle.socket().to_path_buf();
            let units = &units;
            let warm_gate = warm_gate.clone();
            threads.push(scope.spawn(move || {
                let mut client = Client::connect(&socket).expect("connects");
                let mut seen = Vec::new();
                // Cold round: all clients race over the same obligations
                // in different orders, so cache misses overlap.
                for i in 0..units.len() {
                    let unit = &units[(i + client_id) % units.len()].name;
                    let response = client
                        .request(&format!(r#"{{"cmd":"check","unit":"{unit}"}}"#))
                        .expect("response");
                    assert!(response_ok(&response), "cold {unit}: {response:?}");
                    seen.extend(verdicts_of(unit, &response));
                }
                // Warm round: every cold request has completed, so every
                // fingerprinted obligation is cached — zero prover calls.
                // (Restriction violations carry no fingerprint and are
                // recomputed each run by design; they never call the
                // prover either.)
                warm_gate.wait();
                let mut hits = 0usize;
                for unit in units {
                    let response = client
                        .request(&format!(r#"{{"cmd":"check","unit":"{}"}}"#, unit.name))
                        .expect("response");
                    assert!(response_ok(&response), "warm {}: {response:?}", unit.name);
                    assert_eq!(
                        prover_calls(&response),
                        0,
                        "warm {} ran the prover: {response:?}",
                        unit.name
                    );
                    for kind in ["verified", "refuted", "fuel_exhausted"] {
                        assert_eq!(
                            count_events(&response, kind),
                            0,
                            "warm {} ran the prover: {response:?}",
                            unit.name
                        );
                    }
                    hits += count_events(&response, "cache_hit");
                    seen.extend(verdicts_of(&unit.name, &response));
                }
                assert!(hits > 0, "the warm round was served from the cache");
                seen
            }));
        }
        threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });

    // Reference: the batch engine over the same units with the same
    // (default) options — what `oolong batch --json` prints.
    let engine = Engine::new(EngineOptions::default()).expect("engine");
    let report = engine.check_batch(&units);
    let expected: BTreeMap<(String, String), String> = report
        .obligations
        .iter()
        .map(|o| {
            (
                (o.unit.clone(), o.proc_name.clone()),
                o.verdict.label().to_string(),
            )
        })
        .collect();

    let mut checked = 0usize;
    for verdicts in &observed {
        for (unit, proc, label) in verdicts {
            let want = expected
                .get(&(unit.clone(), proc.clone()))
                .unwrap_or_else(|| panic!("unexpected obligation {unit}/{proc}"));
            assert_eq!(
                label, want,
                "{unit}/{proc}: server said {label}, batch engine said {want}"
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        CLIENTS * 2 * expected.len(),
        "every client observed every obligation twice"
    );

    Client::connect(handle.socket())
        .expect("connects")
        .request(r#"{"cmd":"shutdown"}"#)
        .expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An overloaded server — queue bound 1, one worker, starved degraded
/// budget — still answers 100% of requests: no hangs, no dropped
/// responses, and every degraded `unknown(budget)` verdict carries its
/// divergence attribution.
#[test]
fn overload_degrades_instead_of_collapsing() {
    let dir = scratch("overload");
    let handle = spawn_server(
        &dir,
        ServeOptions {
            workers: 1,
            queue: 1,
            events: Some(dir.join("events.jsonl")),
            ..ServeOptions::default()
        },
    );

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 5;
    let start = Arc::new(Barrier::new(CLIENTS));
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for _ in 0..CLIENTS {
            let socket = handle.socket().to_path_buf();
            let start = start.clone();
            threads.push(scope.spawn(move || {
                let mut client = Client::connect(&socket).expect("connects");
                start.wait();
                (0..REQUESTS)
                    .map(|i| {
                        client
                            .request(&format!(
                                r#"{{"id":{i},"cmd":"check","unit":"corpus:example3"}}"#
                            ))
                            .expect("every request is answered")
                    })
                    .collect::<Vec<_>>()
            }));
        }
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect()
    });

    assert_eq!(responses.len(), CLIENTS * REQUESTS, "100% answered");
    let mut degraded = 0usize;
    let mut verdicts: BTreeMap<String, usize> = BTreeMap::new();
    for response in &responses {
        assert!(
            response_ok(response),
            "an overloaded request errored: {response:?}"
        );
        let is_degraded = matches!(response.get("degraded"), Some(Json::Bool(true)));
        degraded += usize::from(is_degraded);
        for (_, _, label) in verdicts_of("corpus:example3", response) {
            *verdicts.entry(label).or_default() += 1;
        }
        if is_degraded {
            // A degraded unknown is still attributed: the divergence
            // member names the axioms that consumed the tiny budget.
            for rep in response
                .get("result")
                .and_then(|r| r.get("impls"))
                .and_then(Json::as_array)
                .expect("impls")
            {
                if rep.get("verdict").and_then(Json::as_str) == Some("unknown") {
                    let culprits = rep
                        .get("divergence")
                        .and_then(|d| d.get("culprits"))
                        .and_then(Json::as_array)
                        .expect("degraded unknown carries divergence");
                    assert!(!culprits.is_empty(), "culprits are named");
                }
            }
        }
    }
    assert!(
        degraded > 0,
        "8 clients × 5 requests against queue(1)/workers(1) must overflow admission"
    );
    assert!(
        verdicts.contains_key("verified"),
        "admitted requests verify under the full budget: {verdicts:?}"
    );

    // The shared cache stores verdicts per (VC, budget) fingerprint, so
    // degraded unknowns never shadow full-budget verdicts: by the end the
    // full-budget entry exists and a final request verifies.
    let mut client = Client::connect(handle.socket()).expect("connects");
    let last = client
        .request(r#"{"cmd":"check","unit":"corpus:example3"}"#)
        .expect("response");
    if !matches!(last.get("degraded"), Some(Json::Bool(true))) {
        assert_eq!(
            verdicts_of("corpus:example3", &last)[0].2,
            "verified",
            "full-budget verdict survives overload"
        );
    }

    let stats = client.request(r#"{"cmd":"stats"}"#).expect("stats");
    let requests = stats
        .get("result")
        .and_then(|r| r.get("requests"))
        .expect("requests");
    assert_eq!(
        requests.get("degraded").and_then(Json::as_u64),
        Some(degraded as u64),
        "the stats degraded counter matches the responses"
    );
    client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Renders the type skeleton of a JSON value — the same rendering the
/// CLI golden tests pin, so serve responses are checked against the
/// *identical* snapshot files.
fn schema(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => {
            let _ = writeln!(out, "{pad}null");
        }
        Json::Bool(_) => {
            let _ = writeln!(out, "{pad}bool");
        }
        Json::Int(_) => {
            let _ = writeln!(out, "{pad}int");
        }
        Json::Float(_) => {
            let _ = writeln!(out, "{pad}float");
        }
        Json::Str(_) => {
            let _ = writeln!(out, "{pad}str");
        }
        Json::Array(items) => match items.first() {
            None => {
                let _ = writeln!(out, "{pad}array (empty)");
            }
            Some(first) => {
                let _ = writeln!(out, "{pad}array of:");
                schema(first, indent + 1, out);
            }
        },
        Json::Object(members) => {
            let _ = writeln!(out, "{pad}object:");
            for (key, member) in members {
                let _ = writeln!(out, "{pad}  {key}:");
                schema(member, indent + 2, out);
            }
        }
    }
}

/// The `check` response's `result` member is byte-compatible with
/// `oolong check --json`: it matches the same golden schema snapshot the
/// CLI output is pinned to.
#[test]
fn check_response_matches_cli_golden_schema() {
    let dir = scratch("schema");
    let handle = spawn_server(&dir, ServeOptions::default());
    let mut client = Client::connect(handle.socket()).expect("connects");
    let response = client
        .request(r#"{"cmd":"check","unit":"corpus:example3","options":{"max_instances":20}}"#)
        .expect("response");
    assert!(response_ok(&response));
    let result = response.get("result").expect("result member");

    let mut actual = String::new();
    schema(result, 0, &mut actual);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/check_example3_starved.schema.txt"
    );
    let expected = std::fs::read_to_string(path).expect("golden snapshot");
    assert_eq!(
        actual, expected,
        "serve `check` result drifted from the CLI `check --json` schema\nactual:\n{actual}"
    );

    client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `infer` response's `result` member is byte-compatible with
/// `oolong infer --json`: it matches the same golden schema snapshot the
/// CLI output is pinned to.
#[test]
fn infer_response_matches_cli_golden_schema() {
    let dir = scratch("infer-schema");
    let handle = spawn_server(&dir, ServeOptions::default());
    let mut client = Client::connect(handle.socket()).expect("connects");
    let response = client
        .request(r#"{"cmd":"infer","unit":"stripped:example1"}"#)
        .expect("response");
    assert!(response_ok(&response));
    let result = response.get("result").expect("result member");

    let mut actual = String::new();
    schema(result, 0, &mut actual);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/infer_stripped.schema.txt"
    );
    let expected = std::fs::read_to_string(path).expect("golden snapshot");
    assert_eq!(
        actual, expected,
        "serve `infer` result drifted from the CLI `infer --json` schema\nactual:\n{actual}"
    );

    client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One scripted session end to end: cold check, warm recheck (zero
/// prover calls), explain with a confirmed diagnosis, stats consistent
/// with the session, shutdown. The server event log survives on disk
/// with one flushed line per event.
#[test]
fn scripted_session_end_to_end() {
    let dir = scratch("session");
    let events = dir.join("events.jsonl");
    let handle = spawn_server(
        &dir,
        ServeOptions {
            cache_dir: Some(dir.join("cache")),
            events: Some(events.clone()),
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(handle.socket()).expect("connects");

    let cold = client
        .request(r#"{"id":1,"cmd":"check","unit":"corpus:example1"}"#)
        .expect("cold check");
    assert!(response_ok(&cold));
    assert_eq!(count_events(&cold, "verified"), 1, "cold run proves");

    let warm = client
        .request(r#"{"id":2,"cmd":"check","unit":"corpus:example1"}"#)
        .expect("warm check");
    assert!(response_ok(&warm));
    assert_eq!(count_events(&warm, "cache_hit"), 1, "warm run hits");
    assert_eq!(prover_calls(&warm), 0, "no prover call");

    let explain = client
        .request(
            r#"{"id":3,"cmd":"explain","unit":"corpus:section31_bad_call","proc":"bad_caller"}"#,
        )
        .expect("explain");
    assert!(response_ok(&explain));
    let rep = explain
        .get("result")
        .and_then(|r| r.get("impls"))
        .and_then(Json::as_array)
        .and_then(|impls| impls.first().cloned())
        .expect("the filtered impl");
    assert_eq!(
        rep.get("obligation_kind").and_then(Json::as_str),
        Some("owner-exclusion")
    );
    assert_eq!(
        rep.get("diagnosis")
            .and_then(|d| d.get("replay"))
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("confirmed"),
        "the diagnosis replay confirms the violation"
    );

    let infer = client
        .request(r#"{"id":4,"cmd":"infer","unit":"stripped:stack_module"}"#)
        .expect("infer");
    assert!(response_ok(&infer));
    let inferred = infer.get("result").expect("result");
    assert_eq!(inferred.get("verified"), Some(&Json::Bool(true)));
    assert!(
        inferred
            .get("proposals")
            .and_then(Json::as_array)
            .is_some_and(|ps| !ps.is_empty()),
        "the stripped unit needs proposals"
    );

    let stats = client.request(r#"{"id":5,"cmd":"stats"}"#).expect("stats");
    let result = stats.get("result").expect("result");
    let requests = result.get("requests").expect("requests");
    assert_eq!(requests.get("received").and_then(Json::as_u64), Some(5));
    assert_eq!(requests.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(
        requests
            .get("by_cmd")
            .and_then(|b| b.get("infer"))
            .and_then(Json::as_u64),
        Some(1),
        "the stats counters track infer requests"
    );
    let engine = result.get("engine").expect("engine section");
    assert!(
        engine.get("cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "the warm check hit the shared cache"
    );
    let store = result.get("store").expect("store section");
    assert!(
        store
            .get("disk_entries")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "verdicts were persisted to the disk tier"
    );

    let bye = client
        .request(r#"{"id":6,"cmd":"shutdown"}"#)
        .expect("shutdown");
    assert!(response_ok(&bye));
    handle.join().expect("clean shutdown");

    // The event log was flushed line by line while the server ran.
    let log = std::fs::read_to_string(&events).expect("event log exists");
    let kinds: Vec<_> = log
        .lines()
        .map(|line| {
            oolong::engine::json::parse(line)
                .expect("event line parses")
                .get("event")
                .and_then(Json::as_str)
                .expect("event kind")
                .to_string()
        })
        .collect();
    assert!(kinds.contains(&"verified".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"cache_hit".to_string()), "{kinds:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The two obligation kinds added for invariants and read effects flow
/// over the daemon: a seeded invariant violation and a seeded uncovered
/// read (sent as inline units) are refuted, their explain responses name
/// the new kinds with interpreter-confirmed diagnoses, and a repeated
/// warm explain returns a byte-identical result.
#[test]
fn new_obligation_kinds_served_end_to_end() {
    let dir = scratch("new-kinds");
    let handle = spawn_server(
        &dir,
        ServeOptions {
            cache_dir: Some(dir.join("cache")),
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(handle.socket()).expect("connects");

    use oolong::corpus::{generate_seeded_violation_with, SeededBug};
    let cases = [
        (SeededBug::BrokenInvariant, "invariant-preserved"),
        (SeededBug::UncoveredRead, "reads-violation"),
    ];
    for (i, (bug, kind)) in cases.iter().enumerate() {
        let v = generate_seeded_violation_with(7, *bug);
        let unit = format!(
            r#"{{"name":"seeded-{i}.oo","source":{}}}"#,
            Json::Str(v.source.clone()).render()
        );
        let request = format!(r#"{{"id":{i},"cmd":"explain","unit":{unit}}}"#);
        let cold = client.request(&request).expect("explain");
        assert!(response_ok(&cold), "{bug:?}: {cold:?}");
        let rep = cold
            .get("result")
            .and_then(|r| r.get("impls"))
            .and_then(Json::as_array)
            .and_then(|impls| {
                impls
                    .iter()
                    .find(|r| r.get("proc").and_then(Json::as_str) == Some(&v.proc_name))
                    .cloned()
            })
            .unwrap_or_else(|| panic!("{bug:?}: seeded impl in response"));
        assert_eq!(
            rep.get("obligation_kind").and_then(Json::as_str),
            Some(*kind),
            "{bug:?}: the daemon names the new kind"
        );
        assert_eq!(
            rep.get("diagnosis")
                .and_then(|d| d.get("replay"))
                .and_then(|r| r.get("status"))
                .and_then(Json::as_str),
            Some("confirmed"),
            "{bug:?}: the replay confirms over the daemon"
        );
        let warm = client.request(&request).expect("warm explain");
        // Identical bytes modulo the cache_hit flag, which truthfully
        // flips on the warm round.
        let normalize = |r: &Json| {
            r.render()
                .replace("\"cache_hit\":true", "\"cache_hit\":false")
        };
        assert_eq!(
            cold.get("result").map(&normalize),
            warm.get("result").map(&normalize),
            "{bug:?}: warm explain result is byte-identical"
        );
        assert_eq!(
            prover_calls(&warm),
            0,
            "{bug:?}: warm run makes no prover call"
        );
    }

    let bye = client
        .request(r#"{"id":9,"cmd":"shutdown"}"#)
        .expect("shutdown");
    assert!(response_ok(&bye));
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed and unanswerable requests get error responses, not dropped
/// connections; the session stays usable afterwards.
#[test]
fn errors_are_answered_in_band() {
    let dir = scratch("errors");
    let handle = spawn_server(&dir, ServeOptions::default());
    let mut client = Client::connect(handle.socket()).expect("connects");

    for bad in [
        "not json at all",
        r#"{"cmd":"frobnicate"}"#,
        r#"{"cmd":"check"}"#,
        r#"{"cmd":"check","unit":"corpus:no_such_program"}"#,
        r#"{"cmd":"check","unit":{"name":"inline","source":"group g\nfield f in"}}"#,
    ] {
        let response = client.request(bad).expect("answered");
        assert!(
            !response_ok(&response),
            "`{bad}` should be an error: {response:?}"
        );
        assert!(
            response.get("error").and_then(Json::as_str).is_some(),
            "`{bad}` carries an error message"
        );
    }

    // The session is still alive and serves a real request.
    let good = client
        .request(r#"{"cmd":"check","unit":"corpus:example1"}"#)
        .expect("alive");
    assert!(response_ok(&good));

    client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
