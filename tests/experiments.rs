//! The experiment suite: every empirical claim of the paper, as a test.
//!
//! The experiment ids (E1–E10) are defined in `DESIGN.md`; `EXPERIMENTS.md`
//! records the paper-vs-measured summary. Benchmarks regenerating the
//! timing-flavoured experiments live in `crates/bench`.

use oolong::corpus::{self, paper};
use oolong::datagroups::{CheckOptions, Checker, Verdict};
use oolong::interp::{ExecConfig, Interp, RngOracle, RunOutcome, WrongKind};
use oolong::prover::Budget;
use oolong::sema::{closure_for_impl, subset_program, Scope};
use oolong::syntax::{parse_program, pretty};

fn check_with(source: &str, options: CheckOptions) -> oolong::datagroups::Report {
    let program = parse_program(source).expect("parses");
    Checker::new(&program, options)
        .expect("analyses")
        .check_all()
}

fn check(source: &str) -> oolong::datagroups::Report {
    check_with(source, CheckOptions::default())
}

fn label(report: &oolong::datagroups::Report, proc: &str) -> String {
    report
        .for_proc(proc)
        .expect("proc checked")
        .verdict
        .label()
        .to_string()
}

// --------------------------------------------------------------------- E1

/// E1 (Figures 0–1): the grammar parses every corpus program and
/// pretty-printing is a parser fixpoint.
#[test]
fn e1_grammar_roundtrip() {
    for p in corpus::all() {
        let program =
            parse_program(p.source).unwrap_or_else(|e| panic!("{} does not parse: {e}", p.name));
        let printed = pretty::print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{} does not reparse: {e}\n{printed}", p.name));
        assert_eq!(
            pretty::print_program(&reparsed),
            printed,
            "{}: pretty-printing is not a fixpoint",
            p.name
        );
    }
}

// --------------------------------------------------------------------- E2

/// E2 (§3.0): under the paper's restrictions, `q` verifies in the
/// interface scope AND keeps verifying when the pivot declaration enters
/// the scope, while the leaking `impl m` is rejected syntactically.
#[test]
fn e2_pivot_uniqueness_repairs_q() {
    let small = check(paper::SECTION30_Q.source);
    assert_eq!(label(&small, "q"), "verified");

    let full = check(paper::SECTION30_FULL.source);
    assert_eq!(label(&full, "q"), "verified", "scope monotonicity for q");
    assert_eq!(label(&full, "m"), "restriction violation");
}

/// E2 (§3.0): the naive closed-world baseline passes `q` in the small
/// scope, then degrades its verdict in the larger scope — the scope
/// monotonicity violation the paper opens with — and happily accepts the
/// pivot-leaking `impl m`.
#[test]
fn e2_naive_violates_scope_monotonicity() {
    let naive = CheckOptions {
        naive: true,
        ..CheckOptions::default()
    };
    let small = check_with(paper::SECTION30_Q.source, naive.clone());
    assert_eq!(label(&small, "q"), "verified");

    let full = check_with(paper::SECTION30_FULL.source, naive);
    assert_ne!(label(&full, "q"), "verified", "naive q must degrade");
    assert_eq!(
        label(&full, "m"),
        "verified",
        "naive does not police the leak"
    );
}

// --------------------------------------------------------------------- E3

/// E3 (§3.1): `w` verifies thanks to the owner-exclusion assumption on
/// entry, in both the small scope and the scope with the pivot; the call
/// site `w(st, st.vec)` is rejected.
#[test]
fn e3_owner_exclusion() {
    let small = check(paper::SECTION31_W.source);
    assert_eq!(label(&small, "w"), "verified");

    let full = check(paper::SECTION31_BAD_CALL.source);
    assert_eq!(label(&full, "w"), "verified", "scope monotonicity for w");
    assert_ne!(
        label(&full, "bad_caller"),
        "verified",
        "owner exclusion rejects the call"
    );
}

/// E3 (§3.1): without owner exclusion the bad call site passes the naive
/// checker, and the interpreter observes the owner-exclusion breach
/// dynamically.
#[test]
fn e3_naive_misses_the_bad_call() {
    let naive = CheckOptions {
        naive: true,
        ..CheckOptions::default()
    };
    let full = check_with(paper::SECTION31_BAD_CALL.source, naive);
    assert_eq!(label(&full, "bad_caller"), "verified");

    let program = parse_program(paper::SECTION31_BAD_CALL.source).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    let config = ExecConfig {
        check_owner_exclusion: true,
        ..ExecConfig::default()
    };
    let mut interp = Interp::new(&scope, config, RngOracle::seeded(0));
    match interp.run_proc_fresh("bad_caller") {
        RunOutcome::Wrong(w) => assert_eq!(w.kind, WrongKind::OwnerExclusion),
        other => panic!("expected dynamic owner-exclusion breach, got {other:?}"),
    }
}

// --------------------------------------------------------------------- E4

/// E4 (§5, first example): `impl p` verifies — the three proof
/// obligations (callee license via fieldwise reflexivity, owner exclusion
/// via axiom (7), the frame of `t.f`) all discharge.
#[test]
fn e4_example1_verifies() {
    let report = check(paper::EXAMPLE1.source);
    assert_eq!(label(&report, "p"), "verified");
}

/// E4 (§5, first example): dropping the modifies license from `p` makes
/// the call to `q(t.c.d)` unjustifiable.
#[test]
fn e4_example1_needs_the_license() {
    let broken = paper::EXAMPLE1
        .source
        .replace("proc p(t) modifies t.c.d.g", "proc p(t)");
    let report = check(&broken);
    assert_ne!(label(&report, "p"), "verified");
}

// --------------------------------------------------------------------- E5

/// E5 (§5, second example): `twice` verifies; our enforcement of pivot
/// uniqueness subsumes the swinging-pivots restriction the example was
/// designed to motivate.
#[test]
fn e5_example2_twice_verifies() {
    let report = check(paper::EXAMPLE2.source);
    assert_eq!(label(&report, "twice"), "verified");
}

// --------------------------------------------------------------------- E6

/// E6 (§5, third example): the cyclic rep inclusion. The default budget
/// verifies `updateAll`; a starved budget reproduces the divergence the
/// paper reports for Simplify, as a measurable `Unknown`.
#[test]
fn e6_cyclic_inclusion() {
    let report = check(paper::EXAMPLE3.source);
    assert_eq!(label(&report, "updateAll"), "verified");

    let starved = CheckOptions {
        budget: Budget::tiny(),
        ..CheckOptions::default()
    };
    let report = check_with(paper::EXAMPLE3.source, starved);
    match &report.for_proc("updateAll").expect("checked").verdict {
        Verdict::Unknown(stats) => {
            assert!(
                stats.instances > 0,
                "the matching loop did run before the cutoff"
            );
        }
        other => panic!("starved budget should be Unknown, got {}", other.label()),
    }
}

// --------------------------------------------------------------------- E7

/// E7 (§4): scope monotonicity over the corpus — for every implementation,
/// checking in its minimal self-contained scope and then in the whole
/// program never degrades a `verified` verdict to a rejection.
#[test]
fn e7_scope_monotonicity_corpus() {
    for p in corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let full_report = check(p.source);
        // Language levels: if the whole program uses array features, its
        // modules must be checked at the arrays level too (see DESIGN.md,
        // extensions) — monotonicity holds within a level.
        let arrays_level = p.source.contains("maps elem") || p.source.contains("[");
        for (i, decl) in program.decls.iter().enumerate() {
            let oolong::syntax::Decl::Impl(im) = decl else {
                continue;
            };
            let sub = subset_program(&program, &closure_for_impl(&program, i));
            let options = CheckOptions {
                force_arrays_level: arrays_level,
                ..CheckOptions::default()
            };
            let small = Checker::new(&sub, options)
                .expect("closure analyses")
                .check_all();
            let small_label = label(&small, &im.name.text);
            if small_label == "verified" {
                let full_label = label(&full_report, &im.name.text);
                assert_ne!(
                    full_label, "not verified",
                    "{}: impl {} verified in its module but refuted in the whole program",
                    p.name, im.name.text
                );
            }
        }
    }
}

/// E7: scope monotonicity over randomly generated programs and random
/// extensions. A `verified` verdict may weaken to `unknown` when the
/// larger scope exhausts the prover budget, but must never flip to an
/// outright rejection.
#[test]
fn e7_scope_monotonicity_generated() {
    let cfg = corpus::GenConfig::default();
    for seed in 0..12 {
        let base = corpus::generate_source(seed, &cfg);
        let extended = corpus::extend_source(&base, seed + 100, &cfg);
        let base_report = check(&base);
        let ext_report = check(&extended);
        let base_program = parse_program(&base).expect("parses");
        let base_scope = Scope::analyze(&base_program).expect("analyses");
        for (_, info) in base_scope.impls() {
            let name = base_scope.proc_info(info.proc).name.clone();
            if label(&base_report, &name) == "verified" {
                assert_ne!(
                    label(&ext_report, &name),
                    "not verified",
                    "seed {seed}: impl {name} degraded from verified to refuted\nbase:\n{base}\nextended:\n{extended}"
                );
            }
        }
    }
}

// -------------------------------------------------------------------- E11

/// E11 (modules extension): the modularised stack system verifies module
/// by module, each against exactly its import closure.
#[test]
fn e11_modular_checking() {
    let program = parse_program(paper::MODULAR_STACK.source).expect("parses");
    let report = oolong::datagroups::check_modular(&program, &CheckOptions::default())
        .expect("module structure is valid");
    assert!(report.all_verified(), "{report}");
    // The vector implementation's scope must not see the stack module.
    let visible = oolong::sema::visible_program(&program, "vector_impl").expect("resolves");
    let scope = Scope::analyze(&visible).expect("analyses");
    assert!(scope.attr("contents").is_none());
}

/// E11+E12 capstone: the registry program exercises modules and array
/// dependencies together; every module verifies against its import
/// closure, including slot installation (`subscribe`) and a direct
/// element update (`fire_first`).
#[test]
fn e11_e12_registry_capstone() {
    let program = parse_program(paper::REGISTRY.source).expect("parses");
    let report = oolong::datagroups::check_modular(&program, &CheckOptions::default())
        .expect("module structure valid");
    assert!(report.all_verified(), "{report}");
    let whole = check(paper::REGISTRY.source);
    assert!(whole.all_verified(), "{whole}");
}

// -------------------------------------------------------------------- E12

/// E12 (array dependencies, §6 future work): the slot discipline is
/// enforced syntactically, slot writes need elem licenses, and the
/// interpreter's effect monitor covers slots and elements.
#[test]
fn e12_array_dependencies_static() {
    // Slot discipline: copying a slot value violates pivot uniqueness.
    let leak = check(
        "group g
         field arr in g maps elem g into g
         field obj
         proc p(t) modifies t.g
         impl p(t) { assume t != null && t.arr != null ; t.obj := t.arr[0] }",
    );
    assert_eq!(label(&leak, "p"), "restriction violation");

    // Unlicensed slot write rejected; licensed one verifies.
    let unlicensed = check(
        "group g
         field arr in g maps elem g into g
         proc p(t)
         impl p(t) { assume t != null && t.arr != null ; t.arr[0] := null }",
    );
    assert_ne!(label(&unlicensed, "p"), "verified");
    let licensed = check(
        "group g
         field arr in g maps elem g into g
         proc p(t) modifies t.g
         impl p(t) { assume t != null && t.arr != null ; t.arr[0] := null }",
    );
    assert_eq!(label(&licensed, "p"), "verified");
}

/// E12 (array dependencies): the whole-table corpus program. `tinit`
/// (slot installation), `binc`, `touch_direct` (direct element update),
/// and `observer` (element-frame reasoning via elementwise owner
/// exclusion) verify; the delegating `touch` is recorded as prover-hard
/// (the paper makes the same observation about mechanical proofs lagging
/// hand proofs on its §5 cyclic example).
#[test]
fn e12_array_table_verdicts() {
    let report = check(paper::ARRAY_TABLE.source);
    assert_eq!(label(&report, "binc"), "verified");
    assert_eq!(label(&report, "tinit"), "verified");
    assert_eq!(label(&report, "observer"), "verified");
    assert_eq!(label(&report, "touch_direct"), "verified");
    // `touch` must not be *refuted* — it times out or verifies.
    assert_ne!(label(&report, "touch"), "not verified");
}

/// E12 (array dependencies, runtime): installing buckets and updating an
/// element through the elem-pivot closure is licensed; the monitor flags
/// unlicensed slot writes.
#[test]
fn e12_array_dependencies_runtime() {
    use oolong::interp::{FirstOracle, Loc, Value};
    let program = parse_program(paper::ARRAY_TABLE.source).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    let mut interp = Interp::new(&scope, ExecConfig::default(), FirstOracle);
    let t = interp.store_mut().alloc();
    let tinit = scope
        .impls()
        .find(|(_, i)| scope.proc_info(i.proc).name == "tinit")
        .map(|(id, _)| id)
        .expect("tinit");
    assert!(interp.run_impl(tinit, &[Value::Obj(t)]).is_acceptable());
    let touch = scope
        .impls()
        .find(|(_, i)| scope.proc_info(i.proc).name == "touch")
        .map(|(id, _)| id)
        .expect("touch");
    assert!(interp
        .run_impl(touch, &[Value::Obj(t), Value::Int(0)])
        .is_acceptable());
    let buckets = scope.attr("buckets").unwrap();
    let count = scope.attr("count").unwrap();
    let arr = interp
        .store()
        .read(Loc {
            obj: t,
            attr: buckets,
        })
        .as_obj()
        .expect("array");
    let b0 = interp.store().read_slot(arr, 0).as_obj().expect("bucket");
    assert_eq!(
        interp.store().read(Loc {
            obj: b0,
            attr: count
        }),
        Value::Int(1)
    );
}

// ------------------------------------------------------- expressiveness

/// A documented limitation of the paper's discipline: classic linked-list
/// insertion (`n.next := s.head`) *moves* a pivot value, which pivot
/// uniqueness forbids — the paper's restrictions are deliberately
/// "drastic". The checker rejects it syntactically rather than failing
/// obscurely downstream.
#[test]
fn pivot_discipline_rejects_linked_insertion() {
    let report = check(
        "group q
         group nodes
         field val in nodes
         field next in nodes maps nodes into nodes
         field head in q maps nodes into q
         proc push_front(s) modifies s.q
         impl push_front(s) {
           assume s != null ;
           var n in
             n := new() ;
             n.val := 1 ;
             n.next := s.head ;
             s.head := null
           end
         }",
    );
    let rep = report.for_proc("push_front").expect("checked");
    assert_eq!(rep.verdict.label(), "restriction violation");
    match &rep.verdict {
        Verdict::RestrictionViolation(diags) => {
            // The insertion violates two rules at once: the pivot target
            // rule (next may only take new()/null) and the pivot-copy rule
            // (reading s.head).
            assert!(diags
                .iter()
                .any(|d| d.message.contains("may only be assigned")));
            assert!(diags
                .iter()
                .any(|d| d.message.contains("may not be copied")));
        }
        other => panic!("expected restriction violation, got {}", other.label()),
    }
}

// -------------------------------------------------------------------- E22

/// E22: the §4 scope-monotonicity theorem re-run over the enlarged
/// language. Programs carrying invariant-preserved and read-license
/// obligations keep their `verified` verdicts when the scope grows by
/// later declarations — a new field joining the group and a new
/// interface procedure — exactly the growth scenario the data-group
/// semantics is designed to survive: the invariant still ranges over the
/// same declared locations, and a `reads` clause naming a group covers
/// the grown group's members by construction.
#[test]
fn e22_scope_monotonicity_invariants_and_reads() {
    for seed in 0..8u64 {
        for (family, source) in [
            ("invariant", corpus::generate_invariant_source(seed)),
            ("reads", corpus::generate_read_effect_source(seed)),
        ] {
            let base_report = check(&source);
            let extended =
                format!("{source}\nfield zz in g\nproc probe(t) modifies t.g reads t.g\n");
            let ext_report = check(&extended);
            let program = parse_program(&source).expect("parses");
            let scope = Scope::analyze(&program).expect("analyses");
            for (_, info) in scope.impls() {
                let name = scope.proc_info(info.proc).name.clone();
                assert_eq!(
                    label(&base_report, &name),
                    "verified",
                    "{family} seed {seed}: base population verifies"
                );
                assert_eq!(
                    label(&ext_report, &name),
                    "verified",
                    "{family} seed {seed}: impl {name} degraded when the scope grew\n{extended}"
                );
            }
        }
    }
}

// -------------------------------------------------------------------- E10

/// E10 (§6): "the overhead for specifying data groups, inclusions, and
/// modifies lists does not seem overwhelming" — measured across the
/// corpus, specifications are a modest fraction of program text.
#[test]
fn e10_specification_overhead() {
    let mut total_spec = 0usize;
    let mut total_tokens = 0usize;
    for p in corpus::all() {
        let program = parse_program(p.source).expect("parses");
        let r = oolong::datagroups::overhead(&program);
        assert!(
            r.ratio() < 0.6,
            "{}: specification overhead {:.0}% is overwhelming",
            p.name,
            r.ratio() * 100.0
        );
        total_spec += r.spec_tokens;
        total_tokens += r.total_tokens;
    }
    let overall = total_spec as f64 / total_tokens as f64;
    assert!(
        overall > 0.05 && overall < 0.45,
        "corpus-wide overhead {:.1}% out of the plausible band",
        overall * 100.0
    );
}
