//! Property tests for scope-shared prover contexts and axiom slicing.
//!
//! Two claims carry the whole scope-sharing design:
//!
//! 1. **Reuse is invisible.** A [`ScopeContext`] proves each obligation
//!    from private copies of the mutable search state and rolls the
//!    shared E-graph back afterwards, so proving an obligation in a
//!    context that already served *other* obligations must produce the
//!    bit-identical verdict and statistics of a freshly built context —
//!    and must leave the shared E-graph's canonical rendering untouched.
//! 2. **Slicing is lazy, not lossy.** The vocabulary-closure slicer may
//!    only drop axioms whose triggers cannot possibly match; any axiom
//!    whose quantifiers produced even one match in a *full*-background
//!    run must be kept by the slicer for that same obligation.
//!
//! Both are checked against randomly generated programs (including
//! seeded-violation populations, so refutation search paths are
//! exercised too), with obligations proven in randomized interleavings.
//!
//! A third property pins the declared activation-policy layer: **phase
//! gating is scheduling, not logic**. Goal-directed axioms arm inside
//! each obligation's frame instead of saturating the goalless background,
//! which changes *where* the budget is spent but not what is derivable —
//! so a verdict both schedules afford to decide must be identical, labels
//! included, and a decision may only degrade to `unknown` across the
//! policy flip, never flip between `verified` and a refutation.

use std::collections::HashSet;

use oolong::corpus::{generate_seeded_violation_source, generate_source, GenConfig};
use oolong::datagroups::{CheckOptions, Checker, Verdict};
use oolong::prover::Budget;
use oolong::syntax::parse_program;
use proptest::prelude::*;

/// A budget small enough for property-test volume but roomy enough that
/// generated obligations regularly close (so the Proved path dominates,
/// not just budget exhaustion).
fn property_budget() -> Budget {
    Budget {
        max_instances: 400,
        max_branches: 400,
        max_rounds: 40,
        ..Budget::tiny()
    }
}

/// Proves every obligation of `source` twice — once through one shared
/// context serving the whole scope (in an order chosen by `rotate`), once
/// through a fresh context per obligation — and asserts the results are
/// bit-identical and the shared E-graph is byte-clean after every proof.
fn assert_reuse_is_invisible(source: &str, rotate: usize) -> Result<(), TestCaseError> {
    let program = parse_program(source).expect("generated source parses");
    let options = CheckOptions {
        budget: property_budget(),
        // Full background: all obligations of the scope then share one
        // context, which is the configuration the engine reuses hardest.
        slice_axioms: false,
        ..CheckOptions::default()
    };
    let checker = Checker::new(&program, options).expect("generated source analyses");
    let impls: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    let mut vcs: Vec<_> = impls.iter().filter_map(|&id| checker.vc(id).ok()).collect();
    if vcs.is_empty() {
        return Ok(());
    }
    let pivot = rotate % vcs.len();
    vcs.rotate_left(pivot);

    let slice = checker.background_slice(&vcs[0]);
    prop_assert!(slice.keep.iter().all(|&k| k), "slicing was disabled");
    let mut shared = checker.context_for_slice(&vcs[0], &slice);
    let clean = shared.debug_state();
    for vc in &vcs {
        // By the second iteration the shared context has already served
        // unrelated obligations.
        let reused = checker.verdict_for_vc_in(&mut shared, vc, 0);
        prop_assert_eq!(
            shared.debug_state(),
            clean.clone(),
            "proving `{}` dirtied the shared E-graph",
            vc.proc_name
        );
        let fresh = checker.verdict_for_vc(vc);
        prop_assert_eq!(
            reused.label(),
            fresh.label(),
            "`{}`: reused context changed the verdict",
            vc.proc_name
        );
        prop_assert_eq!(
            reused.stats().cloned(),
            fresh.stats().cloned(),
            "`{}`: reused context changed the statistics",
            vc.proc_name
        );
        if let (Verdict::NotVerified(_, a), Verdict::NotVerified(_, b)) = (&reused, &fresh) {
            prop_assert_eq!(&a.labels, &b.labels, "`{}`: refuted labels", vc.proc_name);
        }
    }
    Ok(())
}

/// Checks every obligation of `source` under the policy-gated schedule
/// (the default) and the all-eager schedule, asserting decided verdicts
/// and refutation labels agree (see the module doc).
fn assert_phase_gating_is_scheduling_only(source: &str) -> Result<(), TestCaseError> {
    let program = parse_program(source).expect("generated source parses");
    let mut reports = [true, false].map(|pattern_policies| {
        let options = CheckOptions {
            budget: property_budget(),
            pattern_policies,
            ..CheckOptions::default()
        };
        Checker::new(&program, options)
            .expect("generated source analyses")
            .check_all()
    });
    let [gated, eager] = &mut reports;
    prop_assert_eq!(gated.impls.len(), eager.impls.len());
    for (g, e) in gated.impls.iter().zip(&eager.impls) {
        prop_assert_eq!(&g.proc_name, &e.proc_name);
        let (gl, el) = (g.verdict.label(), e.verdict.label());
        if gl == "unknown" || el == "unknown" {
            // Either schedule may exhaust the budget where the other
            // decides; that asymmetry is the whole point of gating.
            continue;
        }
        prop_assert_eq!(
            gl,
            el,
            "`{}`: phase gating flipped a decided verdict",
            g.proc_name
        );
        if let (Verdict::NotVerified(_, a), Verdict::NotVerified(_, b)) = (&g.verdict, &e.verdict) {
            prop_assert_eq!(
                &a.labels,
                &b.labels,
                "`{}`: phase gating moved the refutation labels",
                g.proc_name
            );
        }
    }
    Ok(())
}

/// The scheduling-only property over the paper corpus itself (not a
/// property test, but it shares the harness): every paper program's
/// verdicts survive the policy flip.
#[test]
fn phase_gating_is_scheduling_only_on_the_paper_corpus() {
    for p in oolong::corpus::all() {
        assert_phase_gating_is_scheduling_only(p.source)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reuse invisibility over plain generated programs.
    #[test]
    fn shared_context_reuse_is_invisible(seed in 0u64..500, rotate in 0usize..8) {
        let source = generate_source(seed, &GenConfig::default());
        assert_reuse_is_invisible(&source, rotate)?;
    }

    /// Reuse invisibility where refutation search actually runs: seeded
    /// violations make the prover close the negated obligation and
    /// extract a counterexample, the deepest rollback path a shared
    /// context has to survive.
    #[test]
    fn shared_context_reuse_survives_refutations(seed in 0u64..300, rotate in 0usize..8) {
        let v = generate_seeded_violation_source(seed);
        assert_reuse_is_invisible(&v.source, rotate)?;
    }

    /// Phase gating is scheduling-only over plain generated programs:
    /// decided verdicts and labels agree between the gated and all-eager
    /// schedules.
    #[test]
    fn phase_gating_never_changes_decided_verdicts(seed in 0u64..500) {
        let source = generate_source(seed, &GenConfig::default());
        assert_phase_gating_is_scheduling_only(&source)?;
    }

    /// The same invariant where the prover actually refutes: seeded
    /// violations make both schedules close the negated obligation and
    /// agree on which labels witness the bug.
    #[test]
    fn phase_gating_preserves_refutations(seed in 0u64..300) {
        let v = generate_seeded_violation_source(seed);
        assert_phase_gating_is_scheduling_only(&v.source)?;
    }

    /// Any background axiom whose quantifiers matched even once in a
    /// full-background run is kept by the slicer for that obligation:
    /// slicing only ever removes axioms the matcher would never touch.
    /// Cross-checked through the per-quantifier profile ids, which
    /// [`ScopeContext::background_quants`] maps back to axiom indices.
    #[test]
    fn slicing_never_drops_an_axiom_that_fired(seed in 0u64..500) {
        let source = generate_source(seed, &GenConfig::default());
        let program = parse_program(&source).expect("generated source parses");
        let options = CheckOptions {
            budget: property_budget(),
            ..CheckOptions::default()
        };
        let checker = Checker::new(&program, options).expect("generated source analyses");
        let impls: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
        for id in impls {
            let Ok(vc) = checker.vc(id) else { continue };
            let keep = checker.background_slice(&vc).keep;
            // Full-background run of the same obligation.
            let full = oolong::datagroups::BackgroundSlice {
                keep: vec![true; vc.background_hyps],
            };
            let mut ctx = checker.context_for_slice(&vc, &full);
            let verdict = checker.verdict_for_vc_in(&mut ctx, &vc, 0);
            let Some(stats) = verdict.stats() else { continue };
            let fired: HashSet<usize> = stats
                .per_quant
                .iter()
                .filter(|q| q.matches > 0)
                .map(|q| q.id)
                .collect();
            for (axiom, &kept) in keep.iter().enumerate() {
                if kept {
                    continue;
                }
                for qid in ctx.background_quants(axiom) {
                    prop_assert!(
                        !fired.contains(qid),
                        "`{}`: slicer dropped background axiom {axiom} but its \
                         quantifier q{qid} matched in the full run",
                        vc.proc_name
                    );
                }
            }
        }
    }
}
