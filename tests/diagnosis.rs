//! Diagnosis accuracy: every rejection over the paper corpus and the
//! seeded-violation population must yield a [`Diagnosis`] that names the
//! ground-truth location and clause kind, with the interpreter replay
//! *confirming* the violation (never demoting it to spurious). A second
//! family of tests checks label transparency: wrapping obligations in
//! position labels must not change any prover outcome or statistic.

use oolong::corpus::{self, SeededBug};
use oolong::datagroups::{CheckOptions, Checker, Vc, Verdict};
use oolong::diagnose::{diagnose_refutation, diagnose_restriction, Diagnosis, Replay};
use oolong::prover::SearchStrategy;
use oolong::syntax::parse_program;

/// Builds the diagnosis for one (rejected) implementation report, the same
/// way the CLI and engine do.
fn diagnosis_for(
    checker: &Checker,
    source: &str,
    rep: &oolong::datagroups::ImplReport,
) -> Option<Diagnosis> {
    match &rep.verdict {
        Verdict::NotVerified(_, refutation) => {
            let vc = checker.vc(rep.impl_id).ok()?;
            diagnose_refutation(checker.scope(), source, &vc, refutation)
        }
        Verdict::RestrictionViolation(violations) => diagnose_restriction(
            checker.scope(),
            source,
            rep.impl_id,
            &rep.proc_name,
            violations,
        ),
        _ => None,
    }
}

fn checker_for(source: &str, strategy: SearchStrategy) -> Checker {
    let program = parse_program(source).expect("parses");
    let options = CheckOptions {
        strategy,
        ..CheckOptions::default()
    };
    Checker::new(&program, options).expect("analyzes")
}

const STRATEGIES: [SearchStrategy; 2] = [SearchStrategy::Trail, SearchStrategy::CloneSearch];

/// Every rejection in the paper corpus diagnoses to a confirmed,
/// source-located violation — and the corpus does contain rejections.
#[test]
fn paper_corpus_rejections_diagnose_confirmed() {
    for strategy in STRATEGIES {
        let mut rejections = 0;
        for p in corpus::all() {
            let checker = checker_for(p.source, strategy);
            for rep in &checker.check_all().impls {
                if !matches!(
                    rep.verdict,
                    Verdict::NotVerified(..) | Verdict::RestrictionViolation(_)
                ) {
                    continue;
                }
                rejections += 1;
                let d = diagnosis_for(&checker, p.source, rep).unwrap_or_else(|| {
                    panic!(
                        "{}/{}: rejection without a diagnosis",
                        p.name, rep.proc_name
                    )
                });
                assert!(
                    matches!(d.replay, Replay::Confirmed { .. }),
                    "{}/{} ({strategy:?}): replay did not confirm: {:?}",
                    p.name,
                    rep.proc_name,
                    d.replay
                );
                assert!(
                    !p.source[d.span.start as usize..d.span.end as usize].is_empty(),
                    "{}/{}: diagnosis points at an empty span",
                    p.name,
                    rep.proc_name
                );
            }
        }
        assert!(
            rejections > 0,
            "the paper corpus must contain at least one rejected implementation"
        );
    }
}

/// The §3.1 bad caller is the paper's own counterexample: pin down its
/// diagnosis precisely (owner-exclusion at the `w(st, st.vec)` call).
#[test]
fn section31_bad_call_diagnosis_names_the_call() {
    let p = corpus::by_name("section31_bad_call").expect("corpus program exists");
    let checker = checker_for(p.source, SearchStrategy::Trail);
    let report = checker.check_all();
    let rep = report
        .impls
        .iter()
        .find(|r| matches!(r.verdict, Verdict::NotVerified(..)))
        .expect("bad_caller is refuted");
    let d = diagnosis_for(&checker, p.source, rep).expect("diagnosis");
    assert_eq!(d.kind.as_str(), "owner-exclusion");
    let snippet = &p.source[d.span.start as usize..d.span.end as usize];
    assert!(
        snippet.contains("w(st"),
        "diagnosis should blame the call, got {snippet:?}"
    );
    assert!(matches!(d.replay, Replay::Confirmed { .. }));
}

/// Seeded-violation population: the diagnosis must name the ground-truth
/// span (exactly for modifies bugs and the invariant declaration, within
/// the injected command for the pivot copy and the uncovered read, whose
/// diagnostics anchor on the offending subexpression) and the expected
/// clause kind, and the replay must confirm.
#[test]
fn seeded_violations_diagnose_to_ground_truth() {
    for strategy in STRATEGIES {
        for seed in 0..15u64 {
            let v = corpus::generate_seeded_violation_source(seed);
            let checker = checker_for(&v.source, strategy);
            let report = checker.check_all();
            let rep = report
                .impls
                .iter()
                .find(|r| r.proc_name == v.proc_name)
                .expect("seeded impl present");
            assert!(
                matches!(
                    rep.verdict,
                    Verdict::NotVerified(..) | Verdict::RestrictionViolation(_)
                ),
                "seed {seed} ({strategy:?}): seeded bug {:?} not rejected: {}",
                v.bug,
                rep.verdict
            );
            let d = diagnosis_for(&checker, &v.source, rep).unwrap_or_else(|| {
                panic!("seed {seed} ({strategy:?}): no diagnosis for {:?}", v.bug)
            });
            assert_eq!(
                d.kind.as_str(),
                v.bug.expected_kind(),
                "seed {seed} ({strategy:?}): wrong clause kind for {:?}",
                v.bug
            );
            match v.bug {
                SeededBug::ForgottenIn
                | SeededBug::MissingClosureMember
                | SeededBug::BrokenInvariant => assert_eq!(
                    (d.span.start, d.span.end),
                    (v.start, v.end),
                    "seed {seed} ({strategy:?}): {:?} blamed {:?}, seeded {:?}",
                    v.bug,
                    &v.source[d.span.start as usize..d.span.end as usize],
                    v.snippet()
                ),
                SeededBug::StrayPivotWrite => assert!(
                    d.span.start >= v.start && d.span.end <= v.end,
                    "seed {seed} ({strategy:?}): pivot diagnosis at {}..{} outside seeded {}..{}",
                    d.span.start,
                    d.span.end,
                    v.start,
                    v.end
                ),
                SeededBug::UncoveredRead => {
                    assert!(
                        d.span.start >= v.start && d.span.end <= v.end,
                        "seed {seed} ({strategy:?}): read diagnosis at {}..{} outside \
                         seeded {}..{}",
                        d.span.start,
                        d.span.end,
                        v.start,
                        v.end
                    );
                    assert_eq!(
                        &v.source[d.span.start as usize..d.span.end as usize],
                        "t.b",
                        "seed {seed} ({strategy:?}): read diagnosis off the dereference"
                    );
                }
            }
            assert!(
                matches!(d.replay, Replay::Confirmed { .. }),
                "seed {seed} ({strategy:?}): {:?} demoted to {:?}",
                v.bug,
                d.replay
            );
        }
    }
}

/// Strips every position label out of a VC, leaving the logical content.
fn strip_vc(vc: &Vc) -> Vc {
    Vc {
        impl_id: vc.impl_id,
        proc_name: vc.proc_name.clone(),
        hypotheses: vc.hypotheses.iter().map(|h| h.strip_labels()).collect(),
        background_hyps: vc.background_hyps,
        goal: vc.goal.strip_labels(),
        labels: Vec::new(),
    }
}

/// Labels are logically transparent: proving a labelled VC and its
/// stripped twin yields the same outcome *and* the same prover statistics
/// (instantiations, branches) — label bookkeeping must not steer search.
fn assert_labels_transparent(name: &str, source: &str, strategy: SearchStrategy) {
    let checker = checker_for(source, strategy);
    let ids: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    for impl_id in ids {
        let Ok(vc) = checker.vc(impl_id) else {
            continue;
        };
        let labelled = checker.verdict_for_vc(&vc);
        let stripped = checker.verdict_for_vc(&strip_vc(&vc));
        assert_eq!(
            std::mem::discriminant(&labelled),
            std::mem::discriminant(&stripped),
            "{name} ({strategy:?}): labelled {labelled} vs stripped {stripped}"
        );
        assert_eq!(
            labelled.stats(),
            stripped.stats(),
            "{name} ({strategy:?}): label bookkeeping changed prover statistics"
        );
    }
}

#[test]
fn labels_never_change_outcomes_on_corpus() {
    for p in corpus::all() {
        for strategy in STRATEGIES {
            assert_labels_transparent(p.name, p.source, strategy);
        }
    }
}

#[test]
fn labels_never_change_outcomes_on_generated_programs() {
    let cfg = corpus::GenConfig::default();
    for seed in 0..10 {
        let source = corpus::generate_source(seed, &cfg);
        assert_labels_transparent(&format!("generated-{seed}"), &source, SearchStrategy::Trail);
    }
    for seed in 0..15 {
        let v = corpus::generate_seeded_violation_source(seed);
        assert_labels_transparent(&format!("seeded-{seed}"), &v.source, SearchStrategy::Trail);
    }
    for seed in 0..6 {
        let source = corpus::generate_invariant_source(seed);
        assert_labels_transparent(&format!("invariant-{seed}"), &source, SearchStrategy::Trail);
        let source = corpus::generate_read_effect_source(seed);
        assert_labels_transparent(&format!("reads-{seed}"), &source, SearchStrategy::Trail);
    }
}

/// The invariant and read-effect populations are *correct*: every
/// implementation verifies, under both search strategies — the
/// invariant-preserved and read-license obligations they carry are all
/// dischargeable.
#[test]
fn invariant_and_read_effect_populations_verify() {
    for strategy in STRATEGIES {
        for seed in 0..8u64 {
            for (family, source) in [
                ("invariant", corpus::generate_invariant_source(seed)),
                ("reads", corpus::generate_read_effect_source(seed)),
            ] {
                let checker = checker_for(&source, strategy);
                for rep in &checker.check_all().impls {
                    assert!(
                        matches!(rep.verdict, Verdict::Verified(_)),
                        "{family} seed {seed} ({strategy:?}): `{}` did not verify: {}\n{source}",
                        rep.proc_name,
                        rep.verdict
                    );
                }
            }
        }
    }
}
