//! Integration tests for the incremental verification engine: verdict
//! equivalence with the from-scratch checker over the whole paper corpus,
//! warm-vs-cold batch behaviour (zero prover calls on unchanged impls,
//! established by counting event kinds in the JSONL log), and invalidation
//! selectivity (editing one procedure's modifies clause re-runs only the
//! obligations whose VCs mention it).

use oolong::datagroups::{CheckOptions, Checker, Verdict};
use oolong::engine::{json, BatchUnit, Engine, EngineOptions, Json};
use oolong::syntax::parse_program;

fn corpus_units() -> Vec<BatchUnit> {
    oolong::corpus::all()
        .iter()
        .map(|p| BatchUnit {
            name: p.name.to_string(),
            source: p.source.to_string(),
        })
        .collect()
}

/// Structural verdict equality: same outcome, same prover statistics, same
/// open-branch sketch. (Verdict itself has no PartialEq because diagnostics
/// carry spans.)
fn same_verdict(a: &Verdict, b: &Verdict) -> bool {
    a.label() == b.label() && a.stats() == b.stats() && a.open_branch() == b.open_branch()
}

/// The engine's verdicts — cold *and* warm — match a fresh `Checker` on
/// every program of the embedded paper corpus.
#[test]
fn cache_equivalence_over_the_paper_corpus() {
    let units = corpus_units();
    let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
    let cold = engine.check_batch(&units);
    let warm = engine.check_batch(&units);
    assert!(cold.unit_errors.is_empty(), "corpus programs all analyse");
    assert_eq!(cold.obligations.len(), warm.obligations.len());

    let mut fresh = Vec::new();
    for unit in &units {
        let program = parse_program(&unit.source).expect("corpus parses");
        let checker = Checker::new(&program, CheckOptions::default()).expect("corpus analyses");
        for rep in checker.check_all().impls {
            fresh.push((unit.name.clone(), rep.proc_name, rep.verdict));
        }
    }
    assert_eq!(fresh.len(), cold.obligations.len());
    for ((unit, proc, verdict), (c, w)) in fresh
        .iter()
        .zip(cold.obligations.iter().zip(&warm.obligations))
    {
        assert_eq!(
            (unit.as_str(), proc.as_str()),
            (c.unit.as_str(), c.proc_name.as_str())
        );
        assert!(
            same_verdict(verdict, &c.verdict),
            "cold {unit}/{proc}: engine said {}, checker said {}",
            c.verdict.label(),
            verdict.label()
        );
        assert!(
            same_verdict(verdict, &w.verdict),
            "warm {unit}/{proc}: engine said {}, checker said {}",
            w.verdict.label(),
            verdict.label()
        );
    }
    // Every warm obligation with a fingerprint was served from the cache.
    for o in &warm.obligations {
        assert_eq!(o.cache_hit, o.fingerprint.is_some());
    }
    assert_eq!(warm.prover_calls, 0);
}

/// Parses a JSONL event log and counts occurrences of one event kind.
fn count_events(jsonl: &str, kind: &str) -> usize {
    jsonl
        .lines()
        .map(|line| json::parse(line).expect("event line parses"))
        .filter(|v| v.get("event").and_then(Json::as_str) == Some(kind))
        .count()
}

/// A warm batch over an unchanged corpus performs *zero* prover calls —
/// established by the event log, not by timing: no `verified` / `refuted` /
/// `fuel_exhausted` events, one `cache_hit` per obligation.
#[test]
fn warm_batch_makes_no_prover_calls() {
    let dir = std::env::temp_dir().join(format!("oolong-warm-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let units = corpus_units();
    let obligations;
    {
        let engine = Engine::new(EngineOptions {
            cache_dir: Some(dir.clone()),
            ..EngineOptions::default()
        })
        .expect("disk-backed engine");
        let cold = engine.check_batch(&units);
        obligations = cold.obligations.len();
        let log = cold.events_jsonl();
        assert_eq!(count_events(&log, "obligation_started"), obligations);
        assert_eq!(count_events(&log, "cache_hit"), cold.cache_hits);
        assert_eq!(count_events(&log, "batch_summary"), 1);
    }
    // A fresh engine over the same directory: everything it knows came off
    // disk, so the warm run exercises persistence, not process memory.
    let engine = Engine::new(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    })
    .expect("reopens");
    let warm = engine.check_batch(&units);
    let log = warm.events_jsonl();
    // Obligations without a fingerprint (restriction violations — the
    // corpus includes the paper's §3.0 counterexamples) are recomputed
    // each run by design; everything with a fingerprint must hit.
    let fingerprinted = warm
        .obligations
        .iter()
        .filter(|o| o.fingerprint.is_some())
        .count();
    assert!(fingerprinted > 0);
    assert_eq!(count_events(&log, "obligation_started"), obligations);
    assert_eq!(count_events(&log, "cache_hit"), fingerprinted);
    assert_eq!(count_events(&log, "verified"), 0);
    assert_eq!(count_events(&log, "refuted"), 0);
    assert_eq!(count_events(&log, "fuel_exhausted"), 0);
    assert_eq!(warm.prover_calls, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Collects the `prover_profile` event of every obligation from a JSONL
/// log, as `(seq, cached, rendered stats object)`.
fn profile_events(jsonl: &str) -> Vec<(u64, bool, String)> {
    jsonl
        .lines()
        .map(|line| json::parse(line).expect("event line parses"))
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("prover_profile"))
        .map(|v| {
            let seq = v.get("seq").and_then(Json::as_u64).expect("seq");
            let cached = matches!(v.get("cached"), Some(Json::Bool(true)));
            let stats = v.get("stats").expect("stats").render();
            (seq, cached, stats)
        })
        .collect()
}

/// Warm rechecks replay the cold run's prover telemetry from the cache:
/// the warm event log carries a `prover_profile` event per fingerprinted
/// obligation whose stats — scalars, exhausted dimension, and per-axiom
/// profile — are byte-identical to the cold run's, while the prover is
/// never called.
#[test]
fn warm_recheck_replays_prover_stats_from_the_event_log() {
    let dir = std::env::temp_dir().join(format!("oolong-replay-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let units = corpus_units();
    let disk = |dir: &std::path::Path| {
        Engine::new(EngineOptions {
            cache_dir: Some(dir.to_path_buf()),
            ..EngineOptions::default()
        })
        .expect("disk-backed engine")
    };
    let cold_profiles = {
        let cold = disk(&dir).check_batch(&units);
        assert!(cold.prover_calls > 0);
        profile_events(&cold.events_jsonl())
    };
    // A fresh engine over the same directory: the replayed stats come off
    // disk, through the cache format, not from process memory.
    let warm = disk(&dir).check_batch(&units);
    assert_eq!(warm.prover_calls, 0, "warm runs never reach the prover");
    let warm_profiles = profile_events(&warm.events_jsonl());

    // The cold run proves most obligations live but may already hit the
    // cache on duplicates (identical impls across corpus units); the warm
    // run replays every one of them. Either way, the telemetry per
    // obligation must be byte-identical.
    assert!(
        cold_profiles.iter().any(|(_, cached, _)| !cached),
        "the cold run profiles live prover work"
    );
    assert_eq!(warm_profiles.len(), cold_profiles.len());
    for ((cold_seq, _, cold_stats), (warm_seq, warm_cached, warm_stats)) in
        cold_profiles.iter().zip(&warm_profiles)
    {
        assert_eq!(cold_seq, warm_seq, "profiles pair up by obligation");
        assert!(warm_cached, "warm profiles are marked as replayed");
        assert_eq!(
            cold_stats, warm_stats,
            "obligation {cold_seq}: replayed stats differ from the cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing one procedure's modifies clause re-runs exactly the obligations
/// whose VCs depend on it: the edited procedure itself and its callers.
/// Unrelated implementations in the same scope keep their fingerprints and
/// hit the cache.
#[test]
fn modifies_edit_invalidates_only_dependent_impls() {
    let before = "group g
         field f in g
         proc p(r) modifies r.g
         impl p(r) { r.f := 1 }
         proc q(r) modifies r.g
         impl q(r) { r.f := 2 ; r.f := 3 }
         proc caller(r) modifies r.g
         impl caller(r) { q(r) }";
    // Drop q's license: q's own obligation and caller's call-site
    // obligation change; p is untouched.
    let after = before.replace("proc q(r) modifies r.g", "proc q(r)");

    let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
    let cold = engine.check_source("unit", before);
    assert!(cold.all_verified(), "baseline verifies: {:?}", cold.tally());
    assert_eq!(cold.prover_calls, 3);

    let edited = engine.check_source("unit", &after);
    let by_proc = |report: &oolong::engine::BatchReport, name: &str| {
        report
            .obligations
            .iter()
            .find(|o| o.proc_name == name)
            .unwrap_or_else(|| panic!("obligation for {name}"))
            .clone()
    };
    let p = by_proc(&edited, "p");
    assert!(
        p.cache_hit,
        "p's obligation is untouched by q's modifies edit"
    );
    assert_eq!(p.fingerprint, by_proc(&cold, "p").fingerprint);

    let q = by_proc(&edited, "q");
    assert!(!q.cache_hit, "q's own license changed");
    assert_ne!(q.fingerprint, by_proc(&cold, "q").fingerprint);
    assert!(
        !q.verdict.is_verified(),
        "writing r.f without a license is rejected"
    );

    let caller = by_proc(&edited, "caller");
    assert!(!caller.cache_hit, "caller's call-site obligation changed");
    assert_ne!(caller.fingerprint, by_proc(&cold, "caller").fingerprint);

    assert_eq!(edited.cache_hits, 1);
    assert_eq!(edited.prover_calls, 2);
}

/// A changed budget is a changed obligation: warm runs under a different
/// budget do not reuse verdicts.
#[test]
fn budget_change_misses_the_cache() {
    let src = "group g
         field f in g
         proc p(r) modifies r.g
         impl p(r) { r.f := 1 }";
    let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
    let cold = engine.check_source("unit", src);
    assert_eq!(cold.prover_calls, 1);

    let starved = CheckOptions {
        budget: oolong::prover::Budget::tiny(),
        ..CheckOptions::default()
    };
    let engine2 = Engine::new(EngineOptions {
        check: starved,
        ..EngineOptions::default()
    })
    .expect("in-memory engine");
    let other = engine2.check_source("unit", src);
    assert_ne!(
        cold.obligations[0].fingerprint, other.obligations[0].fingerprint,
        "budget participates in the fingerprint"
    );
}

/// Toggling axiom slicing changes the keep-mask, which joins the
/// version-3 fingerprint: verdicts cached under one slicing mode are
/// never served to the other (migrate-by-miss — a stale hit here would
/// replay telemetry from a different prover context).
#[test]
fn slice_toggle_misses_the_cache() {
    // A program whose background actually gets sliced (section30_q drops
    // axioms whose triggers mention vocabulary `q` never touches).
    let src = oolong::corpus::by_name("section30_q").unwrap().source;
    let engine = Engine::new(EngineOptions::default()).expect("in-memory engine");
    let cold = engine.check_source("unit", src);
    assert!(cold.prover_calls > 0);

    let unsliced = CheckOptions {
        slice_axioms: false,
        ..CheckOptions::default()
    };
    let engine2 = Engine::new(EngineOptions {
        check: unsliced,
        ..EngineOptions::default()
    })
    .expect("in-memory engine");
    let other = engine2.check_source("unit", src);
    for (a, b) in cold.obligations.iter().zip(&other.obligations) {
        assert_eq!(a.proc_name, b.proc_name);
        if a.fingerprint.is_none() {
            continue;
        }
        assert_ne!(
            a.fingerprint, b.fingerprint,
            "{}: the slice keep-mask must participate in the fingerprint",
            a.proc_name
        );
        // Slicing changes the quantifier-registration telemetry but never
        // the outcome.
        assert_eq!(a.verdict.label(), b.verdict.label(), "{}", a.proc_name);
    }
    assert_eq!(other.cache_hits, 0, "no stale cross-mode hits");
    assert_eq!(other.prover_calls, cold.prover_calls);
}

/// Within one batch, obligations whose scope background coincides share
/// one saturated prover context: the pool records a miss for the first
/// and hits for the rest.
#[test]
fn batch_reuses_scope_contexts() {
    let src = "group g
         field f in g
         proc p(r) modifies r.g
         impl p(r) { r.f := 1 }
         proc q(r) modifies r.g
         impl q(r) { r.f := 2 ; r.f := 3 }
         proc caller(r) modifies r.g
         impl caller(r) { q(r) }";
    // Slicing off so all three obligations share one background (and so
    // one context key); sharing itself stays on.
    let options = CheckOptions {
        slice_axioms: false,
        ..CheckOptions::default()
    };
    let engine = Engine::new(EngineOptions {
        check: options,
        ..EngineOptions::default()
    })
    .expect("in-memory engine");
    let report = engine.check_source("unit", src);
    assert_eq!(report.prover_calls, 3);
    let m = engine.contexts().metrics();
    assert_eq!(m.misses, 1, "one context built for the scope");
    assert_eq!(m.hits, 2, "the other obligations reuse it");
    assert_eq!(m.size, 1);

    // A second batch over the same unit hits the verdict cache before it
    // ever needs a context — the pool sees no new traffic.
    let warm = engine.check_source("unit", src);
    assert_eq!(warm.prover_calls, 0);
    let m2 = engine.contexts().metrics();
    assert_eq!((m2.hits, m2.misses), (m.hits, m.misses));
}
