//! Differential testing of the trail-based backtracking search against
//! the retained clone-per-branch reference implementation.
//!
//! The trail rewrite ([`SearchStrategy::Trail`]) must be *behaviorally
//! invisible*: over every verification condition of the paper corpus and
//! of generated program populations — including the branch-heavy
//! programs built to stress case splitting and the cyclic-rep programs
//! built to starve the matcher — both strategies must return the
//! identical [`Outcome`] and identical deterministic [`Stats`] counters
//! (instances, matches, merges, branches, clauses, rounds, per-quantifier
//! profiles, exhaustion reasons, ...). Only the trail telemetry counters
//! (`trail_depth_max`, `pops`, `undone_merges`) may differ, which
//! [`Stats::without_trail_counters`] normalizes away.
//!
//! Strategies are passed explicitly through [`prove_with_strategy`], not
//! through the `OOLONG_PROVER_CLONE_SEARCH` environment override, so the
//! suite is immune to test-harness parallelism.

use oolong::corpus::{self, GenConfig};
use oolong::datagroups::{CheckOptions, Checker};
use oolong::prover::{prove_with_strategy, Budget, SearchStrategy};
use oolong::syntax::parse_program;

/// Proves every VC of `source` under every budget with both strategies
/// and asserts outcome and normalized-stats equality.
fn assert_strategies_agree(name: &str, source: &str, budgets: &[Budget]) {
    let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let checker =
        Checker::new(&program, CheckOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let impl_ids: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
    let mut vcs = 0usize;
    for impl_id in impl_ids {
        let Ok(vc) = checker.vc(impl_id) else {
            continue; // unsupported expression forms are not at issue here
        };
        vcs += 1;
        for budget in budgets {
            let trail =
                prove_with_strategy(&vc.hypotheses, &vc.goal, budget, SearchStrategy::Trail);
            let cloned = prove_with_strategy(
                &vc.hypotheses,
                &vc.goal,
                budget,
                SearchStrategy::CloneSearch,
            );
            assert_eq!(
                trail.outcome, cloned.outcome,
                "{name}: outcome diverges under {budget:?}"
            );
            assert_eq!(
                trail.stats.without_trail_counters(),
                cloned.stats.without_trail_counters(),
                "{name}: stats diverge under {budget:?}"
            );
            // The clone-based reference never pops a trail; the counters
            // it reports for backtracking must stay zero.
            assert_eq!(cloned.stats.pops, 0, "{name}: clone search kept a trail");
            assert_eq!(cloned.stats.undone_merges, 0);
            assert_eq!(cloned.stats.trail_depth_max, 0);
        }
    }
    assert!(vcs > 0, "{name}: no VC was generated");
}

/// A roomy-but-bounded budget plus deliberately starved ones, so both
/// `Proved` searches and every `Unknown` exhaustion path are compared.
/// The roomy budget is capped like the soundness suite's: an unbounded
/// default budget would let hopeless generated VCs grind for minutes,
/// and a timeout here only moves an outcome to `Unknown` — which the
/// two strategies must still agree on.
fn budget_grid() -> Vec<Budget> {
    let roomy = Budget {
        max_instances: 8_000,
        max_branches: 8_000,
        max_rounds: 400,
        ..Budget::default()
    };
    vec![
        roomy.clone(),
        Budget::tiny(),
        // The branch- and depth-starved entries also cap instantiation:
        // once splitting is blocked the search falls back to saturating
        // each stuck branch, and an 8k-instance grind per branch adds
        // nothing to the equivalence claim being tested.
        Budget {
            max_branches: 6,
            max_instances: 600,
            max_rounds: 60,
            ..roomy.clone()
        },
        Budget {
            max_depth: 2,
            max_instances: 600,
            max_rounds: 60,
            ..roomy.clone()
        },
        Budget {
            max_instances: 40,
            max_rounds: 25,
            ..roomy
        },
    ]
}

#[test]
fn trail_matches_clone_on_paper_corpus() {
    for p in corpus::all() {
        assert_strategies_agree(p.name, p.source, &budget_grid());
    }
}

#[test]
fn trail_matches_clone_on_generated_programs() {
    let cfg = GenConfig::default();
    for seed in 0..12 {
        let src = corpus::generate_source(seed, &cfg);
        assert_strategies_agree(&format!("generated seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn trail_matches_clone_on_cyclic_programs() {
    // Cyclic rep inclusions starve the matcher (the paper's §5 third
    // example); the strategies must agree on the Unknown outcomes and on
    // which budget dimension tripped.
    for seed in 0..6 {
        let src = corpus::generate_cyclic_source(seed);
        assert_strategies_agree(&format!("cyclic seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn trail_matches_clone_on_seeded_violations() {
    // Programs with a known injected bug exercise the refutation path:
    // the prover must actually close the negated obligation, and both
    // strategies must find the same refutation-side counters while doing
    // so (the populations above are dominated by Proved/Unknown VCs).
    for seed in 0..12 {
        let v = corpus::generate_seeded_violation_source(seed);
        assert_strategies_agree(
            &format!("seeded violation seed {seed} ({:?})", v.bug),
            &v.source,
            &budget_grid(),
        );
    }
}

#[test]
fn trail_matches_clone_on_branchy_programs() {
    // Branch-heavy choice chains are where the trail actually earns its
    // keep: 2^depth case splits per VC. The VC itself has 2^depth leaves,
    // so the clone-based reference gets slow very fast — a tighter grid
    // (still completing full searches at these depths) keeps the suite
    // within CI time.
    let branchy_grid = vec![
        Budget {
            max_instances: 2_500,
            max_branches: 2_000,
            max_rounds: 200,
            ..Budget::default()
        },
        Budget::tiny(),
        Budget {
            max_branches: 6,
            max_instances: 600,
            max_rounds: 60,
            ..Budget::default()
        },
        Budget {
            max_depth: 2,
            max_instances: 600,
            max_rounds: 60,
            ..Budget::default()
        },
    ];
    for seed in 0..6 {
        let depth = 3 + (seed as usize % 3);
        let src = corpus::generate_branchy_source(seed, depth);
        assert_strategies_agree(
            &format!("branchy seed {seed} depth {depth}"),
            &src,
            &branchy_grid,
        );
    }
}
