//! Differential testing of the prover's configuration matrix:
//! {trail, clone-search} × {shared context, per-obligation context} ×
//! {sliced background, full background} × {policy-gated, all-eager}.
//!
//! Three independent mechanisms claim to be *behaviorally invisible*, and
//! each claim is checked against every verification condition of the
//! paper corpus and of generated program populations (plain, cyclic,
//! branchy, seeded-violation), under a roomy budget and deliberately
//! starved ones:
//!
//! * **Backtracking strategy** ([`SearchStrategy::Trail`] vs the retained
//!   clone-per-branch reference): identical outcomes and identical
//!   deterministic [`Stats`] up to the trail telemetry counters, which
//!   [`Stats::without_trail_counters`] normalizes away.
//! * **Context sharing** (`share_contexts`: one saturated scope context
//!   reused by every obligation of a scope, vs a fresh context per
//!   obligation): *bit-identical* stats — every proof starts from private
//!   copies of the mutable search state and leaves the shared E-graph as
//!   it found it, so sharing may not perturb anything, trail counters
//!   included.
//! * **Axiom slicing** (`slice_axioms`: background axioms whose triggers
//!   cannot reach the obligation's vocabulary are dropped): identical
//!   outcomes, refutation labels, and divergence attribution, and
//!   identical work counters — a sliced axiom must have zero E-matches,
//!   so only the registration counts (`quants`, `skipped_quants`,
//!   `sliced_axioms`, inert `per_quant` rows) may change. The quantifier
//!   rows that did any work must agree as multisets keyed by
//!   (kind, trigger, matches, instances, deferred) — ids may shift.
//!
//! The fourth dimension — **activation policies** (`pattern_policies`:
//! goal-directed axioms arm per obligation frame, vs the all-eager
//! schedule that saturates every axiom against the goalless background) —
//! is *scheduling*, not logic: the derivable facts are identical, so a
//! verdict both schedules can afford to decide must come out the same,
//! with the same refutation labels. But the schedules spend the budget in
//! different places (eager pre-saturation work is pre-paid and replayed
//! into every obligation's counters; gated work happens inside the
//! frame), so near exhaustion either schedule may degrade a decision to
//! `unknown` that the other completes. Cross-policy comparisons therefore
//! assert only *decided-verdict* agreement: no `verified`/`not verified`
//! flip ever, full label agreement when neither cell is `unknown`, and no
//! counter comparison at all. Within each policy group the three
//! invisibility claims above are asserted in full.
//!
//! The reference cell is trail × per-obligation × full background ×
//! policy-gated (the shipped default).
//! Configurations are passed explicitly through [`CheckOptions`], not
//! through environment overrides, so the suite is immune to test-harness
//! parallelism.

use oolong::corpus::{self, GenConfig};
use oolong::datagroups::{CheckOptions, Checker, Report};
use oolong::prover::{Budget, SearchStrategy, Stats};
use oolong::syntax::parse_program;

#[derive(Clone, Copy)]
struct Cell {
    strategy: SearchStrategy,
    shared: bool,
    sliced: bool,
    policies: bool,
}

impl Cell {
    fn name(self) -> String {
        format!(
            "{:?}×{}×{}×{}",
            self.strategy,
            if self.shared { "shared" } else { "per-ob" },
            if self.sliced { "sliced" } else { "full" },
            if self.policies { "gated" } else { "all-eager" },
        )
    }
}

fn all_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for strategy in [SearchStrategy::Trail, SearchStrategy::CloneSearch] {
        for shared in [false, true] {
            for sliced in [false, true] {
                for policies in [false, true] {
                    cells.push(Cell {
                        strategy,
                        shared,
                        sliced,
                        policies,
                    });
                }
            }
        }
    }
    cells
}

fn run_cell(source: &str, budget: &Budget, cell: Cell) -> Report {
    let program = parse_program(source).expect("population programs parse");
    let options = CheckOptions {
        budget: budget.clone(),
        strategy: cell.strategy,
        share_contexts: cell.shared,
        slice_axioms: cell.sliced,
        pattern_policies: cell.policies,
        ..CheckOptions::default()
    };
    Checker::new(&program, options)
        .expect("population programs analyse")
        .check_all()
}

/// Strips the `!NN` freshness suffixes from a rendered trigger: fresh
/// symbol numbering depends on how many background formulas were
/// processed before the quantifier, which axiom slicing legitimately
/// shifts. The base names and trigger structure must still agree.
fn normalize_trigger(trigger: &str) -> String {
    let mut out = String::with_capacity(trigger.len());
    let mut chars = trigger.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '!' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The quantifier rows that performed any matching work, as a sorted
/// multiset keyed independently of registration ids (slicing shifts ids).
fn work_rows(stats: &Stats) -> Vec<(String, String, u64, u64, u64)> {
    let mut rows: Vec<_> = stats
        .per_quant
        .iter()
        .filter(|q| q.matches > 0 || q.instances > 0 || q.deferred > 0)
        .map(|q| {
            (
                q.kind.to_string(),
                normalize_trigger(&q.trigger),
                q.matches,
                q.instances,
                q.deferred,
            )
        })
        .collect();
    rows.sort();
    rows
}

/// A culprit row keyed without ids: kind, normalized trigger, and the
/// match/instance/deferral counters.
type CulpritRow = (String, String, u64, u64, u64);

/// Divergence attribution as comparable data: the exhausted dimension and
/// the culprit rows keyed without ids.
fn divergence_key(stats: &Stats) -> Option<(String, Vec<CulpritRow>)> {
    stats.divergence().map(|d| {
        (
            d.reason.as_str().to_string(),
            d.culprits
                .iter()
                .map(|q| {
                    (
                        q.kind.to_string(),
                        normalize_trigger(&q.trigger),
                        q.matches,
                        q.instances,
                        q.deferred,
                    )
                })
                .collect(),
        )
    })
}

/// Checks every matrix invariant for one program under one budget.
fn assert_matrix_agrees_under(name: &str, source: &str, budget: &Budget) {
    let cells = all_cells();
    let reports: Vec<(Cell, Report)> = cells
        .iter()
        .map(|&cell| (cell, run_cell(source, budget, cell)))
        .collect();
    let reference = &reports
        .iter()
        .find(|(c, _)| c.strategy == SearchStrategy::Trail && !c.shared && !c.sliced && c.policies)
        .expect("reference cell present")
        .1;

    // Outcome-level invariants. Same-policy cells agree with the
    // reference in full; cross-policy cells agree on every verdict both
    // schedules could afford to decide (see the module doc).
    for (cell, report) in &reports {
        let cross_policy = !cell.policies;
        let cell = cell.name();
        assert_eq!(
            report.impls.len(),
            reference.impls.len(),
            "{name}: {cell}: obligation count diverges under {budget:?}"
        );
        for (got, want) in report.impls.iter().zip(&reference.impls) {
            assert_eq!(
                got.proc_name, want.proc_name,
                "{name}: {cell}: order diverges"
            );
            // Refutations must land on the same obligation labels.
            let labels = |r: &oolong::datagroups::ImplReport| {
                r.verdict.refutation().map(|refutation| {
                    (
                        refutation.labels.clone(),
                        refutation.primary.as_ref().map(|p| p.id),
                    )
                })
            };
            if cross_policy {
                // The schedules spend the budget in different places, so
                // one may exhaust where the other decides — but a verdict
                // may only *degrade* to unknown across the policy
                // dimension, never flip between decisions.
                let (g, w) = (got.verdict.label(), want.verdict.label());
                if g != "unknown" && w != "unknown" {
                    assert_eq!(
                        g, w,
                        "{name}: {cell}: decided verdict for `{}` flips across the \
                         policy dimension under {budget:?}",
                        got.proc_name
                    );
                    assert_eq!(
                        labels(got),
                        labels(want),
                        "{name}: {cell}: refutation labels for `{}` diverge across \
                         the policy dimension under {budget:?}",
                        got.proc_name
                    );
                }
                continue;
            }
            assert_eq!(
                got.verdict.label(),
                want.verdict.label(),
                "{name}: {cell}: verdict for `{}` diverges under {budget:?}",
                got.proc_name
            );
            assert_eq!(
                labels(got),
                labels(want),
                "{name}: {cell}: refutation labels for `{}` diverge under {budget:?}",
                got.proc_name
            );
            // Divergence attribution: same exhausted dimension, same
            // culprits (keyed without registration ids).
            if let (Some(g), Some(w)) = (got.verdict.stats(), want.verdict.stats()) {
                assert_eq!(
                    g.exhausted, w.exhausted,
                    "{name}: {cell}: exhaustion reason for `{}` diverges under {budget:?}",
                    got.proc_name
                );
                assert_eq!(
                    divergence_key(g),
                    divergence_key(w),
                    "{name}: {cell}: divergence culprits for `{}` diverge under {budget:?}",
                    got.proc_name
                );
            }
        }
    }

    let stats_of = |shared: bool,
                    sliced: bool,
                    strategy: SearchStrategy,
                    policies: bool|
     -> Vec<Option<&Stats>> {
        let (_, report) = reports
            .iter()
            .find(|(c, _)| {
                c.shared == shared
                    && c.sliced == sliced
                    && c.strategy == strategy
                    && c.policies == policies
            })
            .expect("cell present");
        report.impls.iter().map(|r| r.verdict.stats()).collect()
    };

    for policies in [false, true] {
        for strategy in [SearchStrategy::Trail, SearchStrategy::CloneSearch] {
            for sliced in [false, true] {
                // Context sharing is bit-invisible: shared vs per-obligation
                // stats agree exactly, trail counters included.
                for (i, (shared, per_ob)) in stats_of(true, sliced, strategy, policies)
                    .iter()
                    .zip(stats_of(false, sliced, strategy, policies))
                    .enumerate()
                {
                    assert_eq!(
                        shared.cloned(),
                        per_ob.cloned(),
                        "{name}: sharing perturbs stats (impl {i}, {strategy:?}, \
                         sliced={sliced}, policies={policies}) under {budget:?}"
                    );
                }
            }
        }
    }

    for policies in [false, true] {
        for shared in [false, true] {
            for sliced in [false, true] {
                // Trail vs clone agree up to trail telemetry, and the clone
                // reference itself must report no trail activity beyond the
                // shared base (whose counters are zero: base construction
                // never backtracks).
                for (i, (trail, clone)) in stats_of(shared, sliced, SearchStrategy::Trail, policies)
                    .iter()
                    .zip(stats_of(
                        shared,
                        sliced,
                        SearchStrategy::CloneSearch,
                        policies,
                    ))
                    .enumerate()
                {
                    let (Some(trail), Some(clone)) = (trail, clone) else {
                        continue;
                    };
                    assert_eq!(
                        trail.without_trail_counters(),
                        clone.without_trail_counters(),
                        "{name}: strategies diverge (impl {i}, shared={shared}, \
                         sliced={sliced}, policies={policies}) under {budget:?}"
                    );
                    assert_eq!(clone.pops, 0, "{name}: clone search kept a trail");
                    assert_eq!(clone.undone_merges, 0);
                    assert_eq!(clone.trail_depth_max, 0);
                }
            }
        }
    }

    for policies in [false, true] {
        for strategy in [SearchStrategy::Trail, SearchStrategy::CloneSearch] {
            for shared in [false, true] {
                // Slicing only removes inert registrations: all work counters
                // agree, and the quantifier rows that did work agree as
                // multisets. `quants` may only shrink, by exactly the number
                // of dropped axioms plus their never-instantiated registrations.
                for (i, (sliced, full)) in stats_of(shared, true, strategy, policies)
                    .iter()
                    .zip(stats_of(shared, false, strategy, policies))
                    .enumerate()
                {
                    let (Some(sliced), Some(full)) = (sliced, full) else {
                        continue;
                    };
                    let ctx = format!(
                        "{name}: impl {i}, {strategy:?}, shared={shared}, under {budget:?}"
                    );
                    assert_eq!(sliced.instances, full.instances, "{ctx}: instances");
                    assert_eq!(sliced.branches, full.branches, "{ctx}: branches");
                    assert_eq!(sliced.rounds, full.rounds, "{ctx}: rounds");
                    assert_eq!(sliced.max_depth, full.max_depth, "{ctx}: max_depth");
                    assert_eq!(sliced.peak_nodes, full.peak_nodes, "{ctx}: peak_nodes");
                    assert_eq!(
                        sliced.deferred_instances, full.deferred_instances,
                        "{ctx}: deferred"
                    );
                    assert_eq!(
                        sliced.trigger_matches, full.trigger_matches,
                        "{ctx}: matches"
                    );
                    assert_eq!(sliced.merges, full.merges, "{ctx}: merges");
                    assert_eq!(sliced.clauses, full.clauses, "{ctx}: clauses");
                    assert_eq!(sliced.pops, full.pops, "{ctx}: pops");
                    assert_eq!(
                        sliced.undone_merges, full.undone_merges,
                        "{ctx}: undone merges"
                    );
                    assert_eq!(
                        sliced.trail_depth_max, full.trail_depth_max,
                        "{ctx}: trail depth"
                    );
                    assert_eq!(work_rows(sliced), work_rows(full), "{ctx}: work rows");
                    assert!(
                        sliced.quants <= full.quants,
                        "{ctx}: slicing grew the registry ({} > {})",
                        sliced.quants,
                        full.quants
                    );
                    assert_eq!(full.sliced_axioms, 0, "{ctx}: full run reported slicing");
                }
            }
        }
    }
}

fn assert_matrix_agrees(name: &str, source: &str, budgets: &[Budget]) {
    for budget in budgets {
        assert_matrix_agrees_under(name, source, budget);
    }
}

/// A roomy-but-bounded budget plus deliberately starved ones, so both
/// `Proved` searches and every `Unknown` exhaustion path are compared.
/// The roomy budget is capped like the soundness suite's: an unbounded
/// default budget would let hopeless generated VCs grind for minutes,
/// and a timeout here only moves an outcome to `Unknown` — which every
/// matrix cell must still agree on.
fn budget_grid() -> Vec<Budget> {
    let roomy = Budget {
        max_instances: 8_000,
        max_branches: 8_000,
        max_rounds: 400,
        ..Budget::default()
    };
    vec![
        roomy.clone(),
        Budget::tiny(),
        // The branch- and depth-starved entries also cap instantiation:
        // once splitting is blocked the search falls back to saturating
        // each stuck branch, and an 8k-instance grind per branch adds
        // nothing to the equivalence claim being tested.
        Budget {
            max_branches: 6,
            max_instances: 600,
            max_rounds: 60,
            ..roomy.clone()
        },
        Budget {
            max_depth: 2,
            max_instances: 600,
            max_rounds: 60,
            ..roomy.clone()
        },
        Budget {
            max_instances: 40,
            max_rounds: 25,
            ..roomy
        },
    ]
}

#[test]
fn matrix_agrees_on_paper_corpus() {
    for p in corpus::all() {
        assert_matrix_agrees(p.name, p.source, &budget_grid());
    }
}

#[test]
fn matrix_agrees_on_generated_programs() {
    let cfg = GenConfig::default();
    for seed in 0..12 {
        let src = corpus::generate_source(seed, &cfg);
        assert_matrix_agrees(&format!("generated seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn matrix_agrees_on_cyclic_programs() {
    // Cyclic rep inclusions starve the matcher (the paper's §5 third
    // example); every cell must agree on the Unknown outcomes and on
    // which budget dimension tripped.
    for seed in 0..6 {
        let src = corpus::generate_cyclic_source(seed);
        assert_matrix_agrees(&format!("cyclic seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn matrix_agrees_on_seeded_violations() {
    // Programs with a known injected bug exercise the refutation path:
    // the prover must actually close the negated obligation, and every
    // cell must find the same refuting labels while doing so (the
    // populations above are dominated by Proved/Unknown VCs).
    for seed in 0..15 {
        let v = corpus::generate_seeded_violation_source(seed);
        assert_matrix_agrees(
            &format!("seeded violation seed {seed} ({:?})", v.bug),
            &v.source,
            &budget_grid(),
        );
    }
}

#[test]
fn matrix_agrees_on_invariant_programs() {
    // Correct programs carrying invariant-preserved obligations at exits
    // and call boundaries: the newest obligation kind must be just as
    // invisible to strategy, sharing, slicing, and policy scheduling.
    for seed in 0..6 {
        let src = corpus::generate_invariant_source(seed);
        assert_matrix_agrees(&format!("invariant seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn matrix_agrees_on_read_effect_programs() {
    // Correct programs whose read licenses discharge through the
    // goal-directed read-frame-inc-reflexive axiom — the population where
    // the policy dimension actually gates a reads-specific axiom.
    for seed in 0..6 {
        let src = corpus::generate_read_effect_source(seed);
        assert_matrix_agrees(&format!("read-effect seed {seed}"), &src, &budget_grid());
    }
}

#[test]
fn matrix_agrees_on_branchy_programs() {
    // Branch-heavy choice chains are where the trail actually earns its
    // keep: 2^depth case splits per VC. The VC itself has 2^depth leaves,
    // so the clone-based reference gets slow very fast — a tighter grid
    // (still completing full searches at these depths) keeps the suite
    // within CI time.
    let branchy_grid = vec![
        Budget {
            max_instances: 2_500,
            max_branches: 2_000,
            max_rounds: 200,
            ..Budget::default()
        },
        Budget::tiny(),
        Budget {
            max_branches: 6,
            max_instances: 600,
            max_rounds: 60,
            ..Budget::default()
        },
        Budget {
            max_depth: 2,
            max_instances: 600,
            max_rounds: 60,
            ..Budget::default()
        },
    ];
    for seed in 0..6 {
        let depth = 3 + (seed as usize % 3);
        let src = corpus::generate_branchy_source(seed, depth);
        assert_matrix_agrees(
            &format!("branchy seed {seed} depth {depth}"),
            &src,
            &branchy_grid,
        );
    }
}
