//! Slicing-soundness regression corpus.
//!
//! The axiom-relevance slicer (`datagroups::slice`) claims that dropping
//! a background axiom whose triggers cannot reach the obligation's
//! vocabulary can never change a verdict. This suite pins the converse
//! risk — what happens if the slicer ever *wrongly* drops an axiom — to
//! concrete programs:
//!
//! * For every background-axiom family with a corpus witness, dropping
//!   that axiom from a verified obligation flips its verdict
//!   ([`WITNESSES`]). Each entry is a regression tripwire: if a future
//!   slicer change starts dropping the named axiom for that obligation,
//!   the obligation stops verifying and the differential and matrix
//!   suites light up — but this test names the culprit axiom directly.
//! * Families with no flippable witness are covered by the weaker but
//!   universal invariant: any axiom whose quantifiers matched in a
//!   full-background run is kept by the slicer, and axioms the slicer's
//!   structural gate cannot analyze (ground facts, untriggered or
//!   compound formulas) are always kept. Load-bearing axioms that never
//!   E-match (their ground parts do the work) fall in this class, which
//!   is exactly why the slicer only ever considers pure triggered
//!   universals.
//!
//! Axiom names come from [`Checker::background_names`], which is
//! index-aligned with `Vc::hypotheses[..background_hyps]`.

use std::collections::{BTreeSet, HashSet};

use oolong::corpus;
use oolong::datagroups::{is_sliceable, BackgroundSlice, CheckOptions, Checker};
use oolong::prover::Budget;
use oolong::syntax::parse_program;

/// One verdict-flip witness per background-axiom family that has one in
/// the paper corpus: `(program, naive mode, procedure, axiom name)`.
/// Dropping the named axiom from the named obligation's background makes
/// it stop verifying.
const WITNESSES: &[(&str, bool, &str, &str)] = &[
    ("stack_module", false, "sinit", "select-update-same"),
    ("example3", false, "updateAll", "select-update-other"),
    ("section30_q", false, "q", "new-unallocated"),
    ("section30_q", false, "q", "succ-alive-iff"),
    ("section30_q", false, "q", "succ-preserves-select"),
    ("section30_q", false, "q", "null-is-alive"),
    ("section30_q", false, "q", "reads-are-alive-or-null"),
    ("section30_q", false, "q", "inclusion-connection"),
    ("array_table", false, "touch_direct", "comparisons-are-ints"),
    ("section30_q", false, "q", "pivot-uniqueness"),
    ("section30_q", false, "q", "owner-acyclicity"),
    ("section30_q", false, "q", "pivot-values-are-objects"),
    ("array_table", false, "observer", "slot-values-are-objects"),
    (
        "array_table",
        false,
        "observer",
        "elem-pivot-values-are-objects",
    ),
    ("section30_q", false, "q", "local-inc-enum:cnt"),
    ("section30_q", false, "q", "rep-range:obj"),
    ("example3", false, "updateAll", "rep:g-next>g"),
    (
        "array_table",
        false,
        "touch_direct",
        "rep-elem:state-buckets>bucketstate",
    ),
    ("section30_q", true, "q", "closed-world-rep"),
];

/// Families present in the corpus background that neither flip a verdict
/// nor E-match anywhere in it: their kept-ness is guarded by the
/// structural always-keep rule checked in
/// [`unsliceable_axioms_are_always_kept`]. `local-inc-refl` (ground
/// reflexivity facts) joined the list when goal-directed scheduling made
/// every corpus proof complete within budget from the `local-inc-reflexive`
/// universal alone — the ground facts are now pure accelerators, and
/// ground facts are unsliceable by construction.
const INERT_FAMILIES: &[&str] = &["local-inc", "local-inc-refl", "owner-acyclicity-element"];

fn witness_budget() -> Budget {
    Budget {
        max_instances: 8_000,
        max_branches: 8_000,
        max_rounds: 400,
        ..Budget::default()
    }
}

fn checker_for(source: &str, naive: bool) -> Checker {
    let program = parse_program(source).expect("corpus program parses");
    let options = CheckOptions {
        budget: witness_budget(),
        naive,
        ..CheckOptions::default()
    };
    // `Checker::new` borrows the program only to analyze it.
    Checker::new(&program, options).expect("corpus program analyses")
}

fn family(name: &str) -> &str {
    name.split(':').next().unwrap()
}

#[test]
fn dropping_a_needed_axiom_flips_the_verdict() {
    for &(prog, naive, proc, axiom) in WITNESSES {
        let p = corpus::by_name(prog).unwrap_or_else(|| panic!("unknown corpus program {prog}"));
        let checker = checker_for(p.source, naive);
        let names = checker.background_names();
        let idx = names
            .iter()
            .position(|n| n == axiom)
            .unwrap_or_else(|| panic!("{prog}: no background axiom named `{axiom}`"));
        let impl_id = checker
            .scope()
            .impls()
            .map(|(id, _)| id)
            .find(|&id| {
                checker
                    .vc(id)
                    .map(|vc| vc.proc_name == proc)
                    .unwrap_or(false)
            })
            .unwrap_or_else(|| panic!("{prog}: no implementation of `{proc}`"));
        let vc = checker.vc(impl_id).expect("witness VC generates");

        // The obligation verifies with its (sliced) background…
        let baseline = checker.verdict_for_vc(&vc);
        assert_eq!(
            baseline.label(),
            "verified",
            "{prog}/{proc}: witness baseline no longer verifies"
        );
        // …the slicer keeps the axiom under test…
        let slice = checker.background_slice(&vc);
        assert!(
            slice.keep[idx],
            "{prog}/{proc}: slicer dropped `{axiom}`, which the proof needs"
        );
        // …and wrongly dropping it flips the verdict.
        let mut keep = vec![true; vc.background_hyps];
        keep[idx] = false;
        let mut ctx = checker.context_for_slice(&vc, &BackgroundSlice { keep });
        let dropped = checker.verdict_for_vc_in(&mut ctx, &vc, 1);
        assert_ne!(
            dropped.label(),
            "verified",
            "{prog}/{proc}: dropping `{axiom}` no longer flips the verdict — \
             the witness is stale, find a new one"
        );
    }
}

#[test]
fn fired_axioms_are_kept_across_the_corpus() {
    let mut fired_families: BTreeSet<String> = BTreeSet::new();
    let mut all_families: BTreeSet<String> = BTreeSet::new();
    for p in corpus::all() {
        for naive in [false, true] {
            let checker = checker_for(p.source, naive);
            let names = checker.background_names();
            for n in &names {
                all_families.insert(family(n).to_string());
            }
            let impls: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
            for id in impls {
                let Ok(vc) = checker.vc(id) else { continue };
                let keep = checker.background_slice(&vc).keep;
                let full = BackgroundSlice {
                    keep: vec![true; vc.background_hyps],
                };
                let mut ctx = checker.context_for_slice(&vc, &full);
                let verdict = checker.verdict_for_vc_in(&mut ctx, &vc, 0);
                let Some(stats) = verdict.stats() else {
                    continue;
                };
                let fired: HashSet<usize> = stats
                    .per_quant
                    .iter()
                    .filter(|q| q.matches > 0)
                    .map(|q| q.id)
                    .collect();
                for (axiom, &kept) in keep.iter().enumerate() {
                    if ctx
                        .background_quants(axiom)
                        .iter()
                        .any(|q| fired.contains(q))
                    {
                        fired_families.insert(family(&names[axiom]).to_string());
                        assert!(
                            kept,
                            "{} ({}): slicer dropped `{}` but it matched in the full run",
                            p.name, vc.proc_name, names[axiom]
                        );
                    }
                }
            }
        }
    }
    // Every family in the corpus background is pinned by one of the two
    // mechanisms: a verdict-flip witness, a fired-and-kept observation,
    // or (for the known inert ones) the structural always-keep rule.
    let witnessed: BTreeSet<&str> = WITNESSES.iter().map(|&(_, _, _, a)| family(a)).collect();
    for fam in &all_families {
        assert!(
            witnessed.contains(fam.as_str())
                || fired_families.contains(fam)
                || INERT_FAMILIES.contains(&fam.as_str()),
            "background family `{fam}` has no slicing regression coverage: \
             add a flip witness or record why it cannot fire"
        );
    }
    // And the inert list stays honest: the families it exempts exist.
    for fam in INERT_FAMILIES {
        assert!(
            all_families.contains(*fam),
            "inert family `{fam}` no longer appears in any corpus background"
        );
    }
}

#[test]
fn unsliceable_axioms_are_always_kept() {
    for p in corpus::all() {
        for naive in [false, true] {
            let checker = checker_for(p.source, naive);
            let names = checker.background_names();
            let impls: Vec<_> = checker.scope().impls().map(|(id, _)| id).collect();
            for id in impls {
                let Ok(vc) = checker.vc(id) else { continue };
                let keep = checker.background_slice(&vc).keep;
                for (i, &kept) in keep.iter().enumerate() {
                    if !is_sliceable(&vc.hypotheses[i]) {
                        assert!(
                            kept,
                            "{} ({}): unsliceable axiom `{}` was dropped",
                            p.name, vc.proc_name, names[i]
                        );
                    }
                }
            }
        }
    }
}
