//! Differential soundness testing: the static checker against the
//! interpreter's runtime effect monitor.
//!
//! The paper's guarantee for a program that passes the checker wholesale:
//! every implementation modifies only what its modifies list allows, and
//! no execution goes wrong. Operationally (with the definedness conditions
//! the paper elides): **no run may raise an effect violation or an
//! assertion failure**. Null dereferences and type errors are outside the
//! guarantee (the paper's checker elides expression definedness "for
//! brevity", and so does ours by default).

use oolong::corpus::{self, GenConfig};
use oolong::datagroups::{CheckOptions, Checker};
use oolong::interp::{
    audit_acyclicity, audit_pivot_uniqueness, ExecConfig, Interp, RngOracle, RunOutcome, WrongKind,
};
use oolong::sema::Scope;
use oolong::syntax::parse_program;

/// Runs every procedure of a fully-verified program under many oracles and
/// asserts the paper's guarantee.
fn assert_sound(name: &str, source: &str, seeds: u64) {
    let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    // A reduced prover budget keeps the differential loop fast; a timeout
    // here only moves an implementation from `verified` to `unknown`,
    // which this test then skips.
    let mut options = CheckOptions::default();
    options.budget.max_instances = 8_000;
    options.budget.max_branches = 8_000;
    let checker = Checker::new(&program, options).unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = checker.check_all();
    if !report.all_verified() {
        return; // the guarantee only covers checker-approved programs
    }
    let scope = Scope::analyze(&program).expect("analyses");
    let procs: Vec<String> = scope.procs().map(|(_, p)| p.name.clone()).collect();
    for proc in procs {
        for seed in 0..seeds {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
            if let RunOutcome::Wrong(w) = interp.run_proc_fresh(&proc) {
                assert!(
                    !matches!(w.kind, WrongKind::EffectViolation | WrongKind::AssertFailed),
                    "{name}: verified program, but running `{proc}` with seed {seed} hit: {w}"
                );
            }
            // Verified (restriction-respecting) programs maintain the
            // store invariants behind axioms (6) and (7).
            audit_pivot_uniqueness(&scope, interp.store()).unwrap_or_else(|e| {
                panic!("{name}/{proc} seed {seed}: pivot uniqueness audit: {e}")
            });
            audit_acyclicity(&scope, interp.store())
                .unwrap_or_else(|e| panic!("{name}/{proc} seed {seed}: acyclicity audit: {e}"));
        }
    }
}

#[test]
fn corpus_programs_are_sound() {
    for p in corpus::all() {
        // The array program needs a deeper matching generation; it gets
        // its own differential test below.
        if p.name == "array_table" {
            continue;
        }
        assert_sound(p.name, p.source, 30);
    }
}

/// The array-dependencies program: run the table pipeline under many
/// oracles and assert the monitor never fires (the static story is covered
/// by E12; runs here exercise slots, elementwise closures, and havoc).
#[test]
fn array_table_runtime_is_sound() {
    let program = parse_program(corpus::paper::ARRAY_TABLE.source).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    for proc in ["tinit", "touch", "binc"] {
        for seed in 0..25 {
            let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
            if let oolong::interp::RunOutcome::Wrong(w) = interp.run_proc_fresh(proc) {
                assert!(
                    !matches!(w.kind, WrongKind::EffectViolation | WrongKind::AssertFailed),
                    "{proc} seed {seed}: {w}"
                );
            }
        }
    }
}

#[test]
fn generated_restriction_respecting_programs_are_sound() {
    let cfg = GenConfig::default();
    for seed in 0..25 {
        let source = corpus::generate_source(seed, &cfg);
        assert_sound(&format!("generated-{seed}"), &source, 12);
    }
}

/// Larger generated programs, fewer seeds: exercises deeper call chains
/// and bigger scopes.
#[test]
fn generated_larger_programs_are_sound() {
    let cfg = GenConfig {
        groups: 5,
        fields: 9,
        procs: 7,
        impls: 6,
        body_len: 8,
        ..GenConfig::default()
    };
    for seed in 0..5 {
        let source = corpus::generate_source(seed, &cfg);
        assert_sound(&format!("generated-large-{seed}"), &source, 6);
    }
}

/// Differential soundness under budget starvation: cyclic rep inclusions
/// (the paper's §5 third example, generalised to random pivot cycles) give
/// the prover endless instantiation chains, so a starved budget must come
/// back `unknown` — with a divergence attribution that names the axioms
/// that consumed the budget — and *never* refute a correct program. The
/// same programs under the regular differential budget then go through
/// `assert_sound`, tying the static verdict back to the runtime monitor.
#[test]
fn starved_cyclic_rep_programs_diverge_soundly() {
    use oolong::prover::{Budget, QuantKind};

    let mut saw_rep_culprit = false;
    let mut saw_unknown = false;
    for seed in 0..12 {
        let source = corpus::generate_cyclic_source(seed);
        let program = parse_program(&source).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let options = CheckOptions {
            budget: Budget::tiny(),
            ..CheckOptions::default()
        };
        let checker =
            Checker::new(&program, options).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for rep in &checker.check_all().impls {
            // Running out of budget must surface as `unknown`, never as a
            // refutation: every write and call in these programs is
            // licensed through the pivot cycle.
            assert!(
                !matches!(rep.verdict, oolong::datagroups::Verdict::NotVerified(..)),
                "seed {seed}: starved budget refuted correct impl {}: {}",
                rep.proc_name,
                rep.verdict
            );
            let Some(divergence) = rep.verdict.divergence() else {
                continue;
            };
            saw_unknown = true;
            assert!(
                !divergence.culprits.is_empty(),
                "seed {seed}: unknown verdict for {} without culprits",
                rep.proc_name
            );
            // The full per-axiom profile must show the rep-inclusion
            // axioms doing instantiation work — they are the loop.
            let stats = rep.verdict.stats().expect("unknown verdicts carry stats");
            assert!(
                stats
                    .per_quant
                    .iter()
                    .any(|q| q.kind == QuantKind::RepInclusion && q.instances > 0),
                "seed {seed}: no rep-inclusion instantiations recorded for {}",
                rep.proc_name
            );
            if divergence
                .culprits
                .iter()
                .any(|c| c.kind == QuantKind::RepInclusion)
            {
                saw_rep_culprit = true;
            }
        }
    }
    assert!(
        saw_unknown,
        "the tiny budget must starve some cyclic program"
    );
    assert!(
        saw_rep_culprit,
        "divergence attribution must name a rep-inclusion axiom as a culprit"
    );
    // The other side of the differential: with a real budget the same
    // programs verify, and verified means the runtime monitor stays quiet.
    for seed in 0..6 {
        let source = corpus::generate_cyclic_source(seed);
        assert_sound(&format!("cyclic-{seed}"), &source, 8);
    }
}

/// The inverse direction as a sanity check on the test itself: programs
/// that the *naive* checker wrongly approves do produce runtime assertion
/// failures (see `examples/unsound_naive.rs` for the full narrative).
#[test]
fn naive_approval_is_no_guarantee() {
    let whole = "
group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc setup(st, r) modifies st.contents, r.obj
proc q()
impl q() {
  var st, result, v, n in
    st := new() ; result := new() ; setup(st, result) ;
    v := result.obj ; assume v != null ; n := v.cnt ;
    push(st, 3) ; assert n = v.cnt
  end
}
field vec in contents maps cnt into contents
impl setup(st, r) { st.vec := new() ; r.obj := st.vec }
";
    let program = parse_program(whole).expect("parses");
    let scope = Scope::analyze(&program).expect("analyses");
    let mut failures = 0;
    for seed in 0..100 {
        let mut interp = Interp::new(&scope, ExecConfig::default(), RngOracle::seeded(seed));
        if let RunOutcome::Wrong(w) = interp.run_proc_fresh("q") {
            assert_eq!(
                w.kind,
                WrongKind::AssertFailed,
                "only the assert may fail here"
            );
            failures += 1;
        }
    }
    assert!(failures > 0, "the §3.0 counterexample must be reachable");
}
