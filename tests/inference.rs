//! Accuracy and soundness suite for the frame-inference subsystem
//! (`oolong infer`).
//!
//! Soundness is checked by construction: every inferred annotation set is
//! re-verified through the real engine, so a frame that misses a write
//! cannot come back `verified`. The suite covers the stripped paper
//! corpus (every originally-verified implementation re-verifies from
//! inferred frames alone), a generated population with ground truth
//! (≥50 programs in both stripping modes, exact-match rate and the
//! strict-superset guarantee for mismatches), the seeded-violation repair
//! shapes, and `--apply` idempotence.

use std::collections::BTreeSet;

use oolong::corpus::{
    self, generate_seeded_violation_with, generate_unannotated_source, SeededBug, UnannotatedConfig,
};
use oolong::engine::{Engine, EngineOptions};
use oolong::infer::{
    accuracy, infer, resolve_spec, strip_implemented_modifies, strip_implemented_reads,
    GroundTruth, InferOptions, Match, ProposalKind, Provenance,
};

fn engine() -> Engine {
    Engine::new(EngineOptions::default()).expect("in-memory engine")
}

fn truth_of(gen: &corpus::UnannotatedProgram) -> GroundTruth {
    GroundTruth::new(
        gen.truth
            .iter()
            .map(|t| (t.proc.clone(), t.entries.clone()))
            .collect(),
    )
}

/// Stripping the `modifies` clauses of every implemented procedure in the
/// paper corpus and re-inferring them reaches a fixpoint within the round
/// bound, and every implementation the original annotations verified is
/// verified again from the inferred annotations alone.
#[test]
fn stripped_paper_corpus_reverifies() {
    let engine = engine();
    for program in corpus::all() {
        let baseline = engine.check_source(program.name, program.source);
        let baseline_ok: BTreeSet<&str> = baseline
            .obligations
            .iter()
            .filter(|o| o.verdict.is_verified())
            .map(|o| o.proc_name.as_str())
            .collect();
        let stripped = strip_implemented_modifies(program.source)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        let outcome = infer(&engine, program.name, &stripped, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(
            outcome.fixpoint,
            "{}: no fixpoint within {} rounds",
            program.name, outcome.rounds
        );
        for proc in &baseline_ok {
            assert!(
                !outcome.unverified_procs.iter().any(|p| p == proc),
                "{}: `{proc}` verified with the original annotations but \
                 not with the inferred ones (notes: {:?})",
                program.name,
                outcome.notes
            );
        }
    }
}

/// Inference over a generated population with known ground truth: every
/// program verifies from the inferred annotations (soundness 100%), at
/// least 90% of procedures get the exact ground-truth frame, and every
/// mismatch is a strict superset (a sound over-approximation, never a
/// missed location).
#[test]
fn generated_population_is_sound_and_minimal() {
    let engine = engine();
    let configs = [
        UnannotatedConfig::default(),
        UnannotatedConfig {
            keep_includes: true,
            ..UnannotatedConfig::default()
        },
    ];
    let mut programs = 0usize;
    let mut procs = 0usize;
    let mut exact = 0usize;
    for cfg in &configs {
        for seed in 1..=30u64 {
            let gen = generate_unannotated_source(seed, cfg);
            let name = format!("{}-ki{}", gen.name, cfg.keep_includes);
            let outcome = infer(&engine, &name, &gen.source, &InferOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(outcome.fixpoint, "{name}: no fixpoint");
            assert!(
                outcome.verified,
                "{name}: inferred annotations do not verify \
                 (unverified: {:?}, notes: {:?})",
                outcome.unverified_procs, outcome.notes
            );
            let acc = accuracy(&outcome, &truth_of(&gen)).expect("applied unit parses");
            for (proc, m) in &acc.procs {
                procs += 1;
                match m {
                    Match::Exact => exact += 1,
                    Match::Superset => {}
                    Match::Other => panic!(
                        "{name}: `{proc}` inferred frame is not a superset of \
                         ground truth — a location was missed"
                    ),
                }
            }
            programs += 1;
        }
    }
    assert!(programs >= 50, "population too small: {programs}");
    assert!(
        exact * 10 >= procs * 9,
        "exact-match rate below 90%: {exact}/{procs}"
    );
}

/// The seeded-violation shapes the diagnosis subsystem pins are exactly
/// the shapes the repair loop must handle: the forgotten-`in` and
/// missing-closure-member bugs are repaired with a minimal
/// group-membership edit, while the stray-pivot-write restriction
/// violation is correctly reported as unrepairable by annotations.
#[test]
fn seeded_violations_repair_to_minimal_edits() {
    let engine = engine();
    for seed in [3u64, 11, 27] {
        for bug in [SeededBug::ForgottenIn, SeededBug::MissingClosureMember] {
            let v = generate_seeded_violation_with(seed, bug);
            let name = format!("seeded-{seed}-{bug:?}");
            let outcome =
                infer(&engine, &name, &v.source, &InferOptions::default()).expect("infers");
            assert!(
                outcome.verified,
                "{name}: not repaired: {:?}",
                outcome.notes
            );
            let memberships: Vec<_> = outcome
                .proposals
                .iter()
                .filter_map(|p| match &p.kind {
                    ProposalKind::Membership { field, group } => {
                        Some((field.as_str(), group.as_str()))
                    }
                    ProposalKind::Extend(_) | ProposalKind::ReadsExtend(_) => None,
                })
                .collect();
            assert_eq!(
                memberships,
                vec![("b", "g")],
                "{name}: the minimal edit restores the membership"
            );
        }
        let v = generate_seeded_violation_with(seed, SeededBug::StrayPivotWrite);
        let name = format!("seeded-{seed}-pivot");
        let outcome = infer(&engine, &name, &v.source, &InferOptions::default()).expect("infers");
        assert!(outcome.fixpoint, "{name}: no fixpoint");
        assert!(
            !outcome.verified,
            "{name}: a restriction violation cannot be repaired by annotations"
        );
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("restriction violation")),
            "{name}: the unrepairable refutation is reported: {:?}",
            outcome.notes
        );
    }
}

/// Re-running inference on a unit whose proposals were applied proposes
/// nothing: the applied annotations cover every demand, so the first
/// engine round verifies and the loop stops immediately.
#[test]
fn apply_is_idempotent() {
    let engine = engine();
    for spec in [
        "stripped:stack_module",
        "stripped:example3",
        "unannotated:3",
    ] {
        let unit = resolve_spec(spec)
            .unwrap_or_else(|| panic!("`{spec}` resolves"))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        let first = infer(&engine, spec, &unit.source, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(first.verified, "{spec}: first pass verifies");
        assert!(
            !first.proposals.is_empty(),
            "{spec}: the stripped unit needs proposals"
        );

        // The per-proposal edits reproduce the applied source exactly —
        // they are machine-applicable, not just a rendering.
        let edits: Vec<_> = first.edits.iter().flatten().cloned().collect();
        assert_eq!(
            oolong::infer::apply_edits(&unit.source, &edits),
            first.edited_source,
            "{spec}: edits compose to the applied source"
        );

        let name = format!("{spec}-applied");
        let second = infer(
            &engine,
            &name,
            &first.edited_source,
            &InferOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(second.verified, "{spec}: applied unit verifies");
        assert_eq!(
            second.proposals,
            vec![],
            "{spec}: re-inference on the applied unit proposes edits"
        );
        assert_eq!(second.rounds, 1, "{spec}: one confirming round only");
    }
}

/// A declared-but-insufficient `reads` clause is completed by the static
/// may-read phase alone: the body's direct dereference of `t.h` is not
/// covered by `reads t.f`, so phase 1 proposes the extension and the
/// first engine round confirms.
#[test]
fn insufficient_reads_clause_completed_statically() {
    let engine = engine();
    let source = "group g\n\
                  field f in g\n\
                  field h in g\n\
                  proc p(t) modifies t.g reads t.f\n\
                  impl p(t) {\n  assume t != null ;\n  t.f := t.h\n}\n";
    let outcome = infer(&engine, "reads-static", source, &InferOptions::default()).expect("infers");
    assert!(
        outcome.verified,
        "completed clause verifies (notes: {:?})",
        outcome.notes
    );
    assert_eq!(outcome.rounds, 1, "static proposal, one confirming round");
    let reads: Vec<_> = outcome
        .proposals
        .iter()
        .filter(|p| matches!(p.kind, ProposalKind::ReadsExtend(_)))
        .collect();
    assert_eq!(reads.len(), 1, "exactly one reads extension");
    assert_eq!(reads[0].provenance, Provenance::Static);
    assert!(
        outcome.edited_source.contains("reads t.f, t.h"),
        "extension appends to the declared clause: {}",
        outcome.edited_source
    );
}

/// The acceptance scenario for read-effect inference: a dereference in
/// call-argument position is invisible to the static may-read phase (the
/// permissive call model leaves it to the prover), so the proposal that
/// completes the clause can only come from a refuted read license —
/// repair provenance, round ≥ 1.
#[test]
fn call_argument_read_requires_repair_provenance() {
    let engine = engine();
    let source = "group g\n\
                  field v in g\n\
                  field w in g\n\
                  field b in g\n\
                  proc helper(x)\n\
                  proc peek(t) modifies t.g reads t.v\n\
                  impl peek(t) {\n  assume t != null ;\n  t.v := t.w ;\n  helper(t.b)\n}\n";
    let outcome = infer(&engine, "reads-repair", source, &InferOptions::default()).expect("infers");
    assert!(
        outcome.verified,
        "repaired clause verifies (notes: {:?})",
        outcome.notes
    );
    let mut static_reads = 0usize;
    let mut repair_reads = 0usize;
    for p in &outcome.proposals {
        if matches!(p.kind, ProposalKind::ReadsExtend(_)) {
            match p.provenance {
                Provenance::Static => static_reads += 1,
                Provenance::Repair => {
                    repair_reads += 1;
                    assert!(p.round >= 1, "repair proposals carry their round");
                }
            }
        }
    }
    assert_eq!(
        static_reads, 1,
        "the direct dereference is found statically"
    );
    assert_eq!(
        repair_reads, 1,
        "the call-argument dereference needs the refuted license: {:?}",
        outcome.proposals
    );
    assert!(
        outcome.edited_source.contains("reads t.v, t.w, t.b"),
        "both extensions land on the declared clause: {}",
        outcome.edited_source
    );
    // The per-proposal edits are machine-applicable against the base.
    let edits: Vec<_> = outcome.edits.iter().flatten().cloned().collect();
    assert_eq!(
        oolong::infer::apply_edits(source, &edits),
        outcome.edited_source
    );
}

/// Proposing a `reads` clause where none was declared is opt-in: the
/// default options leave an unclauses procedure alone (no obligations, so
/// nothing to repair), while `infer_reads` proposes the full static
/// footprint — and when the declaration carries neither clause, the
/// inserted `modifies` stays before the inserted `reads`.
#[test]
fn reads_clause_invention_is_opt_in() {
    let engine = engine();
    let source = "group g\n\
                  field v in g\n\
                  field w in g\n\
                  proc p(t)\n\
                  impl p(t) {\n  assume t != null ;\n  t.v := t.w\n}\n";
    let default =
        infer(&engine, "reads-optin-off", source, &InferOptions::default()).expect("infers");
    assert!(
        !default
            .proposals
            .iter()
            .any(|p| matches!(p.kind, ProposalKind::ReadsExtend(_))),
        "no reads clause invented by default: {:?}",
        default.proposals
    );
    let opts = InferOptions {
        infer_reads: true,
        ..InferOptions::default()
    };
    let outcome = infer(&engine, "reads-optin-on", source, &opts).expect("infers");
    assert!(
        outcome.verified,
        "invented annotations verify (notes: {:?})",
        outcome.notes
    );
    assert!(
        outcome
            .edited_source
            .contains("proc p(t) modifies t.v reads t.w"),
        "modifies lands before reads at the shared anchor: {}",
        outcome.edited_source
    );
    let edits: Vec<_> = outcome.edits.iter().flatten().cloned().collect();
    assert_eq!(
        oolong::infer::apply_edits(source, &edits),
        outcome.edited_source
    );
}

/// Stripping the `reads` clauses of the generated read-effect population
/// and re-inferring them under `infer_reads` reaches a verified fixpoint,
/// and the canonicalizer lifts the per-field footprint back to the
/// declared group.
#[test]
fn stripped_read_effect_population_reverifies() {
    let engine = engine();
    let opts = InferOptions {
        infer_reads: true,
        ..InferOptions::default()
    };
    for seed in 0..6u64 {
        let source = corpus::generate_read_effect_source(seed);
        let stripped = strip_implemented_reads(&source).expect("strips");
        assert!(
            !stripped.contains("reads"),
            "seed {seed}: clause stripped: {stripped}"
        );
        let name = format!("reads-stripped-{seed}");
        let outcome = infer(&engine, &name, &stripped, &opts).expect("infers");
        assert!(
            outcome.verified,
            "seed {seed}: re-inferred reads verify (notes: {:?})",
            outcome.notes
        );
        assert!(
            outcome.edited_source.contains("reads t.g"),
            "seed {seed}: footprint lifts to the group: {}",
            outcome.edited_source
        );
    }
}

/// The `unannotated:SEED` workload spec is deterministic and carries
/// ground truth; the other schemes resolve as documented.
#[test]
fn workload_specs_resolve() {
    let a = resolve_spec("unannotated:42").expect("scheme").expect("ok");
    let b = resolve_spec("unannotated:42").expect("scheme").expect("ok");
    assert_eq!(a.source, b.source, "generation is deterministic");
    assert!(a.truth.is_some(), "generated units carry ground truth");

    let s = resolve_spec("stripped:example1")
        .expect("scheme")
        .expect("ok");
    assert!(
        !s.source.contains("proc p(t) modifies"),
        "the implemented procedure's frame is stripped"
    );
    assert!(
        s.source.contains("proc q(u) modifies u.g"),
        "interface-only procedures keep their declared frame"
    );
    assert!(s.truth.is_none());

    let c = resolve_spec("corpus:example1")
        .expect("scheme")
        .expect("ok");
    assert!(c.source.contains("modifies"));

    assert!(resolve_spec("unannotated:nope").expect("scheme").is_err());
    assert!(resolve_spec("stripped:nope").expect("scheme").is_err());
    assert!(
        resolve_spec("some/file.oo").is_none(),
        "plain paths pass through"
    );
}
