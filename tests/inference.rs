//! Accuracy and soundness suite for the frame-inference subsystem
//! (`oolong infer`).
//!
//! Soundness is checked by construction: every inferred annotation set is
//! re-verified through the real engine, so a frame that misses a write
//! cannot come back `verified`. The suite covers the stripped paper
//! corpus (every originally-verified implementation re-verifies from
//! inferred frames alone), a generated population with ground truth
//! (≥50 programs in both stripping modes, exact-match rate and the
//! strict-superset guarantee for mismatches), the seeded-violation repair
//! shapes, and `--apply` idempotence.

use std::collections::BTreeSet;

use oolong::corpus::{
    self, generate_seeded_violation_with, generate_unannotated_source, SeededBug, UnannotatedConfig,
};
use oolong::engine::{Engine, EngineOptions};
use oolong::infer::{
    accuracy, infer, resolve_spec, strip_implemented_modifies, GroundTruth, InferOptions, Match,
    ProposalKind,
};

fn engine() -> Engine {
    Engine::new(EngineOptions::default()).expect("in-memory engine")
}

fn truth_of(gen: &corpus::UnannotatedProgram) -> GroundTruth {
    GroundTruth::new(
        gen.truth
            .iter()
            .map(|t| (t.proc.clone(), t.entries.clone()))
            .collect(),
    )
}

/// Stripping the `modifies` clauses of every implemented procedure in the
/// paper corpus and re-inferring them reaches a fixpoint within the round
/// bound, and every implementation the original annotations verified is
/// verified again from the inferred annotations alone.
#[test]
fn stripped_paper_corpus_reverifies() {
    let engine = engine();
    for program in corpus::all() {
        let baseline = engine.check_source(program.name, program.source);
        let baseline_ok: BTreeSet<&str> = baseline
            .obligations
            .iter()
            .filter(|o| o.verdict.is_verified())
            .map(|o| o.proc_name.as_str())
            .collect();
        let stripped = strip_implemented_modifies(program.source)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        let outcome = infer(&engine, program.name, &stripped, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(
            outcome.fixpoint,
            "{}: no fixpoint within {} rounds",
            program.name, outcome.rounds
        );
        for proc in &baseline_ok {
            assert!(
                !outcome.unverified_procs.iter().any(|p| p == proc),
                "{}: `{proc}` verified with the original annotations but \
                 not with the inferred ones (notes: {:?})",
                program.name,
                outcome.notes
            );
        }
    }
}

/// Inference over a generated population with known ground truth: every
/// program verifies from the inferred annotations (soundness 100%), at
/// least 90% of procedures get the exact ground-truth frame, and every
/// mismatch is a strict superset (a sound over-approximation, never a
/// missed location).
#[test]
fn generated_population_is_sound_and_minimal() {
    let engine = engine();
    let configs = [
        UnannotatedConfig::default(),
        UnannotatedConfig {
            keep_includes: true,
            ..UnannotatedConfig::default()
        },
    ];
    let mut programs = 0usize;
    let mut procs = 0usize;
    let mut exact = 0usize;
    for cfg in &configs {
        for seed in 1..=30u64 {
            let gen = generate_unannotated_source(seed, cfg);
            let name = format!("{}-ki{}", gen.name, cfg.keep_includes);
            let outcome = infer(&engine, &name, &gen.source, &InferOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(outcome.fixpoint, "{name}: no fixpoint");
            assert!(
                outcome.verified,
                "{name}: inferred annotations do not verify \
                 (unverified: {:?}, notes: {:?})",
                outcome.unverified_procs, outcome.notes
            );
            let acc = accuracy(&outcome, &truth_of(&gen)).expect("applied unit parses");
            for (proc, m) in &acc.procs {
                procs += 1;
                match m {
                    Match::Exact => exact += 1,
                    Match::Superset => {}
                    Match::Other => panic!(
                        "{name}: `{proc}` inferred frame is not a superset of \
                         ground truth — a location was missed"
                    ),
                }
            }
            programs += 1;
        }
    }
    assert!(programs >= 50, "population too small: {programs}");
    assert!(
        exact * 10 >= procs * 9,
        "exact-match rate below 90%: {exact}/{procs}"
    );
}

/// The seeded-violation shapes the diagnosis subsystem pins are exactly
/// the shapes the repair loop must handle: the forgotten-`in` and
/// missing-closure-member bugs are repaired with a minimal
/// group-membership edit, while the stray-pivot-write restriction
/// violation is correctly reported as unrepairable by annotations.
#[test]
fn seeded_violations_repair_to_minimal_edits() {
    let engine = engine();
    for seed in [3u64, 11, 27] {
        for bug in [SeededBug::ForgottenIn, SeededBug::MissingClosureMember] {
            let v = generate_seeded_violation_with(seed, bug);
            let name = format!("seeded-{seed}-{bug:?}");
            let outcome =
                infer(&engine, &name, &v.source, &InferOptions::default()).expect("infers");
            assert!(
                outcome.verified,
                "{name}: not repaired: {:?}",
                outcome.notes
            );
            let memberships: Vec<_> = outcome
                .proposals
                .iter()
                .filter_map(|p| match &p.kind {
                    ProposalKind::Membership { field, group } => {
                        Some((field.as_str(), group.as_str()))
                    }
                    ProposalKind::Extend(_) => None,
                })
                .collect();
            assert_eq!(
                memberships,
                vec![("b", "g")],
                "{name}: the minimal edit restores the membership"
            );
        }
        let v = generate_seeded_violation_with(seed, SeededBug::StrayPivotWrite);
        let name = format!("seeded-{seed}-pivot");
        let outcome = infer(&engine, &name, &v.source, &InferOptions::default()).expect("infers");
        assert!(outcome.fixpoint, "{name}: no fixpoint");
        assert!(
            !outcome.verified,
            "{name}: a restriction violation cannot be repaired by annotations"
        );
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("restriction violation")),
            "{name}: the unrepairable refutation is reported: {:?}",
            outcome.notes
        );
    }
}

/// Re-running inference on a unit whose proposals were applied proposes
/// nothing: the applied annotations cover every demand, so the first
/// engine round verifies and the loop stops immediately.
#[test]
fn apply_is_idempotent() {
    let engine = engine();
    for spec in [
        "stripped:stack_module",
        "stripped:example3",
        "unannotated:3",
    ] {
        let unit = resolve_spec(spec)
            .unwrap_or_else(|| panic!("`{spec}` resolves"))
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        let first = infer(&engine, spec, &unit.source, &InferOptions::default())
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(first.verified, "{spec}: first pass verifies");
        assert!(
            !first.proposals.is_empty(),
            "{spec}: the stripped unit needs proposals"
        );

        // The per-proposal edits reproduce the applied source exactly —
        // they are machine-applicable, not just a rendering.
        let edits: Vec<_> = first.edits.iter().flatten().cloned().collect();
        assert_eq!(
            oolong::infer::apply_edits(&unit.source, &edits),
            first.edited_source,
            "{spec}: edits compose to the applied source"
        );

        let name = format!("{spec}-applied");
        let second = infer(
            &engine,
            &name,
            &first.edited_source,
            &InferOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(second.verified, "{spec}: applied unit verifies");
        assert_eq!(
            second.proposals,
            vec![],
            "{spec}: re-inference on the applied unit proposes edits"
        );
        assert_eq!(second.rounds, 1, "{spec}: one confirming round only");
    }
}

/// The `unannotated:SEED` workload spec is deterministic and carries
/// ground truth; the other schemes resolve as documented.
#[test]
fn workload_specs_resolve() {
    let a = resolve_spec("unannotated:42").expect("scheme").expect("ok");
    let b = resolve_spec("unannotated:42").expect("scheme").expect("ok");
    assert_eq!(a.source, b.source, "generation is deterministic");
    assert!(a.truth.is_some(), "generated units carry ground truth");

    let s = resolve_spec("stripped:example1")
        .expect("scheme")
        .expect("ok");
    assert!(
        !s.source.contains("proc p(t) modifies"),
        "the implemented procedure's frame is stripped"
    );
    assert!(
        s.source.contains("proc q(u) modifies u.g"),
        "interface-only procedures keep their declared frame"
    );
    assert!(s.truth.is_none());

    let c = resolve_spec("corpus:example1")
        .expect("scheme")
        .expect("ok");
    assert!(c.source.contains("modifies"));

    assert!(resolve_spec("unannotated:nope").expect("scheme").is_err());
    assert!(resolve_spec("stripped:nope").expect("scheme").is_err());
    assert!(
        resolve_spec("some/file.oo").is_none(),
        "plain paths pass through"
    );
}
