//! The batch scheduler: fans proof obligations across worker threads,
//! interposing the verdict cache in front of every prover call.
//!
//! A batch is a list of [`BatchUnit`]s (named sources). Each unit is
//! parsed and scope-analysed once; every implementation in a well-formed
//! unit becomes one obligation. Obligations are independent (the paper's
//! modular-soundness result), so they are processed by a fixed-size worker
//! pool pulling from a shared index — the same shape as
//! `Checker::check_all_with_workers`, lifted across units and made
//! cache-aware. Results and events are reassembled in obligation order, so
//! a batch report is deterministic regardless of thread interleaving.

use crate::cache::{CachedOutcome, CachedVerdict};
use crate::contexts::{context_key, ContextPool, DEFAULT_CONTEXT_CAPACITY};
use crate::diagjson::{diagnosis_to_json, label_to_json};
use crate::events::{render_jsonl, Event};
use crate::fingerprint::{fingerprint_vc, Fingerprint};
use crate::json::Json;
use crate::store::{TieredStore, VerdictStore, DEFAULT_MEMORY_CAPACITY};
use datagroups::{CheckOptions, Checker, Report, Verdict};
use oolong_diagnose::{diagnose_refutation, diagnose_restriction, Diagnosis};
use oolong_syntax::parse_program;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Options forwarded to the per-unit [`Checker`]s. The budget is part
    /// of every obligation's fingerprint.
    pub check: CheckOptions,
    /// Worker threads for the batch scheduler; `0` means one per
    /// available core.
    pub workers: usize,
    /// Directory for the persistent verdict cache; `None` keeps the cache
    /// in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Compute a full source-level [`Diagnosis`] (concretization +
    /// interpreter replay) for every rejected obligation. Off by default;
    /// refuted obligations still carry their obligation kind and label id
    /// either way. A cache hit that lacks a diagnosis is re-proved when
    /// this is set, since the candidate model is not cached.
    pub diagnose: bool,
}

/// One named source in a batch.
#[derive(Debug, Clone)]
pub struct BatchUnit {
    /// Display name (file path or `corpus:NAME` reference).
    pub name: String,
    /// The oolong source text.
    pub source: String,
}

/// The result of one proof obligation.
#[derive(Debug, Clone)]
pub struct ObligationReport {
    /// Name of the batch unit the obligation came from.
    pub unit: String,
    /// Name of the implemented procedure.
    pub proc_name: String,
    /// The obligation's content address (absent when no VC was generated:
    /// restriction violations and translation errors).
    pub fingerprint: Option<Fingerprint>,
    /// The verdict, identical in form to a fresh [`Checker`] verdict.
    pub verdict: Verdict,
    /// Whether the verdict was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock milliseconds spent on this obligation.
    pub millis: f64,
    /// The source-level diagnosis, when diagnosis was enabled and the
    /// obligation was rejected.
    pub diagnosis: Option<Diagnosis>,
}

/// A unit that failed to parse or scope-analyse.
#[derive(Debug, Clone)]
pub struct UnitError {
    /// Name of the batch unit.
    pub unit: String,
    /// Rendered diagnostics.
    pub message: String,
}

/// The result of one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-obligation results, in deterministic batch order (unit order,
    /// then declaration order within a unit).
    pub obligations: Vec<ObligationReport>,
    /// Units that could not be checked at all.
    pub unit_errors: Vec<UnitError>,
    /// The structured event log (unit errors, then per-obligation events
    /// in batch order — start marker, terminal event, and a
    /// `prover_profile` when the obligation carries stats — then the
    /// batch summary).
    pub events: Vec<Event>,
    /// Obligations served from the cache.
    pub cache_hits: usize,
    /// Obligations that invoked the prover.
    pub prover_calls: usize,
    /// Batch wall-clock milliseconds.
    pub millis: f64,
}

impl BatchReport {
    /// Whether every unit checked and every obligation verified.
    pub fn all_verified(&self) -> bool {
        self.unit_errors.is_empty() && self.obligations.iter().all(|o| o.verdict.is_verified())
    }

    /// Count of obligations with each outcome, as
    /// `(verified, rejected, unknown)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut tally = (0, 0, 0);
        for obligation in &self.obligations {
            match obligation.verdict {
                Verdict::Verified(_) => tally.0 += 1,
                Verdict::Unknown(_) => tally.2 += 1,
                _ => tally.1 += 1,
            }
        }
        tally
    }

    /// The event log rendered as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        render_jsonl(&self.events)
    }

    /// The whole report as a JSON object (the `--json` output of
    /// `oolong batch`).
    pub fn to_json(&self) -> Json {
        let obligations = self
            .obligations
            .iter()
            .map(|o| {
                let mut members = vec![
                    ("unit".to_string(), Json::Str(o.unit.clone())),
                    ("proc".to_string(), Json::Str(o.proc_name.clone())),
                    (
                        "fingerprint".to_string(),
                        match o.fingerprint {
                            Some(fp) => Json::Str(fp.to_string()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "verdict".to_string(),
                        Json::Str(o.verdict.label().to_string()),
                    ),
                    ("cache_hit".to_string(), Json::Bool(o.cache_hit)),
                    ("millis".to_string(), Json::Float(o.millis)),
                ];
                if let Some(stats) = o.verdict.stats() {
                    members.push((
                        "stats".to_string(),
                        Json::Object(
                            stats
                                .to_fields()
                                .into_iter()
                                .map(|(name, value)| (name.to_string(), Json::Int(value as i64)))
                                .collect(),
                        ),
                    ));
                }
                // Refuted obligations always carry their attribution —
                // kind and label id — even when full diagnosis is off.
                if let Some(refutation) = o.verdict.refutation() {
                    if let Some(primary) = &refutation.primary {
                        members.push((
                            "obligation_kind".to_string(),
                            Json::Str(primary.kind.as_str().to_string()),
                        ));
                        members.push(("label_id".to_string(), Json::Int(primary.id as i64)));
                        members.push(("label".to_string(), label_to_json(primary)));
                    }
                }
                if let Some(diagnosis) = &o.diagnosis {
                    members.push(("diagnosis".to_string(), diagnosis_to_json(diagnosis)));
                }
                Json::Object(members)
            })
            .collect();
        let unit_errors = self
            .unit_errors
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("unit".to_string(), Json::Str(e.unit.clone())),
                    ("message".to_string(), Json::Str(e.message.clone())),
                ])
            })
            .collect();
        let tally = self.tally();
        Json::Object(vec![
            ("obligations".to_string(), Json::Array(obligations)),
            ("unit_errors".to_string(), Json::Array(unit_errors)),
            (
                "summary".to_string(),
                Json::Object(vec![
                    ("verified".to_string(), Json::Int(tally.0 as i64)),
                    ("rejected".to_string(), Json::Int(tally.1 as i64)),
                    ("unknown".to_string(), Json::Int(tally.2 as i64)),
                    ("cache_hits".to_string(), Json::Int(self.cache_hits as i64)),
                    (
                        "prover_calls".to_string(),
                        Json::Int(self.prover_calls as i64),
                    ),
                    ("millis".to_string(), Json::Float(self.millis)),
                ]),
            ),
        ])
    }
}

/// One obligation's result plus its events, as produced by a worker.
struct TaskOutcome {
    report: ObligationReport,
    events: Vec<Event>,
    cache_hit: bool,
    prover_call: bool,
}

/// The incremental verification engine: a verdict store plus a batch
/// scheduler plus a pool of warm scope contexts.
#[derive(Debug)]
pub struct Engine {
    options: EngineOptions,
    store: Arc<dyn VerdictStore>,
    contexts: Arc<ContextPool>,
}

impl Engine {
    /// Creates an engine over a private [`TieredStore`]: a bounded
    /// in-memory LRU tier, backed by a lazy on-disk tier when
    /// `options.cache_dir` is set. Opening is O(1) — entries are read
    /// on demand, one file per lookup, never scanned up front.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be created.
    pub fn new(options: EngineOptions) -> io::Result<Engine> {
        let store: Arc<dyn VerdictStore> = match &options.cache_dir {
            Some(dir) => Arc::new(TieredStore::at_dir(dir, DEFAULT_MEMORY_CAPACITY)?),
            None => Arc::new(TieredStore::in_memory(DEFAULT_MEMORY_CAPACITY)),
        };
        Ok(Engine {
            options,
            store,
            contexts: Arc::new(ContextPool::with_capacity(DEFAULT_CONTEXT_CAPACITY)),
        })
    }

    /// Creates an engine over a shared store handle. This is the resident
    /// shape: a long-lived process opens its cache once, then builds one
    /// cheap `Engine` per request (each request may carry its own prover
    /// budget) against the same store. `options.cache_dir` is ignored —
    /// the store already decided where it persists.
    pub fn with_store(options: EngineOptions, store: Arc<dyn VerdictStore>) -> Engine {
        Engine {
            options,
            store,
            contexts: Arc::new(ContextPool::with_capacity(DEFAULT_CONTEXT_CAPACITY)),
        }
    }

    /// Like [`Engine::with_store`], but also sharing a pool of warm scope
    /// contexts: a resident process passes the same pool to every
    /// per-request engine so background saturation is paid once per scope,
    /// not once per request.
    pub fn with_store_and_contexts(
        options: EngineOptions,
        store: Arc<dyn VerdictStore>,
        contexts: Arc<ContextPool>,
    ) -> Engine {
        Engine {
            options,
            store,
            contexts,
        }
    }

    /// The engine's verdict store.
    pub fn store(&self) -> &Arc<dyn VerdictStore> {
        &self.store
    }

    /// The engine's warm scope-context pool.
    pub fn contexts(&self) -> &Arc<ContextPool> {
        &self.contexts
    }

    /// The engine's configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Checks every implementation of every unit, serving unchanged
    /// obligations from the cache.
    pub fn check_batch(&self, units: &[BatchUnit]) -> BatchReport {
        let batch_start = Instant::now();
        let mut unit_errors = Vec::new();
        let mut checkers: Vec<Option<Checker>> = Vec::with_capacity(units.len());
        for unit in units {
            let checker = parse_program(&unit.source)
                .map_err(|d| d.render(&unit.source))
                .and_then(|program| {
                    Checker::new(&program, self.options.check.clone())
                        .map_err(|d| d.render(&unit.source))
                });
            match checker {
                Ok(checker) => checkers.push(Some(checker)),
                Err(message) => {
                    unit_errors.push(UnitError {
                        unit: unit.name.clone(),
                        message,
                    });
                    checkers.push(None);
                }
            }
        }

        // One task per implementation, in deterministic batch order.
        let tasks: Vec<(usize, oolong_sema::ImplId)> = checkers
            .iter()
            .enumerate()
            .filter_map(|(unit_idx, checker)| checker.as_ref().map(|c| (unit_idx, c)))
            .flat_map(|(unit_idx, checker)| {
                checker
                    .scope()
                    .impls()
                    .map(move |(impl_id, _)| (unit_idx, impl_id))
            })
            .collect();

        let workers = match self.options.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        let outcomes = self.run_tasks(units, &checkers, &tasks, workers);

        let mut report = BatchReport {
            unit_errors,
            ..BatchReport::default()
        };
        for error in &report.unit_errors {
            report.events.push(Event::UnitError {
                unit: error.unit.clone(),
                message: error.message.clone(),
            });
        }
        for outcome in outcomes {
            report.cache_hits += usize::from(outcome.cache_hit);
            report.prover_calls += usize::from(outcome.prover_call);
            report.events.extend(outcome.events);
            report.obligations.push(outcome.report);
        }
        report.millis = batch_start.elapsed().as_secs_f64() * 1_000.0;
        report.events.push(Event::BatchSummary {
            obligations: report.obligations.len(),
            cache_hits: report.cache_hits,
            prover_calls: report.prover_calls,
            tally: report.tally(),
            millis: report.millis,
        });
        report
    }

    /// Convenience wrapper: one anonymous unit.
    pub fn check_source(&self, name: &str, source: &str) -> BatchReport {
        self.check_batch(&[BatchUnit {
            name: name.to_string(),
            source: source.to_string(),
        }])
    }

    /// Runs the worker pool and returns outcomes in task order.
    fn run_tasks(
        &self,
        units: &[BatchUnit],
        checkers: &[Option<Checker>],
        tasks: &[(usize, oolong_sema::ImplId)],
        workers: usize,
    ) -> Vec<TaskOutcome> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        if workers <= 1 || tasks.len() <= 1 {
            return tasks
                .iter()
                .enumerate()
                .map(|(seq, &(unit_idx, impl_id))| {
                    self.process_task(seq, &units[unit_idx], checkers[unit_idx].as_ref(), impl_id)
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<TaskOutcome>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers.min(tasks.len()) {
                scope.spawn(|| loop {
                    let seq = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(unit_idx, impl_id)) = tasks.get(seq) else {
                        break;
                    };
                    let outcome = self.process_task(
                        seq,
                        &units[unit_idx],
                        checkers[unit_idx].as_ref(),
                        impl_id,
                    );
                    *slots[seq]
                        .lock()
                        .expect("no panics while holding slot lock") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panicked")
                    .expect("every slot filled before workers exit")
            })
            .collect()
    }

    /// Processes one obligation: restriction check, VC generation,
    /// fingerprint, cache lookup, and (on a miss) the prover.
    fn process_task(
        &self,
        seq: usize,
        unit: &BatchUnit,
        checker: Option<&Checker>,
        impl_id: oolong_sema::ImplId,
    ) -> TaskOutcome {
        let checker = checker.expect("tasks are only created for well-formed units");
        let scope = checker.scope();
        let proc_name = scope.proc_info(scope.impl_info(impl_id).proc).name.clone();
        let start = Instant::now();
        let started = |fingerprint: Option<Fingerprint>| Event::ObligationStarted {
            seq,
            unit: unit.name.clone(),
            proc: proc_name.clone(),
            fingerprint,
        };

        let violations = checker.restriction_violations(impl_id);
        if !violations.is_empty() {
            let rendered = violations.iter().map(|d| d.to_string()).collect();
            let diagnosis = if self.options.diagnose {
                diagnose_restriction(scope, &unit.source, impl_id, &proc_name, &violations)
            } else {
                None
            };
            let verdict = Verdict::RestrictionViolation(violations);
            return TaskOutcome {
                events: vec![
                    started(None),
                    Event::RestrictionViolation {
                        seq,
                        violations: rendered,
                    },
                ],
                report: ObligationReport {
                    unit: unit.name.clone(),
                    proc_name,
                    fingerprint: None,
                    verdict,
                    cache_hit: false,
                    millis: start.elapsed().as_secs_f64() * 1_000.0,
                    diagnosis,
                },
                cache_hit: false,
                prover_call: false,
            };
        }

        let vc = match checker.vc(impl_id) {
            Ok(vc) => vc,
            Err(diagnostic) => {
                let message = diagnostic.to_string();
                return TaskOutcome {
                    events: vec![started(None), Event::TranslationError { seq, message }],
                    report: ObligationReport {
                        unit: unit.name.clone(),
                        proc_name,
                        fingerprint: None,
                        verdict: Verdict::TranslationError(diagnostic),
                        cache_hit: false,
                        millis: start.elapsed().as_secs_f64() * 1_000.0,
                        diagnosis: None,
                    },
                    cache_hit: false,
                    prover_call: false,
                };
            }
        };

        let slice = checker.background_slice(&vc);
        let phases = checker.sliced_phases(&slice);
        let fingerprint = fingerprint_vc(&vc, &checker.options().budget, &slice.keep, &phases);
        // A hit that predates diagnosis (or was cached with diagnosis off)
        // cannot serve an `--explain` run: the candidate model needed to
        // build a diagnosis is not cached, so re-prove instead.
        let hit = self.store.get(fingerprint).filter(|hit| {
            !(self.options.diagnose
                && hit.outcome == CachedOutcome::NotProved
                && hit.diagnosis.is_none())
        });
        if let Some(hit) = hit {
            return TaskOutcome {
                events: vec![
                    started(Some(fingerprint)),
                    Event::CacheHit {
                        seq,
                        outcome: hit.outcome.as_str(),
                        stats: hit.stats.clone(),
                    },
                    Event::ProverProfile {
                        seq,
                        cached: true,
                        stats: hit.stats.clone(),
                    },
                ],
                report: ObligationReport {
                    unit: unit.name.clone(),
                    proc_name,
                    fingerprint: Some(fingerprint),
                    verdict: hit.to_verdict(),
                    cache_hit: true,
                    millis: start.elapsed().as_secs_f64() * 1_000.0,
                    diagnosis: hit.diagnosis.clone(),
                },
                cache_hit: true,
                prover_call: false,
            };
        }

        let verdict = if checker.options().share_contexts {
            // Prove inside a warm scope context from the pool, building
            // (and thereby saturating) it only on the first encounter of
            // this sliced background. The slot mutex keys same-scope
            // obligations to one thread at a time; unrelated scopes
            // proceed in parallel.
            let background = checker.sliced_background(&vc, &slice);
            let key = context_key(
                &background,
                &phases,
                &checker.options().budget,
                checker.options().strategy,
            );
            let slot = self.contexts.checkout(key);
            let mut guard = slot.lock().expect("context slot lock poisoned");
            let ctx = guard.get_or_insert_with(|| checker.context_for_slice(&vc, &slice));
            checker.verdict_for_vc_in(ctx, &vc, slice.dropped())
        } else {
            checker.verdict_for_vc(&vc)
        };
        let diagnosis = match (&verdict, self.options.diagnose) {
            (Verdict::NotVerified(_, refutation), true) => {
                diagnose_refutation(scope, &unit.source, &vc, refutation)
            }
            _ => None,
        };
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        if let Some(entry) = CachedVerdict::from_verdict(&proc_name, &verdict, diagnosis.as_ref()) {
            self.store.put(fingerprint, entry);
        }
        let terminal = match &verdict {
            Verdict::Verified(stats) => Event::Verified {
                seq,
                millis,
                stats: stats.clone(),
            },
            Verdict::NotVerified(stats, refutation) => Event::Refuted {
                seq,
                millis,
                stats: stats.clone(),
                open_branch: refutation.open_branch.clone(),
                labels: refutation.labels.clone(),
                primary: refutation.primary.clone(),
                diagnosis: diagnosis.clone().map(Box::new),
            },
            Verdict::Unknown(stats) => Event::FuelExhausted {
                seq,
                millis,
                stats: stats.clone(),
            },
            Verdict::RestrictionViolation(_) | Verdict::TranslationError(_) => {
                unreachable!("verdict_for_vc only returns prover verdicts")
            }
        };
        let profile = Event::ProverProfile {
            seq,
            cached: false,
            stats: verdict
                .stats()
                .cloned()
                .expect("prover verdicts carry stats"),
        };
        TaskOutcome {
            events: vec![started(Some(fingerprint)), terminal, profile],
            report: ObligationReport {
                unit: unit.name.clone(),
                proc_name,
                fingerprint: Some(fingerprint),
                verdict,
                cache_hit: false,
                millis,
                diagnosis,
            },
            cache_hit: false,
            prover_call: true,
        }
    }
}

/// Flattens a batch report back into the per-unit [`Report`] shape used by
/// `Checker`, for verdict-equivalence comparisons.
pub fn unit_report(batch: &BatchReport, unit: &str) -> Report {
    Report {
        impls: batch
            .obligations
            .iter()
            .filter(|o| o.unit == unit)
            .enumerate()
            .map(|(i, o)| datagroups::ImplReport {
                impl_id: oolong_sema::ImplId(i as u32),
                proc_name: o.proc_name.clone(),
                verdict: o.verdict.clone(),
                kind_counts: Vec::new(),
            })
            .collect(),
    }
}
