//! JSON forms of obligation labels and diagnoses.
//!
//! Shared by the verdict cache and the event log so a warm run replays a
//! cold run's refutation attribution — label ids, obligation kinds, and
//! the full source-level diagnosis — byte-for-byte.

use crate::json::Json;
use datagroups::{ObligationKind, ObligationLabel};
use oolong_diagnose::{Diagnosis, Replay};
use oolong_syntax::Span;

/// The label of a refuted obligation as a JSON object.
pub fn label_to_json(label: &ObligationLabel) -> Json {
    Json::Object(vec![
        ("id".to_string(), Json::Int(label.id as i64)),
        (
            "kind".to_string(),
            Json::Str(label.kind.as_str().to_string()),
        ),
        ("start".to_string(), Json::Int(label.span.start as i64)),
        ("end".to_string(), Json::Int(label.span.end as i64)),
        ("detail".to_string(), Json::Str(label.detail.clone())),
    ])
}

/// Inverse of [`label_to_json`].
pub fn label_from_json(value: &Json) -> Option<ObligationLabel> {
    Some(ObligationLabel {
        id: value.get("id")?.as_u64()? as u32,
        kind: ObligationKind::parse(value.get("kind")?.as_str()?)?,
        span: Span::new(
            value.get("start")?.as_u64()? as u32,
            value.get("end")?.as_u64()? as u32,
        ),
        detail: value.get("detail")?.as_str()?.to_string(),
    })
}

fn replay_to_json(replay: &Replay) -> Json {
    match replay {
        Replay::Confirmed { oracle, witness } => Json::Object(vec![
            ("status".to_string(), Json::Str("confirmed".to_string())),
            ("oracle".to_string(), Json::Str(oracle.clone())),
            ("witness".to_string(), Json::Str(witness.clone())),
        ]),
        Replay::Spurious { attempts } => Json::Object(vec![
            ("status".to_string(), Json::Str("spurious".to_string())),
            ("attempts".to_string(), Json::Int(*attempts as i64)),
        ]),
        Replay::Unavailable { reason } => Json::Object(vec![
            ("status".to_string(), Json::Str("unavailable".to_string())),
            ("reason".to_string(), Json::Str(reason.clone())),
        ]),
    }
}

fn replay_from_json(value: &Json) -> Option<Replay> {
    match value.get("status")?.as_str()? {
        "confirmed" => Some(Replay::Confirmed {
            oracle: value.get("oracle")?.as_str()?.to_string(),
            witness: value.get("witness")?.as_str()?.to_string(),
        }),
        "spurious" => Some(Replay::Spurious {
            attempts: value.get("attempts")?.as_u64()? as usize,
        }),
        "unavailable" => Some(Replay::Unavailable {
            reason: value.get("reason")?.as_str()?.to_string(),
        }),
        _ => None,
    }
}

fn string_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from_json(value: &Json) -> Option<Vec<String>> {
    value
        .as_array()?
        .iter()
        .map(|s| Some(s.as_str()?.to_string()))
        .collect()
}

/// A full source-level diagnosis as a JSON object.
pub fn diagnosis_to_json(d: &Diagnosis) -> Json {
    Json::Object(vec![
        ("proc".to_string(), Json::Str(d.proc_name.clone())),
        ("kind".to_string(), Json::Str(d.kind.as_str().to_string())),
        (
            "label_id".to_string(),
            match d.label_id {
                Some(id) => Json::Int(id as i64),
                None => Json::Null,
            },
        ),
        ("start".to_string(), Json::Int(d.span.start as i64)),
        ("end".to_string(), Json::Int(d.span.end as i64)),
        ("line".to_string(), Json::Int(d.line as i64)),
        ("col".to_string(), Json::Int(d.col as i64)),
        ("snippet".to_string(), Json::Str(d.snippet.clone())),
        ("clause".to_string(), Json::Str(d.clause.clone())),
        ("touched".to_string(), string_array(&d.touched)),
        ("pre_store".to_string(), string_array(&d.pre_store)),
        ("args".to_string(), string_array(&d.args)),
        ("confirmed".to_string(), Json::Bool(d.confirmed())),
        ("replay".to_string(), replay_to_json(&d.replay)),
    ])
}

/// Inverse of [`diagnosis_to_json`].
pub fn diagnosis_from_json(value: &Json) -> Option<Diagnosis> {
    Some(Diagnosis {
        proc_name: value.get("proc")?.as_str()?.to_string(),
        kind: ObligationKind::parse(value.get("kind")?.as_str()?)?,
        label_id: match value.get("label_id")? {
            Json::Null => None,
            v => Some(v.as_u64()? as u32),
        },
        span: Span::new(
            value.get("start")?.as_u64()? as u32,
            value.get("end")?.as_u64()? as u32,
        ),
        line: value.get("line")?.as_u64()? as u32,
        col: value.get("col")?.as_u64()? as u32,
        snippet: value.get("snippet")?.as_str()?.to_string(),
        clause: value.get("clause")?.as_str()?.to_string(),
        touched: strings_from_json(value.get("touched")?)?,
        pre_store: strings_from_json(value.get("pre_store")?)?,
        args: strings_from_json(value.get("args")?)?,
        replay: replay_from_json(value.get("replay")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_diagnosis() -> Diagnosis {
        Diagnosis {
            proc_name: "sneaky".to_string(),
            kind: ObligationKind::ModifiesViolation,
            label_id: Some(2),
            span: Span::new(40, 48),
            line: 1,
            col: 41,
            snippet: "r.f := 3".to_string(),
            clause: "write to field `f` not covered by modifies list".to_string(),
            touched: vec!["#o·#f ≽ #o·#f".to_string()],
            pre_store: vec!["#1.f = 0".to_string()],
            args: vec!["r = #1".to_string()],
            replay: Replay::Confirmed {
                oracle: "first".to_string(),
                witness: "wrote #1.f outside the modifies license".to_string(),
            },
        }
    }

    #[test]
    fn diagnosis_round_trips() {
        let d = sample_diagnosis();
        let value = diagnosis_to_json(&d);
        assert_eq!(diagnosis_from_json(&value), Some(d));
    }

    #[test]
    fn label_round_trips() {
        let label = ObligationLabel {
            id: 7,
            kind: ObligationKind::OwnerExclusion,
            span: Span::new(3, 9),
            detail: "argument `t` may be an owned pivot value".to_string(),
        };
        let value = label_to_json(&label);
        assert_eq!(label_from_json(&value), Some(label));
    }

    #[test]
    fn spurious_and_unavailable_replays_round_trip() {
        for replay in [
            Replay::Spurious { attempts: 9 },
            Replay::Unavailable {
                reason: "no VC".to_string(),
            },
        ] {
            let d = Diagnosis {
                replay: replay.clone(),
                ..sample_diagnosis()
            };
            assert_eq!(diagnosis_from_json(&diagnosis_to_json(&d)), Some(d));
        }
    }
}
