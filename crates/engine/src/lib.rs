//! **The incremental verification engine** for oolong.
//!
//! The checker in [`datagroups`] answers "does this implementation respect
//! its `modifies` clause?" from scratch every time. This crate makes that
//! answer *incremental* across runs:
//!
//! * [`fingerprint`] — a content address per proof obligation: a stable
//!   128-bit structural hash over the clausified verification condition
//!   (which embeds the exact background-axiom set of the implementation's
//!   scope) and the prover [`Budget`](oolong_prover::Budget);
//! * [`cache`] — a verdict cache keyed by fingerprint alone, optionally
//!   persisted as one JSON file per entry; invalidation is purely
//!   fingerprint mismatch, with no dependency graph to maintain;
//! * [`engine`] — a batch scheduler that fans obligations across worker
//!   threads, consults the cache before every prover call, and reports
//!   per-obligation timing and prover statistics;
//! * [`events`] — a structured JSONL event log, the observability surface
//!   that makes warm-cache claims checkable ("zero prover calls on
//!   unchanged implementations" is a countable fact, not an inference);
//! * [`json`] — the minimal JSON support underlying both.
//!
//! The soundness of caching rests on the paper's modularity result: an
//! implementation's verdict depends only on its scope, and everything the
//! scope contributes (background axioms, modifies-list translations,
//! owner-exclusion obligations) is already clausified into the VC that the
//! fingerprint hashes. Two obligations with equal fingerprints are the
//! same obligation.
//!
//! # Example
//!
//! ```
//! use oolong_engine::{BatchUnit, Engine, EngineOptions};
//!
//! let engine = Engine::new(EngineOptions::default())?;
//! let unit = BatchUnit {
//!     name: "example".to_string(),
//!     source: "group value
//!              field num in value
//!              proc bump(r) modifies r.value
//!              impl bump(r) { r.num := r.num + 1 }"
//!         .to_string(),
//! };
//! let cold = engine.check_batch(std::slice::from_ref(&unit));
//! assert!(cold.all_verified());
//! assert_eq!((cold.cache_hits, cold.prover_calls), (0, 1));
//!
//! // Same obligation, same budget: served from the cache.
//! let warm = engine.check_batch(std::slice::from_ref(&unit));
//! assert!(warm.all_verified());
//! assert_eq!((warm.cache_hits, warm.prover_calls), (1, 0));
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod cache;
pub mod contexts;
pub mod diagjson;
pub mod engine;
pub mod events;
pub mod fingerprint;
pub mod json;
pub mod store;

pub use cache::{
    stats_from_json, stats_to_json, CachedOutcome, CachedVerdict, VerdictCache,
    CACHE_FORMAT_VERSION,
};
pub use contexts::{
    context_key, ContextPool, ContextPoolMetrics, ContextSlot, DEFAULT_CONTEXT_CAPACITY,
};
pub use diagjson::{diagnosis_from_json, diagnosis_to_json, label_from_json, label_to_json};
pub use engine::{
    unit_report, BatchReport, BatchUnit, Engine, EngineOptions, ObligationReport, UnitError,
};
pub use events::{render_jsonl, Event, EventLogWriter};
pub use fingerprint::{fingerprint_vc, Fingerprint, FINGERPRINT_VERSION};
pub use json::{Json, JsonError};
pub use store::{
    DiskTier, MemoryTier, StoreMetrics, TieredStore, VerdictStore, DEFAULT_MEMORY_CAPACITY,
};
