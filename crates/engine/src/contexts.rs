//! A pool of warm scope contexts, shared across engines.
//!
//! Building a [`ScopeContext`] asserts and saturates a scope's (sliced)
//! background axioms — by far the most expensive fixed cost of an
//! obligation. Within one `Checker::check_all` run that cost is amortized
//! by slice-grouping; this pool amortizes it across *runs*: a resident
//! process (`oolong serve`) keeps contexts warm between requests, so a
//! re-verification of an edited implementation pays only for its own
//! trail frame, not for background saturation.
//!
//! Keys are stable 128-bit hashes over everything a context's behaviour
//! depends on: the sliced background formula list (in order), the prover
//! budget, and the search strategy. Entries are `Arc<Mutex<…>>` slots, so
//! a context is only ever driven by one thread at a time while the pool
//! itself stays contention-free; eviction (LRU, bounded capacity) merely
//! drops the pool's reference — a checked-out context survives until its
//! borrower finishes.

use oolong_logic::{Formula, Phase, StableHasher};
use oolong_prover::{Budget, ScopeContext, SearchStrategy};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of warm contexts a pool retains.
pub const DEFAULT_CONTEXT_CAPACITY: usize = 64;

/// The stable identity of a scope context: sliced background + activation
/// phases + budget + strategy. Two obligations with equal keys can share a
/// context. The phase list is part of the identity because it determines
/// what the context pre-saturated: a policy-gated context and an all-eager
/// context over the same background hold different E-graphs.
pub fn context_key(
    background: &[Formula],
    phases: &[Phase],
    budget: &Budget,
    strategy: SearchStrategy,
) -> u128 {
    let mut hasher = StableHasher::new();
    background.hash(&mut hasher);
    // Byte-stable phase mask (see `fingerprint_vc`): one bool per axiom.
    let mask: Vec<bool> = phases.iter().map(|&p| p == Phase::GoalDirected).collect();
    mask.hash(&mut hasher);
    budget.hash(&mut hasher);
    strategy.hash(&mut hasher);
    hasher.finish128()
}

/// A slot holding one (lazily built) scope context.
pub type ContextSlot = Arc<Mutex<Option<ScopeContext>>>;

/// Usage counters for a [`ContextPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextPoolMetrics {
    /// Checkouts that found a warm slot.
    pub hits: u64,
    /// Checkouts that created a fresh slot.
    pub misses: u64,
    /// Slots dropped to respect the capacity bound.
    pub evictions: u64,
    /// Slots currently retained.
    pub size: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Key → slot. Recency is tracked by `order` (least recent first).
    slots: HashMap<u128, ContextSlot>,
    order: Vec<u128>,
}

/// A bounded, thread-safe LRU pool of scope contexts.
#[derive(Debug)]
pub struct ContextPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ContextPool {
    /// A pool retaining at most `capacity` contexts (at least one).
    pub fn with_capacity(capacity: usize) -> ContextPool {
        ContextPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Checks out the slot for `key`, creating an empty one on a miss.
    /// The caller locks the slot and builds the context into it if it is
    /// still `None` — the build happens outside the pool lock, so a slow
    /// saturation never blocks unrelated checkouts, while concurrent
    /// requests for the *same* key queue on the slot and build it once.
    pub fn checkout(&self, key: u128) -> ContextSlot {
        let mut inner = self.inner.lock().expect("context pool lock poisoned");
        if let Some(slot) = inner.slots.get(&key) {
            let slot = Arc::clone(slot);
            // Refresh recency.
            inner.order.retain(|&k| k != key);
            inner.order.push(key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return slot;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slot: ContextSlot = Arc::new(Mutex::new(None));
        inner.slots.insert(key, Arc::clone(&slot));
        inner.order.push(key);
        while inner.order.len() > self.capacity {
            let victim = inner.order.remove(0);
            inner.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slot
    }

    /// Current usage counters.
    pub fn metrics(&self) -> ContextPoolMetrics {
        ContextPoolMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            size: self
                .inner
                .lock()
                .expect("context pool lock poisoned")
                .slots
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::Term;

    fn backgrounds() -> (Vec<Formula>, Vec<Formula>) {
        let a = vec![Formula::eq(Term::var("a"), Term::var("b"))];
        let b = vec![Formula::eq(Term::var("a"), Term::var("c"))];
        (a, b)
    }

    #[test]
    fn key_separates_background_phases_budget_and_strategy() {
        let (a, b) = backgrounds();
        let eager = vec![Phase::Eager; a.len()];
        let gated = vec![Phase::GoalDirected; a.len()];
        let base = context_key(&a, &eager, &Budget::default(), SearchStrategy::Trail);
        assert_eq!(
            base,
            context_key(&a, &eager, &Budget::default(), SearchStrategy::Trail)
        );
        assert_ne!(
            base,
            context_key(&b, &eager, &Budget::default(), SearchStrategy::Trail)
        );
        assert_ne!(
            base,
            context_key(&a, &gated, &Budget::default(), SearchStrategy::Trail)
        );
        assert_ne!(
            base,
            context_key(&a, &eager, &Budget::tiny(), SearchStrategy::Trail)
        );
        assert_ne!(
            base,
            context_key(&a, &eager, &Budget::default(), SearchStrategy::CloneSearch)
        );
    }

    #[test]
    fn checkout_hits_after_miss_and_shares_the_slot() {
        let pool = ContextPool::with_capacity(4);
        let slot1 = pool.checkout(1);
        let slot2 = pool.checkout(1);
        assert!(Arc::ptr_eq(&slot1, &slot2));
        let m = pool.metrics();
        assert_eq!((m.hits, m.misses, m.size), (1, 1, 1));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let pool = ContextPool::with_capacity(2);
        let first = pool.checkout(1);
        pool.checkout(2);
        pool.checkout(1); // refresh 1: 2 is now least recent
        pool.checkout(3); // evicts 2
        let m = pool.metrics();
        assert_eq!((m.evictions, m.size), (1, 2));
        // Key 2 is gone (fresh slot), key 1 survived.
        assert!(Arc::ptr_eq(&first, &pool.checkout(1)));
        let again = pool.checkout(2);
        assert!(again.lock().unwrap().is_none());
        assert_eq!(pool.metrics().misses, 4); // keys 1, 2, 3, and 2 again
    }

    #[test]
    fn built_context_stays_warm() {
        let (a, _) = backgrounds();
        let pool = ContextPool::with_capacity(4);
        let key = context_key(
            &a,
            &vec![Phase::Eager; a.len()],
            &Budget::default(),
            SearchStrategy::Trail,
        );
        {
            let slot = pool.checkout(key);
            let mut guard = slot.lock().unwrap();
            guard.get_or_insert_with(|| {
                ScopeContext::new(&a, &Budget::default(), SearchStrategy::Trail)
            });
        }
        let slot = pool.checkout(key);
        assert!(slot.lock().unwrap().is_some());
    }
}
