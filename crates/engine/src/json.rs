//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The engine persists cache entries and emits event logs as JSON, and the
//! build container has no crates.io access for `serde`, so this module
//! implements the small subset the engine needs: the full JSON value
//! grammar, compact rendering with correct string escaping, and strict
//! parsing with byte-offset error reporting. Numbers are kept as `i64`
//! when written as integers (cache counters are integral) and `f64`
//! otherwise.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer-valued number.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let printed = format!("{x}");
                    out.push_str(&printed);
                    // `{}` prints integral floats without a point; keep the
                    // value re-parseable as a float for round-tripping.
                    if !printed.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run up to the next quote or escape
                    // in one step, validating UTF-8 once per run — not
                    // once per character over the whole remaining input,
                    // which made large documents parse quadratically.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: "bad number".to_string(),
            offset: start,
        })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let value = Json::Object(vec![
            (
                "name".to_string(),
                Json::Str("push \"quoted\"\n".to_string()),
            ),
            ("count".to_string(), Json::Int(42)),
            ("ratio".to_string(), Json::Float(1.5)),
            (
                "flags".to_string(),
                Json::Array(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".to_string(), Json::Object(vec![])),
        ]);
        let rendered = value.render();
        assert_eq!(parse(&rendered).expect("parses"), value);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let rendered = Json::Float(2.0).render();
        assert_eq!(parse(&rendered).expect("parses"), Json::Float(2.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "b": "x", "n": 7}"#).expect("parses");
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }
}
