//! Content addresses for proof obligations.
//!
//! A proof obligation's verdict is a pure function of three inputs: the
//! clausified verification condition (goal plus hypotheses, which embed the
//! exact background-axiom set of the implementation's scope), and the
//! prover [`Budget`] (a starved budget can turn `Proved` into `Unknown`,
//! so budgets are part of the obligation's identity, not metadata). The
//! [`Fingerprint`] is a stable 128-bit structural hash over exactly those
//! inputs plus a format version.
//!
//! Invalidation is purely fingerprint mismatch: there is no dependency
//! graph to maintain. Editing a declaration (a group, a `modifies` clause,
//! a pivot field) changes the generated hypotheses or goal of exactly the
//! implementations whose scope or license the declaration participates in,
//! so precisely those obligations re-run — the engine-level reflection of
//! the paper's modular-soundness property that a verdict depends only on
//! an implementation's scope.

use datagroups::Vc;
use oolong_logic::{Phase, StableHasher};
use oolong_prover::Budget;
use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

/// Version of the fingerprint recipe. Bump on any change to the hash
/// inputs or the stable-hash algorithm: a bump invalidates every existing
/// cache entry, which is exactly the safe behaviour.
///
/// Version 2: terms and symbols are hash-consed; their `Hash` impls now
/// write precomputed content digests (FNV-1a of the name for symbols, a
/// 128-bit structural digest for terms) instead of hashing the old
/// string-tree representation field by field. The digests are
/// process-stable but differ from the v1 byte streams, so every v1
/// fingerprint is invalid.
///
/// Version 3: the axiom-relevance slice (which background hypotheses the
/// checker keeps) joins the hash inputs. Slicing never changes an
/// outcome, but it does change the recorded statistics (`sliced_axioms`,
/// quantifier counts), and a v2 entry would replay pre-slicing telemetry
/// as if it were current; trigger-pattern annotations were already
/// covered, since declared triggers are part of each hypothesis formula's
/// structural hash. Old entries migrate by miss: the bump makes every v2
/// fingerprint unreachable, and the store simply re-proves and re-caches.
///
/// Version 4: the activation-phase mask (which kept background axioms are
/// goal-directed vs eager, from the declared [`PatternPolicy`] layer)
/// joins the hash inputs. Phase gating never changes an outcome, but it
/// moves instantiations between pre-saturation and the obligation frame,
/// so a v3 entry would replay the goalless-saturation telemetry as if it
/// were current — and flipping `--no-pattern-policies` must re-prove, not
/// hit. Same migration by miss.
///
/// Version 5: the scope background gained the per-field
/// `local-inc-members` axiom (fields have no proper members — a
/// scope-monotone closed form, since `in` targets must be groups in
/// every extension). The axiom is part of each VC's hypothesis set, so
/// v4 entries were proved under a strictly weaker theory: a v4 verdict
/// is still sound, but its refutation search and telemetry no longer
/// match what this build would produce. Same migration by miss.
///
/// Version 6: obligations gained two new kinds (`invariant-preserved`
/// and `reads-violation`): declared object invariants add hypotheses and
/// exit/call-boundary conjuncts to every VC in their scope, declared
/// `reads` clauses add per-dereference licensing conjuncts, and scopes
/// with read frames gain the `read-frame-inc-reflexive` background
/// axiom. For programs using neither feature the VC bytes are unchanged,
/// but a v5 entry could carry a cached diagnosis whose obligation-kind
/// vocabulary this build extends — and label ids are position-sensitive
/// (exit obligations now allocate first), so v5 refutation attributions
/// must not be replayed as current. Same migration by miss.
///
/// [`PatternPolicy`]: oolong_logic::PatternPolicy
pub const FINGERPRINT_VERSION: u32 = 6;

/// The content address of one proof obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Fingerprint {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Fingerprint, Self::Err> {
        u128::from_str_radix(s, 16).map(Fingerprint)
    }
}

/// The fingerprint of the obligation "prove `vc` under `budget`, keeping
/// the background axioms `keep` selects (the checker's relevance slice —
/// all-true when slicing is off, which therefore fingerprints differently
/// from any proper slice) and scheduling the kept axioms by `phases` (the
/// effective activation phases, index-aligned with the *kept* axioms —
/// all-`Eager` when `--no-pattern-policies`, which again fingerprints
/// differently from the policy-gated schedule)".
pub fn fingerprint_vc(vc: &Vc, budget: &Budget, keep: &[bool], phases: &[Phase]) -> Fingerprint {
    let mut hasher = StableHasher::new();
    FINGERPRINT_VERSION.hash(&mut hasher);
    // The background/Init split is part of the content: the same formula
    // multiset partitioned differently is a different provenance.
    vc.background_hyps.hash(&mut hasher);
    vc.hypotheses.hash(&mut hasher);
    vc.goal.hash(&mut hasher);
    budget.hash(&mut hasher);
    keep.hash(&mut hasher);
    // Hash the phase mask as booleans: bools write one byte each, so the
    // stream stays process-stable regardless of how the enum's derived
    // `Hash` encodes its discriminant.
    let mask: Vec<bool> = phases.iter().map(|&p| p == Phase::GoalDirected).collect();
    mask.hash(&mut hasher);
    Fingerprint(hasher.finish128())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagroups::{CheckOptions, Checker};
    use oolong_syntax::parse_program;

    fn vcs_for(src: &str) -> Vec<Vc> {
        let checker = Checker::new(
            &parse_program(src).expect("parses"),
            CheckOptions::default(),
        )
        .expect("analyses");
        checker
            .scope()
            .impls()
            .map(|(id, _)| checker.vc(id).expect("vc generates"))
            .collect()
    }

    const BASE: &str = "group value
         field num in value
         proc bump(r) modifies r.value
         impl bump(r) { r.num := 3 }";

    /// Fingerprint with the trivial (all-kept) slice and an all-eager
    /// phase mask.
    fn fp(vc: &Vc, budget: &Budget) -> Fingerprint {
        fingerprint_vc(
            vc,
            budget,
            &vec![true; vc.background_hyps],
            &vec![Phase::Eager; vc.background_hyps],
        )
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let a = vcs_for(BASE);
        let b = vcs_for(BASE);
        assert_eq!(fp(&a[0], &Budget::default()), fp(&b[0], &Budget::default()));
    }

    #[test]
    fn budget_is_part_of_the_obligation() {
        let vcs = vcs_for(BASE);
        assert_ne!(
            fp(&vcs[0], &Budget::default()),
            fp(&vcs[0], &Budget::tiny())
        );
    }

    #[test]
    fn slice_is_part_of_the_obligation() {
        // The same VC under a different relevance slice is a different
        // content address: slicing changes the recorded statistics, so a
        // cached entry must not be served across slice changes.
        let vcs = vcs_for(BASE);
        let mut sliced = vec![true; vcs[0].background_hyps];
        sliced[0] = false;
        assert_ne!(
            fp(&vcs[0], &Budget::default()),
            fingerprint_vc(
                &vcs[0],
                &Budget::default(),
                &sliced,
                &vec![Phase::Eager; vcs[0].background_hyps],
            )
        );
    }

    #[test]
    fn phase_mask_is_part_of_the_obligation() {
        // The same VC under a different activation schedule is a different
        // content address: gating moves instantiations between presat and
        // goal, so a cached entry must not be served across policy changes
        // (e.g. flipping --no-pattern-policies).
        let vcs = vcs_for(BASE);
        let keep = vec![true; vcs[0].background_hyps];
        let mut phases = vec![Phase::Eager; vcs[0].background_hyps];
        phases[0] = Phase::GoalDirected;
        assert_ne!(
            fp(&vcs[0], &Budget::default()),
            fingerprint_vc(&vcs[0], &Budget::default(), &keep, &phases)
        );
    }

    #[test]
    fn obligation_edit_changes_the_fingerprint() {
        let before = vcs_for(BASE);
        // A second write extends the wlp chain: a different obligation.
        let after = vcs_for(&BASE.replace("r.num := 3", "r.num := 3 ; r.num := 3"));
        assert_ne!(
            fp(&before[0], &Budget::default()),
            fp(&after[0], &Budget::default())
        );
    }

    #[test]
    fn value_only_edit_keeps_the_fingerprint() {
        // The modifies obligation for `r.num := v` does not mention `v`:
        // editing only the stored value is a cache hit, by design.
        let before = vcs_for(BASE);
        let after = vcs_for(&BASE.replace("r.num := 3", "r.num := 4"));
        assert_eq!(
            fp(&before[0], &Budget::default()),
            fp(&after[0], &Budget::default())
        );
    }

    #[test]
    fn display_parses_back() {
        let vcs = vcs_for(BASE);
        let fingerprint = fp(&vcs[0], &Budget::default());
        assert_eq!(
            fingerprint
                .to_string()
                .parse::<Fingerprint>()
                .expect("parses"),
            fingerprint
        );
        assert_eq!(fingerprint.to_string().len(), 32);
    }

    #[test]
    fn fingerprint_bytes_are_stable_across_processes() {
        // Pinned hex: symbols hash by name digest and terms by structural
        // digest, so this value must never depend on interner state or
        // process layout. If this test fails because the recipe changed
        // on purpose, bump FINGERPRINT_VERSION and re-pin — silently
        // shifting bytes would orphan (or worse, mis-serve) disk caches.
        let vcs = vcs_for(BASE);
        let fingerprint = fp(&vcs[0], &Budget::default());
        assert_eq!(fingerprint.to_string(), PINNED_V6);
    }

    const PINNED_V6: &str = "0b892184ff1295342d7da88b6ae11fc3";
}
