//! The verdict cache: fingerprint → proof verdict.
//!
//! Entries are keyed by [`Fingerprint`] only — there is no invalidation
//! protocol beyond "a changed obligation has a changed fingerprint and
//! therefore misses". The cache is an in-memory map, optionally backed by
//! a directory of one JSON file per entry (`<fingerprint>.json`), which
//! makes concurrent writers trivially safe (writes of distinct obligations
//! touch distinct files; writes of the same obligation are idempotent
//! because the verdict is a pure function of the fingerprint).
//!
//! Only prover verdicts (`Verified` / `NotVerified` / `Unknown`) are
//! cached. Restriction violations and translation errors are recomputed
//! every run: they are syntactic, cost microseconds, and carry
//! source-anchored diagnostics that would go stale in a cache.

use crate::diagjson::{diagnosis_from_json, diagnosis_to_json, label_from_json, label_to_json};
use crate::fingerprint::Fingerprint;
use crate::json::{self, Json};
use datagroups::{ObligationLabel, Refutation, Verdict};
use oolong_diagnose::Diagnosis;
use oolong_prover::{QuantKind, QuantProfile, Stats, UnknownReason};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format version of on-disk entries; mismatched entries are ignored.
/// Version 2 added the structured stats members (`exhausted`, `per_quant`)
/// required to replay prover telemetry bit-for-bit from warm caches.
/// Version 3 added refutation attribution (`labels`, `primary`) and the
/// optional source-level `diagnosis`, so warm runs replay a cold run's
/// diagnosis byte-for-byte. The prover's candidate model is *not* cached —
/// it is an internal artifact consumed by diagnosis, and cache hits
/// rebuild the refutation without it.
/// Version 4 accompanies the hash-consed term arena: fingerprints are now
/// computed from interned-term content digests (see
/// `FINGERPRINT_VERSION` 2), so v3 entries address obligations under a
/// recipe this build can no longer reproduce. Migration is by miss, not
/// by rewrite: v3 entries are skipped (never corrupted or misread) and
/// the first cold run repopulates the store in v4 format.
/// Version 5 accompanies declared pattern policies: per-quantifier
/// profiles split `instances` into `presat`/`goal` (and fingerprints fold
/// in the activation-phase mask, `FINGERPRINT_VERSION` 4), so v4 entries
/// would replay telemetry without the split. Same migration by miss.
/// Version 6 accompanies object invariants and read effects
/// (`FINGERPRINT_VERSION` 6): labels and diagnoses may now carry the
/// `invariant-preserved` and `reads-violation` obligation kinds, and
/// label ids were renumbered (exit obligations allocate first), so a v5
/// attribution would blame the wrong conjunct. Same migration by miss.
pub const CACHE_FORMAT_VERSION: u64 = 6;

/// Full JSON form of prover stats: the scalar counters plus the
/// structured members ([`Stats::exhausted`], [`Stats::per_quant`]), so a
/// cache round-trip reproduces the cold run's stats exactly.
pub fn stats_to_json(stats: &Stats) -> Json {
    let mut members: Vec<(String, Json)> = stats
        .to_fields()
        .into_iter()
        .map(|(name, value)| (name.to_string(), Json::Int(value as i64)))
        .collect();
    members.push((
        "exhausted".to_string(),
        match stats.exhausted {
            Some(reason) => Json::Str(reason.as_str().to_string()),
            None => Json::Null,
        },
    ));
    members.push((
        "per_quant".to_string(),
        Json::Array(stats.per_quant.iter().map(quant_profile_to_json).collect()),
    ));
    Json::Object(members)
}

/// Inverse of [`stats_to_json`].
pub fn stats_from_json(value: &Json) -> Option<Stats> {
    let Json::Object(members) = value else {
        return None;
    };
    let mut stats = Stats::from_fields(
        members
            .iter()
            .filter_map(|(k, v)| Some((k.as_str(), v.as_u64()?))),
    );
    stats.exhausted = match value.get("exhausted")? {
        Json::Str(name) => Some(UnknownReason::from_name(name)?),
        _ => None,
    };
    stats.per_quant = value
        .get("per_quant")?
        .as_array()?
        .iter()
        .map(quant_profile_from_json)
        .collect::<Option<_>>()?;
    Some(stats)
}

fn quant_profile_to_json(q: &QuantProfile) -> Json {
    Json::Object(vec![
        ("id".to_string(), Json::Int(q.id as i64)),
        ("kind".to_string(), Json::Str(q.kind.as_str().to_string())),
        ("trigger".to_string(), Json::Str(q.trigger.clone())),
        ("matches".to_string(), Json::Int(q.matches as i64)),
        ("instances".to_string(), Json::Int(q.instances as i64)),
        ("presat".to_string(), Json::Int(q.presat_instances as i64)),
        ("goal".to_string(), Json::Int(q.goal_instances as i64)),
        ("deferred".to_string(), Json::Int(q.deferred as i64)),
        (
            "chain".to_string(),
            Json::Array(q.chain.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
    ])
}

fn quant_profile_from_json(value: &Json) -> Option<QuantProfile> {
    Some(QuantProfile {
        id: value.get("id")?.as_u64()? as usize,
        kind: QuantKind::from_name(value.get("kind")?.as_str()?),
        trigger: value.get("trigger")?.as_str()?.to_string(),
        matches: value.get("matches")?.as_u64()?,
        instances: value.get("instances")?.as_u64()?,
        presat_instances: value.get("presat")?.as_u64()?,
        goal_instances: value.get("goal")?.as_u64()?,
        deferred: value.get("deferred")?.as_u64()?,
        chain: value
            .get("chain")?
            .as_array()?
            .iter()
            .map(|s| Some(s.as_str()?.to_string()))
            .collect::<Option<_>>()?,
    })
}

/// A cached prover verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// Name of the implemented procedure (for reports and event logs).
    pub proc_name: String,
    /// The proof outcome.
    pub outcome: CachedOutcome,
    /// The prover work counters of the original (cold) run.
    pub stats: Stats,
    /// The open-branch sketch, when the VC was refuted.
    pub open_branch: Option<Vec<String>>,
    /// Position-label ids recorded on the refuting branch.
    pub labels: Vec<u32>,
    /// The blamed obligation's label, when the VC was refuted.
    pub primary: Option<ObligationLabel>,
    /// The source-level diagnosis, when one was computed on the cold run.
    pub diagnosis: Option<Diagnosis>,
}

/// The three prover outcomes a cache entry can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedOutcome {
    /// The VC was proved: the implementation verified.
    Proved,
    /// The VC was refuted: the implementation was rejected.
    NotProved,
    /// The prover ran out of budget.
    Unknown,
}

impl CachedOutcome {
    /// Stable string form used on disk and in events.
    pub fn as_str(self) -> &'static str {
        match self {
            CachedOutcome::Proved => "proved",
            CachedOutcome::NotProved => "not_proved",
            CachedOutcome::Unknown => "unknown",
        }
    }

    fn from_str(s: &str) -> Option<CachedOutcome> {
        match s {
            "proved" => Some(CachedOutcome::Proved),
            "not_proved" => Some(CachedOutcome::NotProved),
            "unknown" => Some(CachedOutcome::Unknown),
            _ => None,
        }
    }
}

impl CachedVerdict {
    /// Captures a freshly computed verdict, when it is cacheable (prover
    /// verdicts only). The diagnosis, when one was computed, rides along
    /// so warm runs replay it without re-proving or re-running replay.
    pub fn from_verdict(
        proc_name: &str,
        verdict: &Verdict,
        diagnosis: Option<&Diagnosis>,
    ) -> Option<CachedVerdict> {
        let (outcome, stats, refutation) = match verdict {
            Verdict::Verified(stats) => (CachedOutcome::Proved, stats.clone(), None),
            Verdict::NotVerified(stats, refutation) => {
                (CachedOutcome::NotProved, stats.clone(), Some(refutation))
            }
            Verdict::Unknown(stats) => (CachedOutcome::Unknown, stats.clone(), None),
            Verdict::RestrictionViolation(_) | Verdict::TranslationError(_) => return None,
        };
        Some(CachedVerdict {
            proc_name: proc_name.to_string(),
            outcome,
            stats,
            open_branch: refutation.and_then(|r| r.open_branch.clone()),
            labels: refutation.map(|r| r.labels.clone()).unwrap_or_default(),
            primary: refutation.and_then(|r| r.primary.clone()),
            diagnosis: diagnosis.cloned(),
        })
    }

    /// Reconstructs the verdict this entry recorded. The refutation's
    /// candidate model is not cached, so the rebuilt refutation carries
    /// `model: None` — diagnosis (which consumes the model) is replayed
    /// from the cached [`CachedVerdict::diagnosis`] instead.
    pub fn to_verdict(&self) -> Verdict {
        match self.outcome {
            CachedOutcome::Proved => Verdict::Verified(self.stats.clone()),
            CachedOutcome::NotProved => Verdict::NotVerified(
                self.stats.clone(),
                Box::new(Refutation {
                    open_branch: self.open_branch.clone(),
                    labels: self.labels.clone(),
                    primary: self.primary.clone(),
                    model: None,
                }),
            ),
            CachedOutcome::Unknown => Verdict::Unknown(self.stats.clone()),
        }
    }

    pub(crate) fn to_json(&self, fingerprint: Fingerprint) -> Json {
        Json::Object(vec![
            (
                "version".to_string(),
                Json::Int(CACHE_FORMAT_VERSION as i64),
            ),
            (
                "fingerprint".to_string(),
                Json::Str(fingerprint.to_string()),
            ),
            ("proc".to_string(), Json::Str(self.proc_name.clone())),
            (
                "outcome".to_string(),
                Json::Str(self.outcome.as_str().to_string()),
            ),
            ("stats".to_string(), stats_to_json(&self.stats)),
            (
                "open_branch".to_string(),
                match &self.open_branch {
                    None => Json::Null,
                    Some(lines) => {
                        Json::Array(lines.iter().map(|l| Json::Str(l.clone())).collect())
                    }
                },
            ),
            (
                "labels".to_string(),
                Json::Array(self.labels.iter().map(|&id| Json::Int(id as i64)).collect()),
            ),
            (
                "primary".to_string(),
                match &self.primary {
                    Some(label) => label_to_json(label),
                    None => Json::Null,
                },
            ),
            (
                "diagnosis".to_string(),
                match &self.diagnosis {
                    Some(d) => diagnosis_to_json(d),
                    None => Json::Null,
                },
            ),
        ])
    }

    pub(crate) fn from_json(value: &Json) -> Option<(Fingerprint, CachedVerdict)> {
        if value.get("version")?.as_u64()? != CACHE_FORMAT_VERSION {
            return None;
        }
        let fingerprint: Fingerprint = value.get("fingerprint")?.as_str()?.parse().ok()?;
        let proc_name = value.get("proc")?.as_str()?.to_string();
        let outcome = CachedOutcome::from_str(value.get("outcome")?.as_str()?)?;
        let stats = stats_from_json(value.get("stats")?)?;
        let open_branch = match value.get("open_branch")? {
            Json::Null => None,
            Json::Array(items) => Some(
                items
                    .iter()
                    .map(|l| Some(l.as_str()?.to_string()))
                    .collect::<Option<_>>()?,
            ),
            _ => return None,
        };
        let labels = value
            .get("labels")?
            .as_array()?
            .iter()
            .map(|id| Some(id.as_u64()? as u32))
            .collect::<Option<_>>()?;
        let primary = match value.get("primary")? {
            Json::Null => None,
            v => Some(label_from_json(v)?),
        };
        let diagnosis = match value.get("diagnosis")? {
            Json::Null => None,
            v => Some(diagnosis_from_json(v)?),
        };
        Some((
            fingerprint,
            CachedVerdict {
                proc_name,
                outcome,
                stats,
                open_branch,
                labels,
                primary,
                diagnosis,
            },
        ))
    }
}

/// A concurrent fingerprint-keyed verdict store, optionally persisted.
#[derive(Debug)]
pub struct VerdictCache {
    dir: Option<PathBuf>,
    entries: Mutex<HashMap<Fingerprint, CachedVerdict>>,
}

impl VerdictCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> VerdictCache {
        VerdictCache {
            dir: None,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// A cache persisted under `dir` (created if absent); existing entries
    /// are loaded eagerly. Unreadable or version-mismatched entry files
    /// are skipped, not errors — the cache is advisory.
    pub fn at_dir(dir: &Path) -> io::Result<VerdictCache> {
        std::fs::create_dir_all(dir)?;
        let mut entries = HashMap::new();
        for dirent in std::fs::read_dir(dir)? {
            let path = dirent?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json")
                || path.file_stem().and_then(|s| s.to_str()).map(str::len) != Some(32)
            {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(value) = json::parse(&text) else {
                continue;
            };
            if let Some((fingerprint, verdict)) = CachedVerdict::from_json(&value) {
                entries.insert(fingerprint, verdict);
            }
        }
        Ok(VerdictCache {
            dir: Some(dir.to_path_buf()),
            entries: Mutex::new(entries),
        })
    }

    /// The directory backing this cache, when persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry for `fingerprint`, if present.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Records a verdict, persisting it when the cache is disk-backed.
    /// Persistence is best-effort: an unwritable directory degrades to
    /// in-memory caching rather than failing the batch.
    pub fn insert(&self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        if let Some(dir) = &self.dir {
            let rendered = verdict.to_json(fingerprint).render();
            let _ = std::fs::write(dir.join(format!("{fingerprint}.json")), rendered);
        }
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(fingerprint, verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CachedVerdict {
        CachedVerdict {
            proc_name: "push".to_string(),
            outcome: CachedOutcome::NotProved,
            stats: Stats {
                instances: 17,
                branches: 3,
                trigger_matches: 29,
                merges: 11,
                clauses: 5,
                exhausted: Some(UnknownReason::Instances),
                per_quant: vec![QuantProfile {
                    id: 0,
                    kind: QuantKind::RepInclusion,
                    trigger: "{RepInc(A, F, B)}".to_string(),
                    matches: 29,
                    instances: 17,
                    presat_instances: 12,
                    goal_instances: 5,
                    deferred: 2,
                    chain: vec!["A := #g, F := #next, B := #g".to_string()],
                }],
                ..Stats::default()
            },
            open_branch: Some(vec!["x ≠ null".to_string(), "a = b".to_string()]),
            labels: vec![0, 3],
            primary: Some(ObligationLabel {
                id: 3,
                kind: datagroups::ObligationKind::ModifiesViolation,
                span: oolong_syntax::Span::new(12, 20),
                detail: "write to field `f` not covered by modifies list".to_string(),
            }),
            diagnosis: Some(Diagnosis {
                proc_name: "push".to_string(),
                kind: datagroups::ObligationKind::ModifiesViolation,
                label_id: Some(3),
                span: oolong_syntax::Span::new(12, 20),
                line: 1,
                col: 13,
                snippet: "r.f := 3".to_string(),
                clause: "write to field `f` not covered by modifies list".to_string(),
                touched: vec![],
                pre_store: vec!["#1.f = 0".to_string()],
                args: vec!["r = #1".to_string()],
                replay: oolong_diagnose::Replay::Confirmed {
                    oracle: "first".to_string(),
                    witness: "unlicensed write".to_string(),
                },
            }),
        }
    }

    #[test]
    fn json_round_trip() {
        let entry = sample_entry();
        let fp = Fingerprint(0xdead_beef_0123_4567_89ab_cdef_0011_2233);
        let value = entry.to_json(fp);
        let (fp2, entry2) = CachedVerdict::from_json(&value).expect("round-trips");
        assert_eq!(fp2, fp);
        assert_eq!(entry2, entry);
    }

    #[test]
    fn disk_persistence_round_trip() {
        let dir = std::env::temp_dir().join(format!("oolong-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = Fingerprint(42);
        {
            let cache = VerdictCache::at_dir(&dir).expect("creates");
            assert!(cache.is_empty());
            cache.insert(fp, sample_entry());
        }
        let reloaded = VerdictCache::at_dir(&dir).expect("reloads");
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get(fp), Some(sample_entry()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_skipped() {
        let entry = sample_entry();
        let fp = Fingerprint(7);
        let mut value = entry.to_json(fp);
        if let Json::Object(members) = &mut value {
            members[0].1 = Json::Int(999);
        }
        assert!(CachedVerdict::from_json(&value).is_none());
    }

    #[test]
    fn outdated_entries_miss_without_corruption() {
        // A v5 store must degrade to cold misses under a v6 build: the old
        // entry files are neither loaded nor rewritten, and fresh v6
        // entries land alongside them.
        let dir = std::env::temp_dir().join(format!("oolong-cache-v5-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("creates dir");
        let old_fp = Fingerprint(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let mut value = sample_entry().to_json(old_fp);
        if let Json::Object(members) = &mut value {
            assert_eq!(members[0].0, "version");
            members[0].1 = Json::Int(5);
        }
        let old_path = dir.join(format!("{old_fp}.json"));
        let old_bytes = value.render();
        std::fs::write(&old_path, &old_bytes).expect("writes v5 entry");

        let cache = VerdictCache::at_dir(&dir).expect("loads");
        assert!(cache.is_empty(), "v5 entries must not be loaded");
        assert_eq!(cache.get(old_fp), None);

        let new_fp = Fingerprint(99);
        cache.insert(new_fp, sample_entry());
        assert_eq!(
            std::fs::read_to_string(&old_path).expect("v5 file still present"),
            old_bytes,
            "migration is by miss: the v5 file must not be rewritten"
        );
        let reloaded = VerdictCache::at_dir(&dir).expect("reloads");
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get(new_fp), Some(sample_entry()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diagnostic_verdicts_are_not_cacheable() {
        use oolong_syntax::{Diagnostic, Span};
        let verdict = Verdict::TranslationError(Diagnostic::error("nope", Span::DUMMY));
        assert!(CachedVerdict::from_verdict("p", &verdict, None).is_none());
    }
}
