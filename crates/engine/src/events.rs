//! The engine's structured event log.
//!
//! Every obligation a batch processes emits an `obligation_started` event
//! followed by exactly one terminal event (`cache_hit`, `verified`,
//! `refuted`, `fuel_exhausted`, `restriction_violation`, or
//! `translation_error`); obligations that carry prover stats additionally
//! emit one `prover_profile` event with the per-axiom instantiation
//! telemetry; units that fail to parse or analyse emit a `unit_error`; the
//! batch closes with one `batch_summary`. Rendered as JSON Lines (one
//! compact object per line), the log is the engine's observability
//! surface: warm-cache behaviour ("zero prover calls on unchanged impls")
//! is *verified* by counting terminal event kinds, not inferred from
//! timings, and warm runs replay the cold run's stats verbatim (cache
//! hits carry the cached stats).
//!
//! Events are ordered by obligation sequence number, not wall-clock
//! completion, so logs from parallel runs are deterministic up to the
//! timing fields.

use crate::cache::stats_to_json;
use crate::diagjson::{diagnosis_to_json, label_to_json};
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use datagroups::ObligationLabel;
use oolong_diagnose::Diagnosis;
use oolong_prover::Stats;

/// One structured engine event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An obligation was picked up by a worker.
    ObligationStarted {
        /// Obligation sequence number (deterministic batch order).
        seq: usize,
        /// Name of the batch unit (file path or corpus reference).
        unit: String,
        /// Name of the implemented procedure.
        proc: String,
        /// The obligation's content address, when a VC was generated.
        fingerprint: Option<Fingerprint>,
    },
    /// The verdict was served from the cache; no prover call happened.
    CacheHit {
        /// Obligation sequence number.
        seq: usize,
        /// The cached outcome (`proved` / `not_proved` / `unknown`).
        outcome: &'static str,
        /// The cached prover work counters of the original cold run,
        /// replayed so warm logs carry the same telemetry as cold ones.
        stats: Stats,
    },
    /// Per-axiom prover telemetry for one obligation: instantiation and
    /// match counts per quantifier, plus divergence attribution when the
    /// budget ran out. Emitted after the terminal event of every
    /// obligation that carries stats — cached or freshly proved.
    ProverProfile {
        /// Obligation sequence number.
        seq: usize,
        /// Whether the stats were replayed from the cache.
        cached: bool,
        /// The prover work counters, including per-quantifier telemetry.
        stats: Stats,
    },
    /// The prover proved the VC: the implementation verified.
    Verified {
        /// Obligation sequence number.
        seq: usize,
        /// Prover wall-clock milliseconds.
        millis: f64,
        /// Prover work counters.
        stats: Stats,
    },
    /// The prover refuted the VC: the implementation was rejected.
    Refuted {
        /// Obligation sequence number.
        seq: usize,
        /// Prover wall-clock milliseconds.
        millis: f64,
        /// Prover work counters.
        stats: Stats,
        /// Lines of the open-branch sketch, when recorded.
        open_branch: Option<Vec<String>>,
        /// Ids of every position label on the refuting branch.
        labels: Vec<u32>,
        /// The primary label — the obligation blamed for the refutation —
        /// with its kind, span, and clause description.
        primary: Option<ObligationLabel>,
        /// The full source-level diagnosis, when diagnosis was enabled
        /// (boxed: a diagnosis dwarfs every other event variant).
        diagnosis: Option<Box<Diagnosis>>,
    },
    /// The prover exhausted its budget without a verdict.
    FuelExhausted {
        /// Obligation sequence number.
        seq: usize,
        /// Prover wall-clock milliseconds.
        millis: f64,
        /// Prover work counters.
        stats: Stats,
    },
    /// The implementation violates pivot uniqueness; no VC was generated.
    RestrictionViolation {
        /// Obligation sequence number.
        seq: usize,
        /// Rendered diagnostics.
        violations: Vec<String>,
    },
    /// VC generation failed on an unsupported expression form.
    TranslationError {
        /// Obligation sequence number.
        seq: usize,
        /// Rendered diagnostic.
        message: String,
    },
    /// A batch unit failed to parse or analyse; its obligations are
    /// unknown and nothing was checked.
    UnitError {
        /// Name of the batch unit.
        unit: String,
        /// Rendered diagnostic.
        message: String,
    },
    /// End-of-batch accounting.
    BatchSummary {
        /// Total obligations processed.
        obligations: usize,
        /// Obligations served from the cache.
        cache_hits: usize,
        /// Obligations that invoked the prover.
        prover_calls: usize,
        /// Final tally, as `(verified, rejected, unknown)`.
        tally: (usize, usize, usize),
        /// Batch wall-clock milliseconds.
        millis: f64,
    },
}

impl Event {
    /// The event's kind tag, as written in the JSON `event` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ObligationStarted { .. } => "obligation_started",
            Event::CacheHit { .. } => "cache_hit",
            Event::ProverProfile { .. } => "prover_profile",
            Event::Verified { .. } => "verified",
            Event::Refuted { .. } => "refuted",
            Event::FuelExhausted { .. } => "fuel_exhausted",
            Event::RestrictionViolation { .. } => "restriction_violation",
            Event::TranslationError { .. } => "translation_error",
            Event::UnitError { .. } => "unit_error",
            Event::BatchSummary { .. } => "batch_summary",
        }
    }

    /// Whether this is the terminal event of an obligation (as opposed to
    /// a start marker, unit error, or summary).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::CacheHit { .. }
                | Event::Verified { .. }
                | Event::Refuted { .. }
                | Event::FuelExhausted { .. }
                | Event::RestrictionViolation { .. }
                | Event::TranslationError { .. }
        )
    }

    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("event".to_string(), Json::Str(self.kind().to_string()))];
        let stats_json = |stats: &Stats| {
            Json::Object(
                stats
                    .to_fields()
                    .into_iter()
                    .map(|(name, value)| (name.to_string(), Json::Int(value as i64)))
                    .collect(),
            )
        };
        match self {
            Event::ObligationStarted {
                seq,
                unit,
                proc,
                fingerprint,
            } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("unit".to_string(), Json::Str(unit.clone())));
                members.push(("proc".to_string(), Json::Str(proc.clone())));
                members.push((
                    "fingerprint".to_string(),
                    match fingerprint {
                        Some(fp) => Json::Str(fp.to_string()),
                        None => Json::Null,
                    },
                ));
            }
            Event::CacheHit {
                seq,
                outcome,
                stats,
            } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("outcome".to_string(), Json::Str((*outcome).to_string())));
                members.push(("stats".to_string(), stats_json(stats)));
            }
            Event::ProverProfile { seq, cached, stats } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("cached".to_string(), Json::Bool(*cached)));
                members.push((
                    "exhausted".to_string(),
                    match stats.exhausted {
                        Some(reason) => Json::Str(reason.as_str().to_string()),
                        None => Json::Null,
                    },
                ));
                // The full structured form (scalars + per_quant) — the
                // JSONL consumer's view of the per-axiom telemetry.
                members.push(("stats".to_string(), stats_to_json(stats)));
                if let Some(divergence) = stats.divergence() {
                    members.push((
                        "divergence".to_string(),
                        Json::Array(
                            divergence
                                .culprits
                                .iter()
                                .map(|c| Json::Str(c.to_string()))
                                .collect(),
                        ),
                    ));
                }
            }
            Event::Verified { seq, millis, stats } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("millis".to_string(), Json::Float(*millis)));
                members.push(("stats".to_string(), stats_json(stats)));
            }
            Event::Refuted {
                seq,
                millis,
                stats,
                open_branch,
                labels,
                primary,
                diagnosis,
            } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("millis".to_string(), Json::Float(*millis)));
                members.push(("stats".to_string(), stats_json(stats)));
                members.push((
                    "open_branch".to_string(),
                    match open_branch {
                        None => Json::Null,
                        Some(lines) => {
                            Json::Array(lines.iter().map(|l| Json::Str(l.clone())).collect())
                        }
                    },
                ));
                members.push((
                    "labels".to_string(),
                    Json::Array(labels.iter().map(|&id| Json::Int(id as i64)).collect()),
                ));
                members.push((
                    "primary".to_string(),
                    match primary {
                        Some(label) => label_to_json(label),
                        None => Json::Null,
                    },
                ));
                members.push((
                    "diagnosis".to_string(),
                    match diagnosis {
                        Some(d) => diagnosis_to_json(d),
                        None => Json::Null,
                    },
                ));
            }
            Event::FuelExhausted { seq, millis, stats } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("millis".to_string(), Json::Float(*millis)));
                members.push((
                    "reason".to_string(),
                    match stats.exhausted {
                        Some(reason) => Json::Str(reason.as_str().to_string()),
                        None => Json::Null,
                    },
                ));
                members.push(("stats".to_string(), stats_json(stats)));
            }
            Event::RestrictionViolation { seq, violations } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push((
                    "violations".to_string(),
                    Json::Array(violations.iter().map(|v| Json::Str(v.clone())).collect()),
                ));
            }
            Event::TranslationError { seq, message } => {
                members.push(("seq".to_string(), Json::Int(*seq as i64)));
                members.push(("message".to_string(), Json::Str(message.clone())));
            }
            Event::UnitError { unit, message } => {
                members.push(("unit".to_string(), Json::Str(unit.clone())));
                members.push(("message".to_string(), Json::Str(message.clone())));
            }
            Event::BatchSummary {
                obligations,
                cache_hits,
                prover_calls,
                tally,
                millis,
            } => {
                members.push(("obligations".to_string(), Json::Int(*obligations as i64)));
                members.push(("cache_hits".to_string(), Json::Int(*cache_hits as i64)));
                members.push(("prover_calls".to_string(), Json::Int(*prover_calls as i64)));
                members.push(("verified".to_string(), Json::Int(tally.0 as i64)));
                members.push(("rejected".to_string(), Json::Int(tally.1 as i64)));
                members.push(("unknown".to_string(), Json::Int(tally.2 as i64)));
                members.push(("millis".to_string(), Json::Float(*millis)));
            }
        }
        Json::Object(members)
    }
}

/// Renders events as JSON Lines (one compact object per line, trailing
/// newline included when nonempty).
pub fn render_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json().render());
        out.push('\n');
    }
    out
}

/// A durable streaming JSONL event writer.
///
/// Every [`write`](EventLogWriter::write) renders one event line and
/// flushes it to the OS before returning, so a request aborted mid-flight
/// (client disconnect, worker panic, process kill between requests) leaves
/// every event it had produced on disk — the log is never sitting in a
/// userspace buffer. Dropping the writer flushes again as a backstop for
/// any future buffered path.
#[derive(Debug)]
pub struct EventLogWriter {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
}

impl EventLogWriter {
    /// Creates (truncating) the log at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: &std::path::Path) -> std::io::Result<EventLogWriter> {
        Ok(EventLogWriter {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            path: path.to_path_buf(),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Appends one event line and flushes it.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the line cannot be written or flushed.
    pub fn write(&mut self, event: &Event) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut line = event.to_json().render();
        line.push('\n');
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }

    /// Appends a batch of events, flushing after each line.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn write_all(&mut self, events: &[Event]) -> std::io::Result<()> {
        for event in events {
            self.write(event)?;
        }
        Ok(())
    }
}

impl Drop for EventLogWriter {
    fn drop(&mut self) {
        use std::io::Write as _;
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_event_renders_one_parseable_line() {
        let events = vec![
            Event::ObligationStarted {
                seq: 0,
                unit: "corpus:example1".to_string(),
                proc: "push".to_string(),
                fingerprint: Some(crate::fingerprint::Fingerprint(5)),
            },
            Event::CacheHit {
                seq: 0,
                outcome: "proved",
                stats: Stats::default(),
            },
            Event::ProverProfile {
                seq: 0,
                cached: true,
                stats: Stats {
                    exhausted: Some(oolong_prover::UnknownReason::Instances),
                    ..Stats::default()
                },
            },
            Event::Verified {
                seq: 1,
                millis: 1.25,
                stats: Stats::default(),
            },
            Event::Refuted {
                seq: 2,
                millis: 0.5,
                stats: Stats::default(),
                open_branch: Some(vec!["x = y".to_string()]),
                labels: vec![0, 2],
                primary: Some(ObligationLabel {
                    id: 2,
                    kind: datagroups::ObligationKind::ModifiesViolation,
                    span: oolong_syntax::Span::new(10, 18),
                    detail: "write not covered".to_string(),
                }),
                diagnosis: None,
            },
            Event::FuelExhausted {
                seq: 3,
                millis: 9.0,
                stats: Stats::default(),
            },
            Event::RestrictionViolation {
                seq: 4,
                violations: vec!["pivot".to_string()],
            },
            Event::TranslationError {
                seq: 5,
                message: "boolean in value position".to_string(),
            },
            Event::UnitError {
                unit: "missing.oo".to_string(),
                message: "no such file".to_string(),
            },
            Event::BatchSummary {
                obligations: 6,
                cache_hits: 1,
                prover_calls: 3,
                tally: (2, 3, 1),
                millis: 12.0,
            },
        ];
        let rendered = render_jsonl(&events);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let value = json::parse(line).expect("line parses");
            assert_eq!(
                value.get("event").and_then(Json::as_str),
                Some(event.kind())
            );
        }
    }
}
