//! The verdict store abstraction: the cache as a pluggable, tiered
//! component.
//!
//! [`VerdictCache`](crate::cache::VerdictCache) (PR 1) is one concrete
//! policy — an eagerly-loaded map mirrored to a directory. A resident
//! service wants a different shape: a *bounded* in-memory tier with an
//! eviction policy and hit/miss/eviction counters, in front of a lazy
//! on-disk tier that is opened once per process and read/written one
//! entry at a time (no scan on open, no full rewrite on insert). This
//! module provides that shape behind the [`VerdictStore`] trait:
//!
//! * [`MemoryTier`] — a bounded LRU map (intrusive doubly-linked list over
//!   a slab, O(1) touch/insert/evict) with hit/miss/eviction counters;
//! * [`DiskTier`] — the on-disk v4 cache format accessed lazily: `get`
//!   reads and version-checks one `<fingerprint>.json` file, `put` writes
//!   one file; concurrent writers stay trivially safe for the same reason
//!   as [`VerdictCache`](crate::cache::VerdictCache) (distinct obligations
//!   touch distinct files, identical obligations write identical bytes);
//! * [`TieredStore`] — memory in front of disk: a memory miss falls
//!   through to disk and promotes the entry on a hit, a put lands in both
//!   tiers. This is the cache a long-lived `oolong serve` process shares
//!   across every request.
//!
//! The [`Engine`](crate::engine::Engine) consumes any [`VerdictStore`];
//! `Engine::with_store` lets many engines (one per request, each with its
//! own prover budget) share a single store handle, which is what makes the
//! cache *resident* instead of re-opened per invocation.

use crate::cache::{CachedVerdict, VerdictCache};
use crate::fingerprint::Fingerprint;
use crate::json;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A concurrent fingerprint-keyed verdict store. All methods take `&self`:
/// implementations synchronize internally so one store handle can be
/// shared across worker threads and across [`Engine`](crate::Engine)s.
pub trait VerdictStore: std::fmt::Debug + Send + Sync {
    /// The entry for `fingerprint`, if present.
    fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict>;

    /// Records a verdict. Best-effort for persistent tiers: an unwritable
    /// backing directory degrades to memory-only caching, never an error.
    fn put(&self, fingerprint: Fingerprint, verdict: CachedVerdict);

    /// Number of entries currently resident (for persistent tiers, the
    /// number of entry files).
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the store's traffic counters. The default is all
    /// zeros, for stores that do not count.
    fn metrics(&self) -> StoreMetrics {
        StoreMetrics::default()
    }
}

/// Traffic counters of a [`VerdictStore`], as reported by `oolong serve`'s
/// `stats` request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Entries resident in the memory tier.
    pub mem_entries: usize,
    /// Bound of the memory tier (0 = tier disabled).
    pub mem_capacity: usize,
    /// Lookups answered by the memory tier.
    pub mem_hits: u64,
    /// Lookups that missed the memory tier.
    pub mem_misses: u64,
    /// Entries evicted from the memory tier (LRU order).
    pub evictions: u64,
    /// Memory-tier misses answered by the disk tier (each one promotes
    /// the entry into the memory tier).
    pub disk_hits: u64,
    /// Lookups that missed every tier.
    pub disk_misses: u64,
    /// Verdicts recorded through [`VerdictStore::put`].
    pub inserts: u64,
}

/// The in-memory tier: a bounded LRU map.
///
/// Recency is an intrusive doubly-linked list threaded through a slab of
/// nodes, so touch, insert, and evict are all O(1). Counters are atomics
/// read without taking the map lock.
#[derive(Debug)]
pub struct MemoryTier {
    capacity: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Sentinel index for "no node".
const NIL: usize = usize::MAX;

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<Fingerprint, usize>,
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

#[derive(Debug)]
struct LruNode {
    fingerprint: Fingerprint,
    verdict: CachedVerdict,
    prev: usize,
    next: usize,
}

impl LruInner {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.nodes[h].prev = idx,
        }
        self.head = idx;
    }
}

impl MemoryTier {
    /// An LRU tier holding at most `capacity` entries; `0` disables the
    /// tier (every lookup misses, every insert is dropped).
    pub fn with_capacity(capacity: usize) -> MemoryTier {
        MemoryTier {
            capacity,
            inner: Mutex::new(LruInner {
                head: NIL,
                tail: NIL,
                ..LruInner::default()
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The tier's entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl VerdictStore for MemoryTier {
    fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        let mut inner = self.inner.lock().expect("lru lock poisoned");
        match inner.map.get(&fingerprint).copied() {
            Some(idx) => {
                inner.unlink(idx);
                inner.push_front(idx);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.nodes[idx].verdict.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("lru lock poisoned");
        if let Some(idx) = inner.map.get(&fingerprint).copied() {
            inner.nodes[idx].verdict = verdict;
            inner.unlink(idx);
            inner.push_front(idx);
            return;
        }
        if inner.map.len() >= self.capacity {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL, "nonempty map has a tail");
            inner.unlink(victim);
            let evicted = inner.nodes[victim].fingerprint;
            inner.map.remove(&evicted);
            inner.free.push(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let node = LruNode {
            fingerprint,
            verdict,
            prev: NIL,
            next: NIL,
        };
        let idx = match inner.free.pop() {
            Some(idx) => {
                inner.nodes[idx] = node;
                idx
            }
            None => {
                inner.nodes.push(node);
                inner.nodes.len() - 1
            }
        };
        inner.map.insert(fingerprint, idx);
        inner.push_front(idx);
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("lru lock poisoned").map.len()
    }

    fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            mem_entries: self.len(),
            mem_capacity: self.capacity,
            mem_hits: self.hits.load(Ordering::Relaxed),
            mem_misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ..StoreMetrics::default()
        }
    }
}

/// The on-disk tier: the same per-entry JSON file format as
/// [`VerdictCache`](crate::cache::VerdictCache), accessed lazily.
///
/// Opening the tier creates the directory and nothing else — no scan, no
/// parse. `get` reads exactly one file; `put` writes exactly one file.
/// A resident process therefore pays I/O proportional to its traffic,
/// not to the cache's accumulated size, and an entry written by one
/// process is immediately visible to another sharing the directory.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if absent) the tier under `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn at_dir(dir: &Path) -> io::Result<DiskTier> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fingerprint: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }
}

impl VerdictStore for DiskTier {
    fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        let text = std::fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let value = json::parse(&text).ok()?;
        let (stored, verdict) = CachedVerdict::from_json(&value)?;
        // The filename is advisory; the entry's own fingerprint member is
        // authoritative (a corrupt or renamed file must not alias).
        (stored == fingerprint).then_some(verdict)
    }

    fn put(&self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        let rendered = verdict.to_json(fingerprint).render();
        let _ = std::fs::write(self.entry_path(fingerprint), rendered);
    }

    fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| {
                let path = e.path();
                path.extension().and_then(|x| x.to_str()) == Some("json")
                    && path.file_stem().and_then(|s| s.to_str()).map(str::len) == Some(32)
            })
            .count()
    }
}

/// Default bound of the memory tier: generous for a single corpus, small
/// against the disk tier a long-lived service accumulates.
pub const DEFAULT_MEMORY_CAPACITY: usize = 4096;

/// The two-tier store: a bounded [`MemoryTier`] in front of an optional
/// [`DiskTier`].
#[derive(Debug)]
pub struct TieredStore {
    memory: MemoryTier,
    disk: Option<DiskTier>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    inserts: AtomicU64,
}

impl TieredStore {
    /// A memory-only store bounded at `capacity` entries.
    pub fn in_memory(capacity: usize) -> TieredStore {
        TieredStore {
            memory: MemoryTier::with_capacity(capacity),
            disk: None,
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// A store persisted under `dir`, with a memory tier bounded at
    /// `capacity` entries.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn at_dir(dir: &Path, capacity: usize) -> io::Result<TieredStore> {
        Ok(TieredStore {
            memory: MemoryTier::with_capacity(capacity),
            disk: Some(DiskTier::at_dir(dir)?),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        })
    }

    /// The backing directory, when persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.disk.as_ref().map(DiskTier::dir)
    }

    /// Entries on the disk tier (0 when memory-only).
    pub fn disk_len(&self) -> usize {
        self.disk.as_ref().map_or(0, VerdictStore::len)
    }
}

impl VerdictStore for TieredStore {
    fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        if let Some(verdict) = self.memory.get(fingerprint) {
            return Some(verdict);
        }
        let Some(disk) = &self.disk else {
            return None;
        };
        match disk.get(fingerprint) {
            Some(verdict) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.memory.put(fingerprint, verdict.clone());
                Some(verdict)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.put(fingerprint, verdict.clone());
        }
        self.memory.put(fingerprint, verdict);
    }

    fn len(&self) -> usize {
        match &self.disk {
            Some(disk) => disk.len(),
            None => self.memory.len(),
        }
    }

    fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            ..self.memory.metrics()
        }
    }
}

/// [`VerdictCache`] (the PR-1 eager store) remains a valid policy behind
/// the same trait, so existing callers keep working unchanged.
impl VerdictStore for VerdictCache {
    fn get(&self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        VerdictCache::get(self, fingerprint)
    }

    fn put(&self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        VerdictCache::insert(self, fingerprint, verdict);
    }

    fn len(&self) -> usize {
        VerdictCache::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedOutcome;
    use oolong_prover::Stats;

    fn entry(tag: &str) -> CachedVerdict {
        CachedVerdict {
            proc_name: tag.to_string(),
            outcome: CachedOutcome::Proved,
            stats: Stats::default(),
            open_branch: None,
            labels: Vec::new(),
            primary: None,
            diagnosis: None,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let tier = MemoryTier::with_capacity(2);
        tier.put(Fingerprint(1), entry("a"));
        tier.put(Fingerprint(2), entry("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(tier.get(Fingerprint(1)).is_some());
        tier.put(Fingerprint(3), entry("c"));
        assert_eq!(tier.len(), 2);
        assert!(tier.get(Fingerprint(2)).is_none(), "2 was evicted");
        assert!(tier.get(Fingerprint(1)).is_some());
        assert!(tier.get(Fingerprint(3)).is_some());
        let m = tier.metrics();
        assert_eq!(m.evictions, 1);
        assert_eq!(m.mem_hits, 3);
        assert_eq!(m.mem_misses, 1);
    }

    #[test]
    fn lru_reinsert_updates_in_place() {
        let tier = MemoryTier::with_capacity(2);
        tier.put(Fingerprint(1), entry("a"));
        tier.put(Fingerprint(1), entry("a2"));
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.get(Fingerprint(1)).expect("present").proc_name, "a2");
        assert_eq!(tier.metrics().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let tier = MemoryTier::with_capacity(0);
        tier.put(Fingerprint(1), entry("a"));
        assert_eq!(tier.len(), 0);
        assert!(tier.get(Fingerprint(1)).is_none());
    }

    #[test]
    fn lru_slab_reuses_freed_nodes() {
        let tier = MemoryTier::with_capacity(2);
        for i in 0..100u128 {
            tier.put(Fingerprint(i), entry(&format!("e{i}")));
        }
        let inner = tier.inner.lock().expect("lock");
        assert!(
            inner.nodes.len() <= 3,
            "slab stays bounded by capacity, not by traffic (got {})",
            inner.nodes.len()
        );
    }

    #[test]
    fn disk_tier_round_trips_lazily() {
        let dir = std::env::temp_dir().join(format!("oolong-disktier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = Fingerprint(0xfeed_f00d_0000_0000_0000_0000_0000_0001);
        {
            let tier = DiskTier::at_dir(&dir).expect("creates");
            assert_eq!(tier.len(), 0);
            tier.put(fp, entry("p"));
            assert_eq!(tier.len(), 1);
        }
        // A second handle sees the entry without any eager load.
        let tier = DiskTier::at_dir(&dir).expect("reopens");
        assert_eq!(tier.get(fp).expect("present").proc_name, "p");
        assert!(tier.get(Fingerprint(2)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_rejects_renamed_entries() {
        // An entry file whose name does not match its recorded fingerprint
        // must not alias another obligation.
        let dir = std::env::temp_dir().join(format!("oolong-diskalias-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tier = DiskTier::at_dir(&dir).expect("creates");
        let fp = Fingerprint(0xaaaa_0000_0000_0000_0000_0000_0000_0001);
        let other = Fingerprint(0xbbbb_0000_0000_0000_0000_0000_0000_0002);
        tier.put(fp, entry("p"));
        std::fs::rename(
            dir.join(format!("{fp}.json")),
            dir.join(format!("{other}.json")),
        )
        .expect("renames");
        assert!(tier.get(other).is_none(), "renamed entry must not serve");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_store_promotes_disk_hits() {
        let dir = std::env::temp_dir().join(format!("oolong-tiered-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fp = Fingerprint(77);
        {
            let store = TieredStore::at_dir(&dir, 8).expect("creates");
            store.put(fp, entry("p"));
        }
        // Fresh handle: memory tier is empty, the first get is a disk hit
        // that promotes, the second is a memory hit.
        let store = TieredStore::at_dir(&dir, 8).expect("reopens");
        assert!(store.get(fp).is_some());
        assert!(store.get(fp).is_some());
        assert!(store.get(Fingerprint(1)).is_none());
        let m = store.metrics();
        assert_eq!(m.disk_hits, 1);
        assert_eq!(m.mem_hits, 1);
        assert_eq!(m.mem_misses, 2);
        assert_eq!(m.disk_misses, 1);
        assert_eq!(m.mem_entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
