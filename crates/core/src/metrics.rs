//! Metrics over checking runs.
//!
//! Two families live here:
//!
//! * **Specification overhead** (experiment E10). Section 6 of the paper
//!   claims that "the overhead for specifying data groups, inclusions, and
//!   modifies lists does not seem overwhelming". [`overhead`] quantifies
//!   this for a program: the fraction of lexical tokens that belong to
//!   specification constructs (`group` declarations, `in` clauses,
//!   `maps … into …` clauses, and `modifies` lists) rather than executable
//!   code.
//! * **Prover telemetry aggregation** (experiment E14). [`prover_metrics`]
//!   folds the per-obligation [`oolong_prover::Stats`] of a checking
//!   [`Report`] into scope-level totals, per-axiom-kind instantiation
//!   counts, and a hottest-axioms table — the measurement layer under the
//!   `oolong stats` subcommand.

use crate::checker::Report;
use crate::vcgen::ObligationKind;
use oolong_prover::{QuantKind, Stats};
use oolong_syntax::lexer::lex;
use oolong_syntax::pretty;
use oolong_syntax::{Decl, Program};
use std::collections::HashMap;
use std::fmt;

/// Token counts separating specification from code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Tokens in specification constructs.
    pub spec_tokens: usize,
    /// All tokens of the (canonically printed) program.
    pub total_tokens: usize,
}

impl OverheadReport {
    /// Specification tokens as a fraction of all tokens (0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.spec_tokens as f64 / self.total_tokens as f64
        }
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} tokens are specification ({:.1}%)",
            self.spec_tokens,
            self.total_tokens,
            self.ratio() * 100.0
        )
    }
}

/// One axiom family's aggregate across all obligations of a report,
/// merged by (kind, rendered trigger) — structurally identical background
/// axioms recur in every verification condition of a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotAxiom {
    /// Vocabulary classification of the axiom.
    pub kind: QuantKind,
    /// Rendered trigger set (the merge key alongside `kind`).
    pub trigger: String,
    /// Trigger-match bindings found, summed.
    pub matches: u64,
    /// Instantiations performed, summed.
    pub instances: u64,
    /// Instantiations performed during background pre-saturation, summed.
    pub presat_instances: u64,
    /// Instantiations performed inside obligation frames, summed.
    pub goal_instances: u64,
    /// Instantiations deferred by the matching-generation limit, summed.
    pub deferred: u64,
    /// How many obligations registered this axiom.
    pub obligations: usize,
}

impl fmt::Display for HotAxiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} instances ({} presat + {} goal), {} matches over {} obligation(s)",
            self.kind,
            if self.trigger.is_empty() {
                "(no trigger)"
            } else {
                &self.trigger
            },
            self.instances,
            self.presat_instances,
            self.goal_instances,
            self.matches,
            self.obligations
        )
    }
}

/// Scope-level aggregation of prover telemetry (see [`prover_metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProverMetrics {
    /// Obligations that reached the prover (i.e. carried stats).
    pub obligations: usize,
    /// Obligations whose budget ran out.
    pub unknown: usize,
    /// Total quantifier instantiations.
    pub instances: u64,
    /// Quantifier instantiations performed during background
    /// pre-saturation (reported once per obligation proved against the
    /// shared context — presat work is part of every proof's budget).
    pub presat_instances: u64,
    /// Quantifier instantiations performed inside obligation frames,
    /// after the goal terms were asserted.
    pub goal_instances: u64,
    /// Total trigger-match bindings.
    pub trigger_matches: u64,
    /// Total E-graph merges.
    pub merges: u64,
    /// Total case-split branches.
    pub branches: u64,
    /// Total disjunctions registered.
    pub clauses: u64,
    /// Total instantiations deferred by the matching-generation limit.
    pub deferred: u64,
    /// Total backtracking checkpoints unwound (trail-mode search).
    pub pops: u64,
    /// Total E-graph merges rolled back by backtracking (trail mode).
    pub undone_merges: u64,
    /// Deepest undo trail across all obligations (trail mode).
    pub trail_depth_max: u64,
    /// Total background axioms sliced away by relevance slicing, summed
    /// across obligations.
    pub sliced_axioms: u64,
    /// Instantiations per axiom kind, in a fixed order
    /// (rep-inclusion, inclusion, store, other).
    pub by_kind: Vec<(QuantKind, u64)>,
    /// Labeled proof-obligation conjuncts per obligation kind, summed
    /// across implementations, in [`ObligationKind::ALL`] order with
    /// zero-count kinds omitted.
    pub obligation_kinds: Vec<(ObligationKind, u64)>,
    /// Axioms merged across obligations, hottest (by instantiation
    /// pressure) first.
    pub hottest: Vec<HotAxiom>,
}

impl ProverMetrics {
    /// The `n` hottest axioms.
    pub fn top(&self, n: usize) -> &[HotAxiom] {
        &self.hottest[..self.hottest.len().min(n)]
    }
}

impl fmt::Display for ProverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} obligation(s): {} instances ({} presat + {} goal), {} matches, {} merges, {} branches, {} clauses",
            self.obligations,
            self.instances,
            self.presat_instances,
            self.goal_instances,
            self.trigger_matches,
            self.merges,
            self.branches,
            self.clauses
        )?;
        writeln!(
            f,
            "backtracking: {} pops, {} undone merges, trail depth {}",
            self.pops, self.undone_merges, self.trail_depth_max
        )?;
        writeln!(
            f,
            "axiom slicing: {} axioms sliced away",
            self.sliced_axioms
        )?;
        writeln!(f, "instantiations by axiom kind:")?;
        for (kind, instances) in &self.by_kind {
            writeln!(f, "  {kind}: {instances}")?;
        }
        if !self.obligation_kinds.is_empty() {
            writeln!(f, "labeled obligations by kind:")?;
            for (kind, count) in &self.obligation_kinds {
                writeln!(f, "  {kind}: {count}")?;
            }
        }
        if !self.hottest.is_empty() {
            writeln!(f, "hottest axioms:")?;
            for axiom in self.top(5) {
                writeln!(f, "  {axiom}")?;
            }
        }
        Ok(())
    }
}

/// Aggregates the prover telemetry of a checking report: totals across
/// obligations, instantiation counts per axiom kind, and a hottest-axioms
/// table merged by (kind, trigger).
pub fn prover_metrics(report: &Report) -> ProverMetrics {
    let stats: Vec<&Stats> = report
        .impls
        .iter()
        .filter_map(|rep| rep.verdict.stats())
        .collect();
    let mut metrics = ProverMetrics {
        obligations: stats.len(),
        unknown: stats.iter().filter(|s| s.exhausted.is_some()).count(),
        ..ProverMetrics::default()
    };
    let mut kind_totals: [(QuantKind, u64); 4] = [
        (QuantKind::RepInclusion, 0),
        (QuantKind::Inclusion, 0),
        (QuantKind::Store, 0),
        (QuantKind::Other, 0),
    ];
    let mut merged: HashMap<(QuantKind, String), HotAxiom> = HashMap::new();
    for s in stats {
        metrics.instances += s.instances as u64;
        metrics.trigger_matches += s.trigger_matches;
        metrics.merges += s.merges;
        metrics.branches += s.branches;
        metrics.clauses += s.clauses;
        metrics.deferred += s.deferred_instances as u64;
        metrics.pops += s.pops;
        metrics.undone_merges += s.undone_merges;
        metrics.trail_depth_max = metrics.trail_depth_max.max(s.trail_depth_max as u64);
        metrics.sliced_axioms += s.sliced_axioms as u64;
        for q in &s.per_quant {
            let slot = kind_totals
                .iter_mut()
                .find(|(k, _)| *k == q.kind)
                .expect("all kinds listed");
            slot.1 += q.instances;
            metrics.presat_instances += q.presat_instances;
            metrics.goal_instances += q.goal_instances;
            let entry = merged
                .entry((q.kind, q.trigger.clone()))
                .or_insert_with(|| HotAxiom {
                    kind: q.kind,
                    trigger: q.trigger.clone(),
                    matches: 0,
                    instances: 0,
                    presat_instances: 0,
                    goal_instances: 0,
                    deferred: 0,
                    obligations: 0,
                });
            entry.matches += q.matches;
            entry.instances += q.instances;
            entry.presat_instances += q.presat_instances;
            entry.goal_instances += q.goal_instances;
            entry.deferred += q.deferred;
            entry.obligations += 1;
        }
    }
    metrics.by_kind = kind_totals.to_vec();
    let mut obligation_totals: HashMap<ObligationKind, u64> = HashMap::new();
    for rep in &report.impls {
        for &(kind, n) in &rep.kind_counts {
            *obligation_totals.entry(kind).or_default() += n as u64;
        }
    }
    metrics.obligation_kinds = ObligationKind::ALL
        .iter()
        .filter_map(|kind| obligation_totals.get(kind).map(|&n| (*kind, n)))
        .collect();
    let mut hottest: Vec<HotAxiom> = merged.into_values().collect();
    hottest.sort_by(|a, b| {
        (b.instances + b.deferred)
            .cmp(&(a.instances + a.deferred))
            .then_with(|| a.trigger.cmp(&b.trigger))
    });
    hottest.retain(|a| a.matches > 0 || a.instances > 0 || a.deferred > 0);
    metrics.hottest = hottest;
    metrics
}

fn count_tokens(source: &str) -> usize {
    let (tokens, _) = lex(source);
    tokens.len().saturating_sub(1) // drop EOF
}

/// Measures the specification overhead of a program.
pub fn overhead(program: &Program) -> OverheadReport {
    let total_tokens = count_tokens(&pretty::print_program(program));
    let mut spec_tokens = 0;
    for decl in &program.decls {
        match decl {
            // A group declaration is pure specification.
            Decl::Group(_) => spec_tokens += count_tokens(&pretty::print_decl(decl)),
            Decl::Field(fd) => {
                // `in g, h` — keyword + idents + commas.
                if !fd.includes.is_empty() {
                    spec_tokens += 1 + 2 * fd.includes.len() - 1;
                }
                // `maps [elem] x into g, h` per clause.
                for m in &fd.maps {
                    spec_tokens += 3 + 2 * m.into.len() - 1 + usize::from(m.elementwise);
                }
            }
            Decl::Proc(pd) => {
                if !pd.modifies.is_empty() {
                    let entries: usize = pd
                        .modifies
                        .iter()
                        .map(|e| count_tokens(&pretty::print_expr(e)))
                        .sum();
                    // keyword + entries + separating commas.
                    spec_tokens += 1 + entries + pd.modifies.len() - 1;
                }
                // `reads t.g, t.h` — same accounting as modifies.
                if let Some(reads) = &pd.reads {
                    let entries: usize = reads
                        .iter()
                        .map(|e| count_tokens(&pretty::print_expr(e)))
                        .sum();
                    spec_tokens += 1 + entries + reads.len().saturating_sub(1);
                }
            }
            // An invariant declaration is pure specification.
            Decl::Invariant(_) => spec_tokens += count_tokens(&pretty::print_decl(decl)),
            Decl::Impl(_) => {}
            // Module syntax (`module M imports N { … }`) is organisational,
            // not specification; its member declarations are measured via
            // recursion on the flattened body.
            Decl::Module(m) => {
                let inner = overhead(&Program {
                    decls: m.decls.clone(),
                });
                spec_tokens += inner.spec_tokens;
            }
        }
    }
    OverheadReport {
        spec_tokens,
        total_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    #[test]
    fn pure_code_has_zero_overhead() {
        let p = parse_program("proc p(t) impl p(t) { skip }").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 0);
        assert!(r.total_tokens > 0);
        assert_eq!(r.ratio(), 0.0);
    }

    #[test]
    fn group_declarations_count_fully() {
        let p = parse_program("group g").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 2); // `group`, `g`
        assert_eq!(r.total_tokens, 2);
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn clauses_counted_precisely() {
        // field f in a, b  →  in a , b = 4 spec tokens of 6 total.
        let p = parse_program("group a group b field f in a, b").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 2 + 2 + 4);
        // maps x into g = 4 tokens.
        let p2 = parse_program("group g field x field f maps x into g").unwrap();
        let r2 = overhead(&p2);
        assert_eq!(r2.spec_tokens, 2 + 4);
    }

    #[test]
    fn modifies_lists_counted() {
        // modifies t.c.g, t.d = 1 + 5 + 1 + 3 = 10? t.c.g lexes to 5
        // tokens (t . c . g), t.d to 3, plus `modifies` and one comma.
        let p = parse_program("group g field c field d proc p(t) modifies t.c.g, t.d").unwrap();
        let r = overhead(&p);
        // `group g` (2) + `modifies` (1) + `t.c.g` (5) + `,` (1) + `t.d` (3).
        assert_eq!(r.spec_tokens, 2 + 1 + 5 + 1 + 3);
    }

    #[test]
    fn elementwise_clause_counts_one_extra_token() {
        let plain = parse_program("group g field x field f maps x into g").unwrap();
        let elem = parse_program("group g field x field f maps elem x into g").unwrap();
        assert_eq!(
            overhead(&elem).spec_tokens,
            overhead(&plain).spec_tokens + 1
        );
    }

    #[test]
    fn prover_metrics_aggregate_a_checked_report() {
        use crate::checker::{CheckOptions, Checker};
        let p = parse_program(
            "group value
             field num in value
             proc bump(r) modifies r.value
             impl bump(r) { r.num := r.num + 1 }
             proc twice(r) modifies r.value
             impl twice(r) { bump(r) ; bump(r) }",
        )
        .unwrap();
        let report = Checker::new(&p, CheckOptions::default())
            .unwrap()
            .check_all();
        assert!(report.all_verified());
        let m = prover_metrics(&report);
        assert_eq!(m.obligations, 2);
        assert_eq!(m.unknown, 0);
        assert!(m.instances > 0);
        assert!(m.trigger_matches >= m.instances);
        assert!(m.merges > 0);
        assert_eq!(m.by_kind.len(), 4);
        let total_by_kind: u64 = m.by_kind.iter().map(|(_, n)| n).sum();
        assert_eq!(total_by_kind, m.instances);
        assert_eq!(
            m.presat_instances + m.goal_instances,
            m.instances,
            "every instantiation is attributed to exactly one phase"
        );
        assert!(!m.hottest.is_empty());
        // Hottest table is sorted by instantiation pressure.
        for pair in m.hottest.windows(2) {
            assert!(pair[0].instances + pair[0].deferred >= pair[1].instances + pair[1].deferred);
        }
        // Both obligations see the same background axioms, so merged rows
        // count two obligations each.
        assert!(m.hottest.iter().any(|a| a.obligations == 2));
    }

    #[test]
    fn realistic_program_ratio_is_moderate() {
        let p = parse_program(
            "group value
             field num in value
             field den in value
             proc normalize(r) modifies r.value
             impl normalize(r) {
               assume r != null ;
               r.num := r.num + 1 ;
               r.den := r.den + 1
             }",
        )
        .unwrap();
        let r = overhead(&p);
        assert!(r.ratio() > 0.05 && r.ratio() < 0.5, "ratio {}", r.ratio());
    }
}
