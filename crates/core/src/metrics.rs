//! Specification-overhead metrics (experiment E10).
//!
//! Section 6 of the paper claims that "the overhead for specifying data
//! groups, inclusions, and modifies lists does not seem overwhelming".
//! [`overhead`] quantifies this for a program: the fraction of lexical
//! tokens that belong to specification constructs (`group` declarations,
//! `in` clauses, `maps … into …` clauses, and `modifies` lists) rather
//! than executable code.

use oolong_syntax::lexer::lex;
use oolong_syntax::pretty;
use oolong_syntax::{Decl, Program};
use std::fmt;

/// Token counts separating specification from code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Tokens in specification constructs.
    pub spec_tokens: usize,
    /// All tokens of the (canonically printed) program.
    pub total_tokens: usize,
}

impl OverheadReport {
    /// Specification tokens as a fraction of all tokens (0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.spec_tokens as f64 / self.total_tokens as f64
        }
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} tokens are specification ({:.1}%)",
            self.spec_tokens,
            self.total_tokens,
            self.ratio() * 100.0
        )
    }
}

fn count_tokens(source: &str) -> usize {
    let (tokens, _) = lex(source);
    tokens.len().saturating_sub(1) // drop EOF
}

/// Measures the specification overhead of a program.
pub fn overhead(program: &Program) -> OverheadReport {
    let total_tokens = count_tokens(&pretty::print_program(program));
    let mut spec_tokens = 0;
    for decl in &program.decls {
        match decl {
            // A group declaration is pure specification.
            Decl::Group(_) => spec_tokens += count_tokens(&pretty::print_decl(decl)),
            Decl::Field(fd) => {
                // `in g, h` — keyword + idents + commas.
                if !fd.includes.is_empty() {
                    spec_tokens += 1 + 2 * fd.includes.len() - 1;
                }
                // `maps [elem] x into g, h` per clause.
                for m in &fd.maps {
                    spec_tokens += 3 + 2 * m.into.len() - 1 + usize::from(m.elementwise);
                }
            }
            Decl::Proc(pd) => {
                if !pd.modifies.is_empty() {
                    let entries: usize = pd
                        .modifies
                        .iter()
                        .map(|e| count_tokens(&pretty::print_expr(e)))
                        .sum();
                    // keyword + entries + separating commas.
                    spec_tokens += 1 + entries + pd.modifies.len() - 1;
                }
            }
            Decl::Impl(_) => {}
            // Module syntax (`module M imports N { … }`) is organisational,
            // not specification; its member declarations are measured via
            // recursion on the flattened body.
            Decl::Module(m) => {
                let inner = overhead(&Program {
                    decls: m.decls.clone(),
                });
                spec_tokens += inner.spec_tokens;
            }
        }
    }
    OverheadReport {
        spec_tokens,
        total_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    #[test]
    fn pure_code_has_zero_overhead() {
        let p = parse_program("proc p(t) impl p(t) { skip }").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 0);
        assert!(r.total_tokens > 0);
        assert_eq!(r.ratio(), 0.0);
    }

    #[test]
    fn group_declarations_count_fully() {
        let p = parse_program("group g").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 2); // `group`, `g`
        assert_eq!(r.total_tokens, 2);
        assert_eq!(r.ratio(), 1.0);
    }

    #[test]
    fn clauses_counted_precisely() {
        // field f in a, b  →  in a , b = 4 spec tokens of 6 total.
        let p = parse_program("group a group b field f in a, b").unwrap();
        let r = overhead(&p);
        assert_eq!(r.spec_tokens, 2 + 2 + 4);
        // maps x into g = 4 tokens.
        let p2 = parse_program("group g field x field f maps x into g").unwrap();
        let r2 = overhead(&p2);
        assert_eq!(r2.spec_tokens, 2 + 4);
    }

    #[test]
    fn modifies_lists_counted() {
        // modifies t.c.g, t.d = 1 + 5 + 1 + 3 = 10? t.c.g lexes to 5
        // tokens (t . c . g), t.d to 3, plus `modifies` and one comma.
        let p = parse_program("group g field c field d proc p(t) modifies t.c.g, t.d").unwrap();
        let r = overhead(&p);
        // `group g` (2) + `modifies` (1) + `t.c.g` (5) + `,` (1) + `t.d` (3).
        assert_eq!(r.spec_tokens, 2 + 1 + 5 + 1 + 3);
    }

    #[test]
    fn elementwise_clause_counts_one_extra_token() {
        let plain = parse_program("group g field x field f maps x into g").unwrap();
        let elem = parse_program("group g field x field f maps elem x into g").unwrap();
        assert_eq!(
            overhead(&elem).spec_tokens,
            overhead(&plain).spec_tokens + 1
        );
    }

    #[test]
    fn realistic_program_ratio_is_moderate() {
        let p = parse_program(
            "group value
             field num in value
             field den in value
             proc normalize(r) modifies r.value
             impl normalize(r) {
               assume r != null ;
               r.num := r.num + 1 ;
               r.den := r.den + 1
             }",
        )
        .unwrap();
        let r = overhead(&p);
        assert!(r.ratio() > 0.05 && r.ratio() < 0.5, "ratio {}", r.ratio());
    }
}
