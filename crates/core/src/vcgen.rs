//! Verification-condition generation: `wlp` (Figures 2 and 3) and the
//! per-implementation VC of formula (1):
//!
//! ```text
//! UBP ∧ BP_D ∧ Init(m) ⇒ wlp_{w,$0}(C, true)
//! ```
//!
//! One reading note: Figure 2 writes the allocation rule as
//! `Q[x := new($)][$ := $⁺]`. Read literally as sequential substitution
//! this would rewrite the just-introduced `new($)` into `new($⁺)` —
//! allocating one object and assigning a different one. We read the
//! substitution pairs as *parallel* (`Q[x := new($), $ := $⁺]`), which
//! matches the operational semantics: `x` receives `new(S_pre)` and the
//! store advances to `S_pre⁺`. The field-allocation rule is treated
//! correspondingly: the final store is `$⁺(tr(E)·f := new($))`.

use crate::effects::{ModEntry, ModList};
use crate::translate::{tr_formula, tr_value};
use oolong_logic::transform::FreshGen;
use oolong_logic::{Atom, Formula, Pattern, Symbol, Term, Trigger};
use oolong_sema::{ImplId, Scope};
use oolong_syntax::{Cmd, Diagnostic, Expr, Span};
use std::fmt;

/// The kind of proof obligation a position label marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObligationKind {
    /// A `mod(X·A, w, $0)` license for a field/slot write, or a caller's
    /// license covering a callee's modifies entry.
    ModifiesViolation,
    /// An `ownExcl` clause for an argument at a call site.
    OwnerExclusion,
    /// An `assert E` command's condition.
    Assert,
    /// The syntactic pivot-uniqueness restriction (checked outside the
    /// prover; never appears on a VC label, but shares the vocabulary).
    PivotUniqueness,
    /// A declared object invariant may not hold at a procedure exit or a
    /// call boundary.
    InvariantPreserved,
    /// A heap read not licensed by the procedure's declared `reads` frame,
    /// or a caller's read frame failing to cover a callee's reads entry.
    ReadsViolation,
}

impl ObligationKind {
    /// Every kind, in a fixed order (used for stable per-kind tallies).
    pub const ALL: [ObligationKind; 6] = [
        ObligationKind::ModifiesViolation,
        ObligationKind::OwnerExclusion,
        ObligationKind::Assert,
        ObligationKind::PivotUniqueness,
        ObligationKind::InvariantPreserved,
        ObligationKind::ReadsViolation,
    ];

    /// Stable machine-readable name (used in JSON output and caches).
    pub fn as_str(self) -> &'static str {
        match self {
            ObligationKind::ModifiesViolation => "modifies-violation",
            ObligationKind::OwnerExclusion => "owner-exclusion",
            ObligationKind::Assert => "assert",
            ObligationKind::PivotUniqueness => "pivot-uniqueness",
            ObligationKind::InvariantPreserved => "invariant-preserved",
            ObligationKind::ReadsViolation => "reads-violation",
        }
    }

    /// Inverse of [`ObligationKind::as_str`].
    pub fn parse(s: &str) -> Option<ObligationKind> {
        match s {
            "modifies-violation" => Some(ObligationKind::ModifiesViolation),
            "owner-exclusion" => Some(ObligationKind::OwnerExclusion),
            "assert" => Some(ObligationKind::Assert),
            "pivot-uniqueness" => Some(ObligationKind::PivotUniqueness),
            "invariant-preserved" => Some(ObligationKind::InvariantPreserved),
            "reads-violation" => Some(ObligationKind::ReadsViolation),
            _ => None,
        }
    }
}

impl fmt::Display for ObligationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One position label (`lblpos`-style): the source command and obligation
/// kind a labelled VC conjunct stands for. The prover treats the label as
/// logically transparent but reports which labels land on a refuting
/// branch, letting diagnostics point back at the offending command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationLabel {
    /// The label id embedded in the formula ([`Formula::Labeled`]).
    pub id: u32,
    /// What kind of obligation the conjunct is.
    pub kind: ObligationKind,
    /// Source span of the offending command.
    pub span: Span,
    /// Human-readable description of the obligation.
    pub detail: String,
}

/// Options controlling VC generation.
#[derive(Debug, Clone)]
pub struct VcOptions {
    /// Emit `≠ null` well-definedness side conditions for dereferences.
    /// Default `false`, matching the paper (which elides them "for
    /// brevity" and whose examples require the elision — e.g. §3.0's `q`
    /// reads `v.cnt` for a `v` whose non-nullness is unknown).
    pub null_checks: bool,
    /// Apply the paper's alias-confinement machinery: owner-exclusion
    /// obligations at call sites, owner-exclusion assumptions on entry,
    /// and the background axioms (6) and (7). Setting this to `false`
    /// yields the *naive* checker used as the unsound baseline in
    /// experiments E2 and E3.
    pub restrictions: bool,
    /// Check at the arrays language level even if the scope itself uses no
    /// array features. Needed when a plain module will be linked together
    /// with arrays-level modules (see `DESIGN.md`, extensions).
    pub force_arrays_level: bool,
}

impl Default for VcOptions {
    fn default() -> Self {
        VcOptions {
            null_checks: false,
            restrictions: true,
            force_arrays_level: false,
        }
    }
}

/// A generated verification condition.
#[derive(Debug, Clone)]
pub struct Vc {
    /// Which implementation this VC belongs to (provenance for caching
    /// and event logs).
    pub impl_id: ImplId,
    /// Name of the implemented procedure.
    pub proc_name: String,
    /// `UBP ∧ BP_D ∧ Init(m)`, as separate hypotheses.
    pub hypotheses: Vec<Formula>,
    /// How many leading entries of `hypotheses` are scope-level background
    /// axioms (`UBP ∧ BP_D`, plus the closed-world axioms in naive mode);
    /// the rest are the per-implementation `Init(m)` facts. This is the
    /// "axiom set for its scope" component of a VC's content address.
    pub background_hyps: usize,
    /// `wlp_{w,$0}(C, true)`.
    pub goal: Formula,
    /// The position labels embedded in `goal`, indexed by label id.
    pub labels: Vec<ObligationLabel>,
}

impl Vc {
    /// Looks up a label by its id.
    pub fn label(&self, id: u32) -> Option<&ObligationLabel> {
        self.labels.iter().find(|l| l.id == id)
    }

    /// Tally of labeled obligation conjuncts per kind, in the fixed
    /// [`ObligationKind::ALL`] order, zero-count kinds omitted.
    pub fn kind_counts(&self) -> Vec<(ObligationKind, u32)> {
        ObligationKind::ALL
            .iter()
            .filter_map(|&kind| {
                let n = self.labels.iter().filter(|l| l.kind == kind).count() as u32;
                (n > 0).then_some((kind, n))
            })
            .collect()
    }
}

impl Vc {
    /// Total formula size (hypotheses plus goal), for statistics. Labels
    /// are transparent to [`Formula::size`], so this matches the
    /// unlabelled VC.
    pub fn size(&self) -> usize {
        self.hypotheses.iter().map(Formula::size).sum::<usize>() + self.goal.size()
    }
}

/// Verification-condition generator for one scope.
#[derive(Debug)]
pub struct VcGen<'s> {
    scope: &'s Scope,
    options: VcOptions,
    fresh: FreshGen,
    /// Whether the scope is at the *arrays* language level (declares
    /// `maps elem` clauses or uses index syntax): selects the extended
    /// axiom (4), the slot axioms, and the elementwise owner-exclusion
    /// clauses.
    arrays: bool,
    /// Position labels allocated while generating the current VC's goal;
    /// drained into [`Vc::labels`] by [`VcGen::vc_for_impl`].
    labels: Vec<ObligationLabel>,
    /// The current implementation's declared read frame, when its
    /// procedure carries a `reads` clause: every heap `select` the body
    /// performs is licensed against it. `None` leaves reads unconstrained
    /// (a declaration without the clause, or `wlp` used standalone).
    reads: Option<ModList>,
}

impl<'s> VcGen<'s> {
    /// Creates a generator over `scope`.
    pub fn new(scope: &'s Scope, options: VcOptions) -> Self {
        let arrays = options.force_arrays_level || scope_uses_arrays(scope);
        VcGen {
            scope,
            options,
            fresh: FreshGen::new(),
            arrays,
            labels: Vec::new(),
            reads: None,
        }
    }

    /// Wraps an obligation conjunct in a fresh position label and records
    /// the label's source metadata. Constant formulas pass through
    /// unlabelled (there is nothing to report about them).
    fn label(
        &mut self,
        kind: ObligationKind,
        span: Span,
        detail: impl Into<String>,
        f: Formula,
    ) -> Formula {
        // A statically-false obligation (e.g. `assert false`) still needs
        // a label to be blamed; represent it as an inert contradiction
        // *literal* — a bare `False` would dissolve during NNF conversion
        // before the prover could stamp the branch.
        let f = if matches!(f, Formula::False) {
            Formula::eq(Term::int(0), Term::int(1))
        } else {
            f
        };
        match Formula::labeled(self.labels.len() as u32, f) {
            Formula::Labeled(id, body) => {
                self.labels.push(ObligationLabel {
                    id,
                    kind,
                    span,
                    detail: detail.into(),
                });
                Formula::Labeled(id, body)
            }
            other => other,
        }
    }

    /// One declared invariant as a closed formula over `store`:
    ///
    /// ```text
    /// ∀o :: alive(store, o) ∧ o ≠ null ⇒ tr(E)[this := o]
    /// ```
    ///
    /// In hypothesis position the quantifier triggers on the aliveness
    /// atom; in goal position it is skolemized away, so no trigger is
    /// declared. Well-definedness side conditions of the body are elided,
    /// matching the paper's treatment of dereferences.
    fn invariant_clause(
        &mut self,
        expr: &Expr,
        store: &Term,
        hypothesis: bool,
    ) -> Result<Formula, Diagnostic> {
        let tr = tr_formula(expr, store)?;
        let o = self.fresh.fresh("invO");
        let body = tr.formula.subst(&[("this".into(), Term::var(o))]);
        let alive = Atom::Alive(*store, Term::var(o));
        let triggers = if hypothesis {
            vec![Trigger(vec![Pattern::Atom(alive)])]
        } else {
            Vec::new()
        };
        Ok(Formula::forall(
            vec![o],
            triggers,
            Formula::implies(
                Formula::and(vec![
                    Formula::Atom(alive),
                    Formula::neq(Term::var(o), Term::null()),
                ]),
                body,
            ),
        ))
    }

    /// Read-frame licenses for every heap `select` the expressions
    /// perform, against the current implementation's declared `reads`
    /// frame. Empty when the procedure declares no frame.
    fn read_licenses(&mut self, exprs: &[&Expr]) -> Vec<Formula> {
        let Some(reads) = self.reads.clone() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for expr in exprs {
            for read in crate::translate::heap_reads(expr, &Term::store()) {
                out.push(self.label(
                    ObligationKind::ReadsViolation,
                    read.span,
                    format!("read of `{}` not covered by reads clause", read.desc),
                    reads.modifiable(&read.obj, &read.attr, &Term::store0()),
                ));
            }
        }
        out
    }

    /// Generates the verification condition for one implementation.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] if the body uses an expression form the
    /// translation does not support (a boolean operator in value
    /// position).
    pub fn vc_for_impl(&mut self, impl_id: ImplId) -> Result<Vc, Diagnostic> {
        let info = self.scope.impl_info(impl_id);
        let proc = self.scope.proc_info(info.proc);
        let params: Vec<Term> = proc.params.iter().map(Term::var).collect();
        let w = ModList::new(self.scope, &proc.modifies, &params);
        self.reads = proc
            .reads
            .as_ref()
            .map(|r| ModList::new(self.scope, r, &params));

        // The scope-level background (universal, scope-dependent, and — for
        // the naive baseline — the unsound closed-world additions), via the
        // named builder so axiom names align with hypothesis indices.
        let mut hypotheses: Vec<Formula> = crate::background::named_background(
            self.scope,
            self.options.restrictions,
            self.arrays,
            &mut self.fresh,
        )
        .into_iter()
        .map(|(_, f)| f)
        .collect();
        let background_hyps = hypotheses.len();
        // Init(m): $ = $0, plus ownExcl and alive for each formal (5).
        hypotheses.push(Formula::eq(Term::store(), Term::store0()));
        // Fieldwise reflexivity, pre-derived: every modifies entry's own
        // location includes itself (axiom (4) local case + reflexive ⊒).
        // Saves one matching generation on every license obligation.
        for entry in w.entries() {
            let (obj, attr) = entry.location(&Term::store0());
            hypotheses.push(Formula::Atom(Atom::Inc {
                store: Term::store0(),
                obj,
                attr,
                obj2: obj,
                attr2: attr,
            }));
        }
        for p in &params {
            if self.options.restrictions {
                hypotheses.push(w.own_excl_leveled(
                    p,
                    &Term::store0(),
                    self.arrays,
                    &mut self.fresh,
                ));
            }
            hypotheses.push(Formula::Atom(Atom::Alive(Term::store0(), *p)));
        }
        // Declared object invariants hold on entry: assumed at $0 for every
        // alive object, triggered by the aliveness atom.
        let scope = self.scope;
        for inv in scope.invariants() {
            let clause = self.invariant_clause(&inv.expr, &Term::store0(), true)?;
            hypotheses.push(clause);
        }

        let body = info.body.desugared();
        self.labels.clear();
        // Exit obligation: every invariant holds again in the final store.
        let mut post = Vec::new();
        for inv in scope.invariants() {
            let clause = self.invariant_clause(&inv.expr, &Term::store(), false)?;
            post.push(self.label(
                ObligationKind::InvariantPreserved,
                inv.span,
                "object invariant may not be preserved at procedure exit",
                clause,
            ));
        }
        let goal = self.wlp(&body, Formula::and(post), &w)?;
        Ok(Vc {
            impl_id,
            proc_name: proc.name.clone(),
            hypotheses,
            background_hyps,
            goal,
            labels: std::mem::take(&mut self.labels),
        })
    }

    /// The weakest liberal precondition `wlp_{w,$0}(cmd, q)` (Figure 2).
    pub fn wlp(&mut self, cmd: &Cmd, q: Formula, w: &ModList) -> Result<Formula, Diagnostic> {
        match cmd {
            Cmd::Assert(e, span) => {
                let tr = tr_formula(e, &Term::store())?;
                let reads = self.read_licenses(&[e]);
                let condition = self.label(
                    ObligationKind::Assert,
                    *span,
                    "assert condition may not hold",
                    tr.formula,
                );
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(tr.defined))
                        .chain([condition, q])
                        .collect(),
                ))
            }
            Cmd::Assume(e, _) => {
                let tr = tr_formula(e, &Term::store())?;
                let reads = self.read_licenses(&[e]);
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(tr.defined))
                        .chain([Formula::implies(tr.formula, q)])
                        .collect(),
                ))
            }
            Cmd::Var(x, body, _) => {
                let inner = self.wlp(body, q, w)?;
                Ok(Formula::forall(vec![x.text.as_str().into()], vec![], inner))
            }
            Cmd::Seq(c0, c1) => {
                let q1 = self.wlp(c1, q, w)?;
                self.wlp(c0, q1, w)
            }
            Cmd::Choice(c0, c1) => {
                let w0 = self.wlp(c0, q.clone(), w)?;
                let w1 = self.wlp(c1, q, w)?;
                Ok(Formula::and(vec![w0, w1]))
            }
            Cmd::Assign { lhs, rhs, span } => self.wlp_assign(lhs, rhs, q, w, *span),
            Cmd::AssignNew { lhs, span } => self.wlp_assign_new(lhs, q, w, *span),
            Cmd::Call { proc, args, span } => self.wlp_call(proc, args, q, w, *span),
            Cmd::Skip(_) | Cmd::If { .. } => {
                unreachable!("wlp is applied to desugared commands only")
            }
        }
    }

    fn defined(&self, conditions: Vec<Formula>) -> impl Iterator<Item = Formula> {
        let keep = self.options.null_checks;
        conditions.into_iter().filter(move |_| keep)
    }

    fn wlp_assign(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        q: Formula,
        w: &ModList,
        span: Span,
    ) -> Result<Formula, Diagnostic> {
        let r = tr_value(rhs, &Term::store())?;
        match lhs {
            // x := E  —  Q[x := tr(E)].
            Expr::Id(x) => {
                let reads = self.read_licenses(&[rhs]);
                let subst = q.subst(&[(x.text.as_str().into(), r.term)]);
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(r.defined))
                        .chain([subst])
                        .collect(),
                ))
            }
            // E0.f := E1 — mod(tr(E0)·f, w, $0) ∧ Q[$ := $(tr(E0)·f := tr(E1))].
            Expr::Select { base, attr, .. } => {
                let b = tr_value(base, &Term::store())?;
                let attr_term = Term::attr(attr.text.clone());
                let reads = self.read_licenses(&[base, rhs]);
                let license = self.label(
                    ObligationKind::ModifiesViolation,
                    span,
                    format!(
                        "write to field `{}` not covered by modifies list",
                        attr.text
                    ),
                    w.modifiable(&b.term, &attr_term, &Term::store0()),
                );
                let updated = Term::update(Term::store(), b.term, attr_term, r.term);
                let subst = q.subst(&[(oolong_logic::STORE.into(), updated)]);
                let defined: Vec<Formula> = b.defined.into_iter().chain(r.defined).collect();
                let mut defined_with_target = defined;
                defined_with_target.push(Formula::neq(b.term, Term::null()));
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(defined_with_target))
                        .chain([license, subst])
                        .collect(),
                ))
            }
            // E0[I] := E1 — the slot analogue: mod(tr(E0)·tr(I), w, $0).
            Expr::Index { base, index, .. } => {
                let b = tr_value(base, &Term::store())?;
                let idx = tr_value(index, &Term::store())?;
                let reads = self.read_licenses(&[base, index, rhs]);
                let license = self.label(
                    ObligationKind::ModifiesViolation,
                    span,
                    "slot write not covered by modifies list",
                    w.modifiable(&b.term, &idx.term, &Term::store0()),
                );
                let updated = Term::update(Term::store(), b.term, idx.term, r.term);
                let subst = q.subst(&[(oolong_logic::STORE.into(), updated)]);
                let mut defined: Vec<Formula> = b
                    .defined
                    .into_iter()
                    .chain(idx.defined)
                    .chain(r.defined)
                    .collect();
                defined.push(Formula::neq(b.term, Term::null()));
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(defined))
                        .chain([license, subst])
                        .collect(),
                ))
            }
            other => Err(Diagnostic::error(
                "assignment target must be a variable or designator",
                other.span(),
            ))
            .map_err(|d: Diagnostic| d.with_note("while generating wlp", span)),
        }
    }

    fn wlp_assign_new(
        &mut self,
        lhs: &Expr,
        q: Formula,
        w: &ModList,
        span: Span,
    ) -> Result<Formula, Diagnostic> {
        match lhs {
            // x := new()  —  Q[x := new($), $ := $⁺] (parallel).
            Expr::Id(x) => Ok(q.subst(&[
                (x.text.as_str().into(), Term::new_obj(Term::store())),
                (oolong_logic::STORE.into(), Term::succ(Term::store())),
            ])),
            // E.f := new() — mod(tr(E)·f, w, $0) ∧ Q[$ := $⁺(tr(E)·f := new($))].
            Expr::Select { base, attr, .. } => {
                let b = tr_value(base, &Term::store())?;
                let attr_term = Term::attr(attr.text.clone());
                let reads = self.read_licenses(&[base]);
                let license = self.label(
                    ObligationKind::ModifiesViolation,
                    span,
                    format!(
                        "allocation into field `{}` not covered by modifies list",
                        attr.text
                    ),
                    w.modifiable(&b.term, &attr_term, &Term::store0()),
                );
                let updated = Term::update(
                    Term::succ(Term::store()),
                    b.term,
                    attr_term,
                    Term::new_obj(Term::store()),
                );
                let subst = q.subst(&[(oolong_logic::STORE.into(), updated)]);
                let mut defined = b.defined;
                defined.push(Formula::neq(b.term, Term::null()));
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(defined))
                        .chain([license, subst])
                        .collect(),
                ))
            }
            // E[I] := new() — the slot analogue.
            Expr::Index { base, index, .. } => {
                let b = tr_value(base, &Term::store())?;
                let idx = tr_value(index, &Term::store())?;
                let reads = self.read_licenses(&[base, index]);
                let license = self.label(
                    ObligationKind::ModifiesViolation,
                    span,
                    "allocation into slot not covered by modifies list",
                    w.modifiable(&b.term, &idx.term, &Term::store0()),
                );
                let updated = Term::update(
                    Term::succ(Term::store()),
                    b.term,
                    idx.term,
                    Term::new_obj(Term::store()),
                );
                let subst = q.subst(&[(oolong_logic::STORE.into(), updated)]);
                let mut defined: Vec<Formula> = b.defined.into_iter().chain(idx.defined).collect();
                defined.push(Formula::neq(b.term, Term::null()));
                Ok(Formula::and(
                    reads
                        .into_iter()
                        .chain(self.defined(defined))
                        .chain([license, subst])
                        .collect(),
                ))
            }
            other => Err(Diagnostic::error(
                "allocation target must be a variable or designator",
                other.span(),
            ))
            .map_err(|d: Diagnostic| d.with_note("while generating wlp", span)),
        }
    }

    /// The method-call rule (Figure 3).
    fn wlp_call(
        &mut self,
        proc: &oolong_syntax::Ident,
        args: &[Expr],
        q: Formula,
        w: &ModList,
        span: Span,
    ) -> Result<Formula, Diagnostic> {
        let Some(callee_id) = self.scope.proc(&proc.text) else {
            return Err(Diagnostic::error(
                format!("call to undeclared procedure `{}`", proc.text),
                span,
            ));
        };
        let callee = self.scope.proc_info(callee_id).clone();
        // Caller's read frame licenses the evaluation of the actuals.
        let arg_reads = self.read_licenses(&args.iter().collect::<Vec<_>>());

        // Fresh sᵢ bound to the actuals.
        let si: Vec<Symbol> = callee
            .params
            .iter()
            .map(|p| self.fresh.fresh(&format!("s_{p}")))
            .collect();
        let si_terms: Vec<Term> = si.iter().copied().map(Term::var).collect();
        let mut equalities = Vec::new();
        let mut defined = Vec::new();
        for (s, arg) in si_terms.iter().zip(args.iter()) {
            let a = tr_value(arg, &Term::store())?;
            defined.extend(a.defined);
            equalities.push(Formula::eq(*s, a.term));
        }
        // ws: the callee's modifies list with formals replaced by sᵢ.
        let ws = ModList::new(self.scope, &callee.modifies, &si_terms);

        // Caller's license covers every callee target (evaluated in the
        // current store, against w evaluated in $0).
        let mut obligations = Vec::new();
        for (target, entry) in callee.modifies.iter().zip(ws.entries()) {
            let (obj, attr) = entry.location(&Term::store());
            let license = self.label(
                ObligationKind::ModifiesViolation,
                span,
                format!(
                    "call to `{}` requires license for its modifies entry `{}`",
                    proc.text,
                    entry_desc(&callee.params, target, entry),
                ),
                w.modifiable(&obj, &attr, &Term::store0()),
            );
            obligations.push(license);
        }
        // Caller's read frame covers every *declared* callee reads entry.
        // A callee without a `reads` clause is unconstrained and imposes
        // nothing here (see DESIGN.md: declaring a frame on the caller
        // only pays off once its callees declare theirs).
        if let (Some(reads), Some(callee_reads)) = (self.reads.clone(), callee.reads.as_ref()) {
            let rs = ModList::new(self.scope, callee_reads, &si_terms);
            for (target, entry) in callee_reads.iter().zip(rs.entries()) {
                let (obj, attr) = entry.location(&Term::store());
                let license = self.label(
                    ObligationKind::ReadsViolation,
                    span,
                    format!(
                        "call to `{}` requires read license for its reads entry `{}`",
                        proc.text,
                        entry_desc(&callee.params, target, entry),
                    ),
                    reads.modifiable(&obj, &attr, &Term::store0()),
                );
                obligations.push(license);
            }
        }
        // Every declared invariant holds when control transfers to the
        // callee (the callee assumes it on entry, as this VC did at $0).
        let scope = self.scope;
        for inv in scope.invariants() {
            let clause = self.invariant_clause(&inv.expr, &Term::store(), false)?;
            obligations.push(self.label(
                ObligationKind::InvariantPreserved,
                span,
                format!(
                    "call to `{}` may observe a broken object invariant",
                    proc.text
                ),
                clause,
            ));
        }
        // Owner exclusion for every parameter value.
        if self.options.restrictions {
            for (i, s) in si_terms.iter().enumerate() {
                let own_excl = ws.own_excl_leveled(s, &Term::store(), self.arrays, &mut self.fresh);
                obligations.push(self.label(
                    ObligationKind::OwnerExclusion,
                    span,
                    format!(
                        "argument `{}` of call to `{}` may be an owned pivot value",
                        callee.params.get(i).map(String::as_str).unwrap_or("?"),
                        proc.text,
                    ),
                    own_excl,
                ));
            }
        }

        // Frame: ∀$' :: alive-monotone ∧ per-location change license ⇒ Q[$ := $'].
        let post_store = self.fresh.fresh("post");
        let post = Term::var(post_store);
        let frame = {
            let xv = self.fresh.fresh("frX");
            let alive_pre = Atom::Alive(Term::store(), Term::var(xv));
            let alive_post = Atom::Alive(post, Term::var(xv));
            let alive_mono = Formula::forall(
                vec![xv],
                vec![
                    Trigger(vec![Pattern::Atom(alive_pre)]),
                    Trigger(vec![Pattern::Atom(alive_post)]),
                ],
                Formula::implies(Formula::Atom(alive_pre), Formula::Atom(alive_post)),
            );
            let xv2 = self.fresh.fresh("frX");
            let fv = self.fresh.fresh("frF");
            let pre_read = Term::select(Term::store(), Term::var(xv2), Term::var(fv));
            let post_read = Term::select(post, Term::var(xv2), Term::var(fv));
            let change_licensed = Formula::forall(
                vec![xv2, fv],
                vec![
                    Trigger(vec![Pattern::Term(pre_read)]),
                    Trigger(vec![Pattern::Term(post_read)]),
                ],
                Formula::or(vec![
                    Formula::eq(pre_read, post_read),
                    ws.modifiable(&Term::var(xv2), &Term::var(fv), &Term::store()),
                ]),
            );
            let q_post = q.subst(&[(oolong_logic::STORE.into(), post)]);
            // The callee preserved every declared invariant: assume them
            // in the post store (mirroring the exit obligation its own VC
            // carries).
            let mut antecedent = vec![alive_mono, change_licensed];
            for inv in scope.invariants() {
                antecedent.push(self.invariant_clause(&inv.expr, &post, true)?);
            }
            Formula::forall(
                vec![post_store],
                vec![],
                Formula::implies(Formula::and(antecedent), q_post),
            )
        };

        let body = Formula::implies(
            Formula::and(equalities),
            Formula::and(obligations.into_iter().chain([frame]).collect()),
        );
        Ok(Formula::and(
            arg_reads
                .into_iter()
                .chain(self.defined(defined))
                .chain([Formula::forall(si, vec![], body)])
                .collect(),
        ))
    }
}

/// Renders a callee's modifies entry as written (`param.path`), for label
/// details at call sites.
fn entry_desc(params: &[String], target: &oolong_sema::ModTarget, entry: &ModEntry) -> String {
    let root = params.get(target.param).map(String::as_str).unwrap_or("?");
    format!("{root}.{}", entry.path.join("."))
}

/// Whether the scope opts into the arrays language level: it declares an
/// elementwise rep inclusion or some implementation uses index syntax.
pub(crate) fn scope_uses_arrays(scope: &Scope) -> bool {
    if !scope.rep_elem_triples().is_empty() {
        return true;
    }
    scope.impls().any(|(_, info)| {
        let mut found = false;
        info.body.walk(&mut |c| {
            let mut check = |e: &oolong_syntax::Expr| {
                e.walk(&mut |sub| {
                    if matches!(sub, oolong_syntax::Expr::Index { .. }) {
                        found = true;
                    }
                })
            };
            match c {
                Cmd::Assert(e, _) | Cmd::Assume(e, _) => check(e),
                Cmd::Assign { lhs, rhs, .. } => {
                    check(lhs);
                    check(rhs);
                }
                Cmd::AssignNew { lhs, .. } => check(lhs),
                Cmd::Call { args, .. } => args.iter().for_each(&mut check),
                Cmd::If { cond, .. } => check(cond),
                _ => {}
            }
        });
        found
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_prover::{prove, Budget, Outcome};
    use oolong_sema::Scope;
    use oolong_syntax::parse_program;

    fn check_src(src: &str, proc_name: &str) -> Outcome {
        check_src_with(src, proc_name, VcOptions::default(), &Budget::default())
    }

    fn check_src_with(src: &str, proc_name: &str, opts: VcOptions, budget: &Budget) -> Outcome {
        let program = parse_program(src).expect("parses");
        let scope = Scope::analyze(&program).expect("analyses");
        let mut gen = VcGen::new(&scope, opts);
        let (impl_id, _) = scope
            .impls()
            .find(|(_, i)| scope.proc_info(i.proc).name == proc_name)
            .expect("impl exists");
        let vc = gen.vc_for_impl(impl_id).expect("vc generates");
        prove(&vc.hypotheses, &vc.goal, budget).outcome
    }

    #[test]
    fn trivial_impl_verifies() {
        assert_eq!(
            check_src("proc p(t) impl p(t) { skip }", "p"),
            Outcome::Proved
        );
    }

    #[test]
    fn assert_true_verifies_and_assert_false_fails() {
        assert_eq!(
            check_src("proc p(t) impl p(t) { assert true }", "p"),
            Outcome::Proved
        );
        assert_eq!(
            check_src("proc p(t) impl p(t) { assert false }", "p"),
            Outcome::NotProved
        );
    }

    #[test]
    fn assume_false_blocks_everything() {
        assert_eq!(
            check_src("proc p(t) impl p(t) { assume false ; assert false }", "p"),
            Outcome::Proved
        );
    }

    #[test]
    fn local_assignment_tracks_values() {
        assert_eq!(
            check_src(
                "proc p(t) impl p(t) { var x in x := 3 ; assert x = 3 end }",
                "p"
            ),
            Outcome::Proved
        );
        assert_eq!(
            check_src(
                "proc p(t) impl p(t) { var x in x := 3 ; assert x = 4 end }",
                "p"
            ),
            Outcome::NotProved
        );
    }

    #[test]
    fn field_update_requires_license() {
        // p has no modifies list: writing t.f is rejected.
        assert_eq!(
            check_src("field f proc p(t) impl p(t) { t.f := 3 }", "p"),
            Outcome::NotProved
        );
        // With the license, it verifies.
        assert_eq!(
            check_src("field f proc p(t) modifies t.f impl p(t) { t.f := 3 }", "p"),
            Outcome::Proved
        );
    }

    #[test]
    fn group_license_covers_member_field() {
        assert_eq!(
            check_src(
                "group g field f in g proc p(t) modifies t.g impl p(t) { t.f := 3 }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn license_does_not_leak_to_other_objects() {
        // modifies t.f gives no license on u.f (u a different parameter).
        assert_eq!(
            check_src(
                "field f proc p(t, u) modifies t.f impl p(t, u) { u.f := 3 }",
                "p"
            ),
            Outcome::NotProved
        );
    }

    #[test]
    fn fresh_objects_are_freely_modifiable() {
        assert_eq!(
            check_src(
                "field f proc p(t) impl p(t) { var x in x := new() ; x.f := 3 end }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn field_read_after_write() {
        assert_eq!(
            check_src(
                "field f proc p(t) modifies t.f
                 impl p(t) { t.f := 3 ; assert t.f = 3 }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn choice_requires_both_arms() {
        assert_eq!(
            check_src(
                "proc p(t) impl p(t) { var x in { x := 1 [] x := 2 } ; assert x = 1 end }",
                "p"
            ),
            Outcome::NotProved
        );
        assert_eq!(
            check_src(
                "proc p(t) impl p(t) { var x in { x := 1 [] x := 1 } ; assert x = 1 end }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn if_sugar_flows_conditions() {
        assert_eq!(
            check_src(
                "proc p(t) impl p(t) {
                   var x in
                     if t = null then x := 1 else x := 2 end ;
                     assert x = 1 || x = 2
                   end
                 }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn call_requires_callers_license() {
        // callee modifies u.f; caller q has no license at all.
        assert_eq!(
            check_src(
                "field f proc callee(u) modifies u.f
                 proc q(t) impl q(t) { callee(t) }",
                "q"
            ),
            Outcome::NotProved
        );
        // With a covering license it verifies.
        assert_eq!(
            check_src(
                "field f proc callee(u) modifies u.f
                 proc q(t) modifies t.f impl q(t) { callee(t) }",
                "q"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn call_frame_preserves_unrelated_fields() {
        // callee may change t.f but not t.other.
        assert_eq!(
            check_src(
                "field f field other proc callee(u) modifies u.f
                 proc q(t) modifies t.f
                 impl q(t) { var n in n := t.other ; callee(t) ; assert n = t.other end }",
                "q"
            ),
            Outcome::Proved
        );
        // The modified field itself is not preserved.
        assert_eq!(
            check_src(
                "field f proc callee(u) modifies u.f
                 proc q(t) modifies t.f
                 impl q(t) { var n in n := t.f ; callee(t) ; assert n = t.f end }",
                "q"
            ),
            Outcome::NotProved
        );
    }

    #[test]
    fn null_checks_flag_rejects_unguarded_deref() {
        let src = "field f proc p(t) impl p(t) { var x in x := t.f end }";
        assert_eq!(
            check_src_with(
                src,
                "p",
                VcOptions {
                    null_checks: true,
                    ..VcOptions::default()
                },
                &Budget::default()
            ),
            Outcome::NotProved
        );
        // Guarded by an assumption, it verifies.
        let guarded = "field f proc p(t) impl p(t) { assume t != null ; var x in x := t.f end }";
        assert_eq!(
            check_src_with(
                guarded,
                "p",
                VcOptions {
                    null_checks: true,
                    ..VcOptions::default()
                },
                &Budget::default()
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn slot_write_requires_elem_license() {
        // Writing a slot of a fresh array is fine without any license.
        assert_eq!(
            check_src(
                "group g
                 field arr in g maps elem g into g
                 proc p(t)
                 impl p(t) { var a in a := new() ; a[0] := null end }",
                "p"
            ),
            Outcome::Proved
        );
        // Writing a slot of an elem-licensed array verifies.
        assert_eq!(
            check_src(
                "group g
                 field arr in g maps elem g into g
                 proc p(t) modifies t.g
                 impl p(t) { assume t != null && t.arr != null ; t.arr[0] := null }",
                "p"
            ),
            Outcome::Proved
        );
        // Without the license it is rejected.
        assert_ne!(
            check_src(
                "group g
                 field arr in g maps elem g into g
                 proc p(t)
                 impl p(t) { assume t != null && t.arr != null ; t.arr[0] := null }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn reads_clause_licenses_dereferences() {
        // Reading t.f with `reads t.g` (f in g) verifies.
        assert_eq!(
            check_src(
                "group g field f in g proc p(t) reads t.g
                 impl p(t) { var x in x := t.f end }",
                "p"
            ),
            Outcome::Proved
        );
        // Reflexive frame: reading exactly the declared field.
        assert_eq!(
            check_src(
                "field f proc p(t) reads t.f
                 impl p(t) { var x in x := t.f end }",
                "p"
            ),
            Outcome::Proved
        );
        // An undeclared read is rejected.
        assert_eq!(
            check_src(
                "field f field h proc p(t) reads t.f
                 impl p(t) { var x in x := t.h end }",
                "p"
            ),
            Outcome::NotProved
        );
        // No clause at all leaves reads unconstrained.
        assert_eq!(
            check_src("field f proc p(t) impl p(t) { var x in x := t.f end }", "p"),
            Outcome::Proved
        );
    }

    #[test]
    fn reads_frame_does_not_leak_to_other_objects() {
        assert_eq!(
            check_src(
                "field f proc p(t, u) reads t.f
                 impl p(t, u) { var x in x := u.f end }",
                "p"
            ),
            Outcome::NotProved
        );
    }

    #[test]
    fn call_requires_callers_read_license() {
        // callee reads u.f; caller's frame does not cover it.
        assert_eq!(
            check_src(
                "field f field h proc callee(u) reads u.f
                 proc q(t) reads t.h impl q(t) { callee(t) }",
                "q"
            ),
            Outcome::NotProved
        );
        // A covering frame verifies.
        assert_eq!(
            check_src(
                "field f proc callee(u) reads u.f
                 proc q(t) reads t.f impl q(t) { callee(t) }",
                "q"
            ),
            Outcome::Proved
        );
        // A caller without a reads clause is unconstrained.
        assert_eq!(
            check_src(
                "field f proc callee(u) reads u.f
                 proc q(t) impl q(t) { callee(t) }",
                "q"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn invariant_preserved_at_exit() {
        // Writing a value that re-establishes the invariant verifies.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc p(t) modifies t.g impl p(t) { t.f := 0 }",
                "p"
            ),
            Outcome::Proved
        );
        // Writing a violating value is rejected.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc p(t) modifies t.g impl p(t) { t.f := 1 }",
                "p"
            ),
            Outcome::NotProved
        );
        // A body that never touches invariant state preserves it.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc p(t) impl p(t) { skip }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn invariant_checked_at_call_boundary() {
        // The invariant is broken when control transfers to the callee.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc callee(u)
                 proc p(t) modifies t.g
                 impl p(t) { t.f := 1 ; callee(t) ; t.f := 0 }",
                "p"
            ),
            Outcome::NotProved
        );
        // Restoring it before the call verifies.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc callee(u)
                 proc p(t) modifies t.g
                 impl p(t) { t.f := 1 ; t.f := 0 ; callee(t) }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn invariant_assumed_after_call() {
        // After the call the invariant may be assumed again: the assert
        // cannot be discharged by the frame (t.g is modifiable) but
        // follows from the callee's preservation obligation.
        assert_eq!(
            check_src(
                "group g field f in g invariant this.f = 0
                 proc callee(u) modifies u.g
                 proc p(t) modifies t.g
                 impl p(t) { assume t != null ; callee(t) ; assert t.f = 0 }",
                "p"
            ),
            Outcome::Proved
        );
    }

    #[test]
    fn vc_seeds_reflexive_inclusions() {
        let program = parse_program("group g proc p(t) modifies t.g impl p(t) { skip }").unwrap();
        let scope = Scope::analyze(&program).unwrap();
        let mut gen = VcGen::new(&scope, VcOptions::default());
        let (impl_id, _) = scope.impls().next().unwrap();
        let vc = gen.vc_for_impl(impl_id).unwrap();
        let reflexive = Formula::Atom(Atom::Inc {
            store: Term::store0(),
            obj: Term::var("t"),
            attr: Term::attr("g"),
            obj2: Term::var("t"),
            attr2: Term::attr("g"),
        });
        assert!(vc.hypotheses.contains(&reflexive));
    }

    #[test]
    fn vc_size_is_positive() {
        let program = parse_program("proc p(t) impl p(t) { skip }").unwrap();
        let scope = Scope::analyze(&program).unwrap();
        let mut gen = VcGen::new(&scope, VcOptions::default());
        let (impl_id, _) = scope.impls().next().unwrap();
        let vc = gen.vc_for_impl(impl_id).unwrap();
        assert!(vc.size() > 10);
        assert_eq!(vc.proc_name, "p");
    }
}
