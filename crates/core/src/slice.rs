//! Axiom relevance slicing: pruning background axioms that can never fire
//! against a given obligation.
//!
//! Every background axiom the checker asserts is a top-level universal
//! with declared trigger patterns (Boogie's `PATS`/`MPAT` discipline). The
//! prover only ever instantiates such an axiom when **every** pattern of
//! one of its triggers matches E-graph terms — and E-graph terms only
//! arise from the vocabulary of the formulas actually asserted: source
//! atoms and their subterms, instantiation substitutions (whose terms are
//! reconstructed from existing nodes), skolem functions (whose names
//! contain `!` and cannot appear in declared patterns), definitional
//! `@class` aliases, and interpreted constants. So an axiom whose every
//! trigger mentions a *declared* symbol — an attribute constant, an
//! uninterpreted function, a free constant, or a predicate head — that is
//! unreachable from the obligation's vocabulary closure can never match,
//! never instantiate, and never defer: dropping it provably changes
//! nothing about the proof search (outcome, labels, divergence reason, or
//! any budget-metered counter).
//!
//! The closure is a fixpoint: the obligation's own hypotheses and goal
//! seed the vocabulary; every *kept* axiom contributes its vocabulary
//! (minus its bound variables) because firing it can introduce those
//! symbols; an axiom is kept when some trigger's patterns all draw only on
//! the closure. Axioms that are not top-level triggered universals (ground
//! background facts, and any future untriggered axiom) are always kept and
//! always contribute — slicing only ever *over*-approximates relevance.

use oolong_logic::{Atom, Cst, Formula, Pattern, Symbol, Term, TermNode};
use std::collections::HashSet;

/// One vocabulary token of the reachability closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tok {
    /// A free constant (an unbound `Term::var`).
    Var(Symbol),
    /// An attribute-name constant (`Cst::Attr`).
    Attr(Symbol),
    /// An uninterpreted function symbol.
    Fn(Symbol),
    /// A predicate head. Equality and the interpreted function symbols
    /// (select/update/new/succ/arithmetic) are deliberately *not* tokens:
    /// they are ubiquitous, so treating them as always-reachable keeps the
    /// closure sound without tracking them.
    Pred(Pred),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pred {
    Alive,
    LocalInc,
    RepInc,
    RepIncElem,
    Inc,
    Lt,
    Le,
    IsObj,
    IsInt,
}

fn term_tokens(term: &Term, bound: &[Symbol], out: &mut HashSet<Tok>) {
    match term.node() {
        TermNode::Var(v) => {
            if !bound.contains(v) {
                out.insert(Tok::Var(*v));
            }
        }
        TermNode::Const(c) => {
            if let Cst::Attr(a) = c {
                out.insert(Tok::Attr(*a));
            }
        }
        TermNode::App(f, args) => {
            if let oolong_logic::FnSym::Uninterp(name) = f {
                out.insert(Tok::Fn(*name));
            }
            for arg in args {
                term_tokens(arg, bound, out);
            }
        }
    }
}

fn atom_tokens(atom: &Atom, bound: &[Symbol], out: &mut HashSet<Tok>) {
    let pred = match atom {
        Atom::Eq(..) | Atom::BoolTerm(_) => None,
        Atom::Alive(..) => Some(Pred::Alive),
        Atom::LocalInc(..) => Some(Pred::LocalInc),
        Atom::RepInc { .. } => Some(Pred::RepInc),
        Atom::RepIncElem { .. } => Some(Pred::RepIncElem),
        Atom::Inc { .. } => Some(Pred::Inc),
        Atom::Lt(..) => Some(Pred::Lt),
        Atom::Le(..) => Some(Pred::Le),
        Atom::IsObj(..) => Some(Pred::IsObj),
        Atom::IsInt(..) => Some(Pred::IsInt),
    };
    if let Some(p) = pred {
        out.insert(Tok::Pred(p));
    }
    atom.for_each_term(&mut |t| term_tokens(t, bound, out));
}

fn pattern_tokens(pattern: &Pattern, bound: &[Symbol], out: &mut HashSet<Tok>) {
    match pattern {
        Pattern::Term(t) => {
            term_tokens(t, bound, out);
            // A bare uninterpreted application's head is its match symbol;
            // term_tokens already records it. Nothing extra to do.
        }
        Pattern::Atom(a) => atom_tokens(a, bound, out),
    }
}

/// Collects every token of `f` that is visible from outside: free
/// constants, attribute constants, uninterpreted functions, and predicate
/// heads, excluding variables bound by any enclosing or inner quantifier.
fn formula_tokens(f: &Formula, bound: &mut Vec<Symbol>, out: &mut HashSet<Tok>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(a) => atom_tokens(a, bound, out),
        Formula::Not(inner) | Formula::Labeled(_, inner) => formula_tokens(inner, bound, out),
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                formula_tokens(p, bound, out);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            formula_tokens(a, bound, out);
            formula_tokens(b, bound, out);
        }
        Formula::Forall(vars, triggers, body) | Formula::Exists(vars, triggers, body) => {
            let len = bound.len();
            bound.extend(vars.iter().copied());
            for trigger in triggers {
                for pattern in &trigger.0 {
                    pattern_tokens(pattern, bound, out);
                }
            }
            formula_tokens(body, bound, out);
            bound.truncate(len);
        }
    }
}

/// Whether relevance slicing may drop this axiom at all: only a top-level
/// universal with declared (non-empty) triggers has the "fires only when a
/// trigger matches" shape the vocabulary argument relies on.
pub fn is_sliceable(axiom: &Formula) -> bool {
    matches!(axiom, Formula::Forall(_, triggers, _) if !triggers.is_empty())
}

/// The result of slicing a background axiom list against an obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackgroundSlice {
    /// Parallel to the background list: whether each axiom is kept.
    pub keep: Vec<bool>,
}

impl BackgroundSlice {
    /// Number of axioms kept.
    pub fn kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Number of axioms sliced away.
    pub fn dropped(&self) -> usize {
        self.keep.len() - self.kept()
    }

    /// The kept axioms of `background`, in order.
    pub fn apply<'a>(&self, background: &'a [Formula]) -> Vec<&'a Formula> {
        background
            .iter()
            .zip(&self.keep)
            .filter(|(_, &k)| k)
            .map(|(f, _)| f)
            .collect()
    }
}

/// Computes the reachable-vocabulary slice of `background` for an
/// obligation whose non-background hypotheses and goal are `seeds`.
///
/// Kept ⊇ every axiom that could match during the proof; see the module
/// docs for the argument. The result is deterministic (iteration order
/// never affects the fixpoint).
pub fn slice_background<'a>(
    background: &[Formula],
    seeds: impl IntoIterator<Item = &'a Formula>,
) -> BackgroundSlice {
    let mut closure: HashSet<Tok> = HashSet::new();
    let mut scratch = Vec::new();
    for f in seeds {
        formula_tokens(f, &mut scratch, &mut closure);
    }

    // Per-axiom: trigger token sets (for viability) and full contribution.
    let mut contribution: Vec<HashSet<Tok>> = Vec::with_capacity(background.len());
    let mut trigger_sets: Vec<Option<Vec<Vec<HashSet<Tok>>>>> =
        Vec::with_capacity(background.len());
    let mut keep = vec![false; background.len()];
    for (i, axiom) in background.iter().enumerate() {
        let mut contrib = HashSet::new();
        formula_tokens(axiom, &mut scratch, &mut contrib);
        contribution.push(contrib);
        match axiom {
            Formula::Forall(vars, triggers, _) if !triggers.is_empty() => {
                let sets = triggers
                    .iter()
                    .map(|trigger| {
                        trigger
                            .0
                            .iter()
                            .map(|pattern| {
                                let mut toks = HashSet::new();
                                // Passing the binder list as `bound` keeps
                                // the quantified variables out of the set.
                                pattern_tokens(pattern, vars, &mut toks);
                                toks
                            })
                            .collect()
                    })
                    .collect();
                trigger_sets.push(Some(sets));
            }
            _ => {
                // Not sliceable: always kept, contributes immediately.
                trigger_sets.push(None);
                keep[i] = true;
            }
        }
    }
    for (i, kept) in keep.iter().enumerate() {
        if *kept {
            closure.extend(contribution[i].iter().copied());
        }
    }

    // Fixpoint: keep an axiom once some trigger's patterns all draw on the
    // closure; its vocabulary then feeds back into the closure.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..background.len() {
            if keep[i] {
                continue;
            }
            let sets = trigger_sets[i]
                .as_ref()
                .expect("unkept axioms are sliceable");
            let viable = sets.iter().any(|trigger| {
                trigger
                    .iter()
                    .all(|pattern| pattern.iter().all(|t| closure.contains(t)))
            });
            if viable {
                keep[i] = true;
                closure.extend(contribution[i].iter().copied());
                changed = true;
            }
        }
    }
    BackgroundSlice { keep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::{Formula as F, Term as T, Trigger};

    fn axiom_p_of_f() -> Formula {
        // ∀X {f(X)} :: isObj(f(X))
        let body = F::Atom(Atom::IsObj(T::uninterp("f", vec![T::var("X")])));
        F::forall(
            vec!["X".into()],
            vec![Trigger(vec![Pattern::Term(T::uninterp(
                "f",
                vec![T::var("X")],
            ))])],
            body,
        )
    }

    fn axiom_h_from_f() -> Formula {
        // ∀X {f(X)} :: h(X) = X — firing introduces the symbol h.
        let body = F::eq(T::uninterp("h", vec![T::var("X")]), T::var("X"));
        F::forall(
            vec!["X".into()],
            vec![Trigger(vec![Pattern::Term(T::uninterp(
                "f",
                vec![T::var("X")],
            ))])],
            body,
        )
    }

    fn axiom_on_h() -> Formula {
        // ∀X {h(X)} :: isInt(h(X))
        let body = F::Atom(Atom::IsInt(T::uninterp("h", vec![T::var("X")])));
        F::forall(
            vec!["X".into()],
            vec![Trigger(vec![Pattern::Term(T::uninterp(
                "h",
                vec![T::var("X")],
            ))])],
            body,
        )
    }

    #[test]
    fn drops_axiom_with_unreachable_trigger() {
        let bg = vec![axiom_p_of_f()];
        let seed = F::eq(T::uninterp("g", vec![T::var("a")]), T::var("b"));
        let slice = slice_background(&bg, [&seed]);
        assert_eq!(slice.keep, vec![false]);
        assert_eq!(slice.dropped(), 1);
    }

    #[test]
    fn keeps_axiom_whose_trigger_is_seeded() {
        let bg = vec![axiom_p_of_f()];
        let seed = F::eq(T::uninterp("f", vec![T::var("a")]), T::var("b"));
        let slice = slice_background(&bg, [&seed]);
        assert_eq!(slice.keep, vec![true]);
        assert_eq!(slice.dropped(), 0);
    }

    #[test]
    fn closure_chains_through_kept_axiom_bodies() {
        // Seed mentions f; axiom_h_from_f fires and introduces h; axiom_on_h
        // must therefore be kept too.
        let bg = vec![axiom_h_from_f(), axiom_on_h()];
        let seed = F::eq(T::uninterp("f", vec![T::var("a")]), T::var("b"));
        let slice = slice_background(&bg, [&seed]);
        assert_eq!(slice.keep, vec![true, true]);
        // Without the f-seed, neither can fire.
        let other = F::eq(T::var("a"), T::var("b"));
        let slice = slice_background(&bg, [&other]);
        assert_eq!(slice.keep, vec![false, false]);
    }

    #[test]
    fn fixpoint_reaches_axioms_enabled_late_in_the_list() {
        // axiom_on_h appears *before* its enabler: one left-to-right pass
        // is not enough, the fixpoint must loop.
        let bg = vec![axiom_on_h(), axiom_h_from_f()];
        let seed = F::eq(T::uninterp("f", vec![T::var("a")]), T::var("b"));
        let slice = slice_background(&bg, [&seed]);
        assert_eq!(slice.keep, vec![true, true]);
    }

    #[test]
    fn ground_facts_are_always_kept_and_contribute() {
        // A ground fact mentioning f enables the f-triggered axiom even
        // when the obligation itself never mentions f.
        let fact = F::eq(T::uninterp("f", vec![T::var("c")]), T::var("c"));
        let bg = vec![fact, axiom_p_of_f()];
        let seed = F::eq(T::var("a"), T::var("b"));
        let slice = slice_background(&bg, [&seed]);
        assert_eq!(slice.keep, vec![true, true]);
    }

    #[test]
    fn attribute_constants_are_tokens() {
        // ∀S,X {select(S, X, #vec)} :: …
        let read = T::select(T::var("S"), T::var("X"), T::attr("vec"));
        let axiom = F::forall(
            vec!["S".into(), "X".into()],
            vec![Trigger(vec![Pattern::Term(read)])],
            F::eq(read, read),
        );
        let bg = vec![axiom];
        let with_vec = F::eq(
            T::select(T::store(), T::var("t"), T::attr("vec")),
            T::null(),
        );
        assert_eq!(slice_background(&bg, [&with_vec]).keep, vec![true]);
        let with_cnt = F::eq(
            T::select(T::store(), T::var("t"), T::attr("cnt")),
            T::null(),
        );
        assert_eq!(slice_background(&bg, [&with_cnt]).keep, vec![false]);
    }

    #[test]
    fn multipattern_triggers_need_every_pattern_reachable() {
        // ∀X {f(X), g(X)} :: … — needs BOTH f and g in the closure.
        let axiom = F::forall(
            vec!["X".into()],
            vec![Trigger(vec![
                Pattern::Term(T::uninterp("f", vec![T::var("X")])),
                Pattern::Term(T::uninterp("g", vec![T::var("X")])),
            ])],
            F::Atom(Atom::IsObj(T::var("X"))),
        );
        let bg = vec![axiom];
        let f_only = F::eq(T::uninterp("f", vec![T::var("a")]), T::var("b"));
        assert_eq!(slice_background(&bg, [&f_only]).keep, vec![false]);
        let g_also = F::eq(T::uninterp("g", vec![T::var("a")]), T::var("b"));
        assert_eq!(slice_background(&bg, [&f_only, &g_also]).keep, vec![true]);
    }

    #[test]
    fn alternative_triggers_need_only_one_viable() {
        let axiom = F::forall(
            vec!["X".into()],
            vec![
                Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]),
                Trigger(vec![Pattern::Term(T::uninterp("g", vec![T::var("X")]))]),
            ],
            F::Atom(Atom::IsObj(T::var("X"))),
        );
        let bg = vec![axiom];
        let g_only = F::eq(T::uninterp("g", vec![T::var("a")]), T::var("b"));
        assert_eq!(slice_background(&bg, [&g_only]).keep, vec![true]);
    }

    #[test]
    fn predicate_heads_are_tokens() {
        // An axiom triggered on an Inc atom is droppable when the
        // obligation's vocabulary has no Inc at all.
        let inc = Atom::Inc {
            store: T::var("S"),
            obj: T::var("X"),
            attr: T::var("A"),
            obj2: T::var("Y"),
            attr2: T::var("B"),
        };
        let axiom = F::forall(
            vec!["S".into(), "X".into(), "A".into(), "Y".into(), "B".into()],
            vec![Trigger(vec![Pattern::Atom(inc)])],
            F::Atom(inc),
        );
        let bg = vec![axiom];
        let no_inc = F::eq(T::var("a"), T::var("b"));
        assert_eq!(slice_background(&bg, [&no_inc]).keep, vec![false]);
        let with_inc = F::Atom(Atom::Inc {
            store: T::store(),
            obj: T::var("t"),
            attr: T::attr("g"),
            obj2: T::var("t"),
            attr2: T::attr("g"),
        });
        assert_eq!(slice_background(&bg, [&with_inc]).keep, vec![true]);
    }

    #[test]
    fn untriggered_universals_are_never_sliced() {
        let axiom = F::forall(
            vec!["X".into()],
            Vec::new(),
            F::Atom(Atom::IsObj(T::var("X"))),
        );
        assert!(!is_sliceable(&axiom));
        let bg = vec![axiom];
        let seed = F::eq(T::var("a"), T::var("b"));
        assert_eq!(slice_background(&bg, [&seed]).keep, vec![true]);
    }
}
