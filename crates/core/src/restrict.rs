//! The pivot uniqueness restriction (Section 3.0) — a purely syntactic
//! check on procedure implementations.
//!
//! The restriction confines the values of pivot fields so that, except for
//! copies in formal parameters on the call stack, a non-null pivot value is
//! referenced only by its pivot field:
//!
//! 1. an assignment whose left operand is `e.f` with `f` a pivot field may
//!    only have `new()` or `null` as its right operand;
//! 2. a right operand of the form `e.f` must not have `f` a pivot field,
//!    and an operator right operand must not return an object (none of
//!    oolong's operators do);
//! 3. a right operand that is an identifier must not be a formal parameter
//!    (assignments *to* formal parameters are already banned by the
//!    grammar/sema).

use oolong_sema::{ImplId, Scope};
use oolong_syntax::{Cmd, Const, Diagnostic, Expr};

/// Checks one implementation against the pivot uniqueness restriction,
/// returning all violations.
pub fn check_pivot_uniqueness(scope: &Scope, impl_id: ImplId) -> Vec<Diagnostic> {
    let info = scope.impl_info(impl_id);
    let params = &scope.proc_info(info.proc).params;
    let mut diags = Vec::new();
    walk(scope, params, &info.body, &mut diags);
    diags
}

fn is_pivot_attr(scope: &Scope, name: &str) -> bool {
    scope.attr(name).is_some_and(|id| scope.is_pivot(id))
}

fn walk(scope: &Scope, params: &[String], cmd: &Cmd, diags: &mut Vec<Diagnostic>) {
    match cmd {
        Cmd::Assign { lhs, rhs, .. } => {
            // Rule 1: pivot targets take only new() (handled by AssignNew)
            // or null.
            if let Expr::Select { attr, .. } = lhs {
                if is_pivot_attr(scope, &attr.text) && !matches!(rhs, Expr::Const(Const::Null, _)) {
                    diags.push(Diagnostic::error(
                        format!(
                            "pivot uniqueness: pivot field `{}` may only be assigned `new()` or `null`",
                            attr.text
                        ),
                        lhs.span(),
                    ));
                }
            }
            // Slot discipline (array-dependencies extension): slots take
            // only new() or null.
            if matches!(lhs, Expr::Index { .. }) && !matches!(rhs, Expr::Const(Const::Null, _)) {
                diags.push(Diagnostic::error(
                    "pivot uniqueness: array slots may only be assigned `new()` or `null`",
                    lhs.span(),
                ));
            }
            check_rhs(scope, params, rhs, diags);
        }
        Cmd::AssignNew { .. } => {}
        Cmd::Var(_, body, _) => walk(scope, params, body, diags),
        Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
            walk(scope, params, a, diags);
            walk(scope, params, b, diags);
        }
        Cmd::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk(scope, params, then_branch, diags);
            walk(scope, params, else_branch, diags);
        }
        Cmd::Assert(..) | Cmd::Assume(..) | Cmd::Skip(_) | Cmd::Call { .. } => {}
    }
}

fn check_rhs(scope: &Scope, params: &[String], rhs: &Expr, diags: &mut Vec<Diagnostic>) {
    match rhs {
        // Rule 2: the right operand must not read a pivot field.
        Expr::Select { attr, .. } => {
            if is_pivot_attr(scope, &attr.text) {
                diags.push(Diagnostic::error(
                    format!(
                        "pivot uniqueness: the value of pivot field `{}` may not be copied",
                        attr.text
                    ),
                    rhs.span(),
                ));
            }
        }
        // Rule 3: the right operand must not be a formal parameter.
        Expr::Id(id) => {
            if params.iter().any(|p| p == &id.text) {
                diags.push(Diagnostic::error(
                    format!(
                        "pivot uniqueness: formal parameter `{}` may not be copied into a variable or field",
                        id.text
                    ),
                    rhs.span(),
                ));
            }
        }
        // Rule 2 (operators): an operator right operand must not return an
        // object. None of oolong's operators do, so nothing to flag; the
        // hook is kept in case object-returning operators are added.
        Expr::Binary { op, .. } => {
            if op.may_return_object() {
                diags.push(Diagnostic::error(
                    format!("pivot uniqueness: operator `{op}` may return an object"),
                    rhs.span(),
                ));
            }
        }
        // Slot discipline: slot values may not be copied.
        Expr::Index { .. } => {
            diags.push(Diagnostic::error(
                "pivot uniqueness: the value of an array slot may not be copied",
                rhs.span(),
            ));
        }
        Expr::Unary { .. } | Expr::Const(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    fn violations(src: &str) -> Vec<String> {
        let program = parse_program(src).expect("parses");
        let scope = Scope::analyze(&program).expect("analyses");
        scope
            .impls()
            .flat_map(|(id, _)| check_pivot_uniqueness(&scope, id))
            .map(|d| d.message)
            .collect()
    }

    const PRELUDE: &str = "group contents
group elems
field cnt in elems
field obj
field vec maps elems into contents
";

    #[test]
    fn clean_implementation_passes() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st) modifies st.contents
             impl p(st) {{ st.vec := new() ; st.vec := null ; var x in x := st.cnt end }}"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rejects_pivot_assigned_expression() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st, o) modifies st.contents
             impl p(st, o) {{ var x in x := new() ; st.vec := x end }}"
        ));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("may only be assigned"));
    }

    #[test]
    fn allows_pivot_assigned_null_and_new() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st) modifies st.contents
             impl p(st) {{ st.vec := null ; st.vec := new() }}"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rejects_reading_pivot_into_variable() {
        // The paper's §3.0 scenario: impl m(st, r) { r.obj := st.vec }.
        let v = violations(&format!(
            "{PRELUDE}
             proc m(st, r) modifies r.obj
             impl m(st, r) {{ r.obj := st.vec }}"
        ));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("may not be copied"), "{v:?}");
    }

    #[test]
    fn rejects_copying_formal_parameter() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st) modifies st.contents
             impl p(st) {{ var x in x := st end }}"
        ));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("formal parameter"), "{v:?}");
    }

    #[test]
    fn local_to_local_copy_is_fine() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st) modifies st.contents
             impl p(st) {{ var x in var y in x := new() ; y := x end end }}"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reading_through_pivot_is_fine() {
        // x := st.vec.cnt dereferences the pivot without copying its value.
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st) modifies st.contents
             impl p(st) {{ var x in x := st.vec.cnt end }}"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn passing_pivot_as_argument_is_not_a_pivot_uniqueness_violation() {
        // Passing st.vec to a callee is owner exclusion's business, not
        // pivot uniqueness's.
        let v = violations(&format!(
            "{PRELUDE}
             proc vhelper(v) modifies v.elems
             proc p(st) modifies st.contents
             impl p(st) {{ vhelper(st.vec) }}"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violations_found_in_branches() {
        let v = violations(&format!(
            "{PRELUDE}
             proc p(st, o) modifies st.contents
             impl p(st, o) {{ skip [] {{ var x in x := st.vec end }} }}"
        ));
        assert_eq!(v.len(), 1);
    }
}
