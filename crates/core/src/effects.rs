//! The formulas `incl`, `mod`, and `ownExcl` of Section 4.1.
//!
//! A modifies list `w` evaluated in a store `S` allows a location `X·A` to
//! be assigned iff `X` is unallocated in `S` or some term `E.f` in `w` has
//! `tr(E)·f ≽ X·A` in `S`:
//!
//! ```text
//! mod(X·A, w, S)  =  ¬alive(S, X) ∨ incl(X·A, w, S)
//! incl(X·A, w, S) =  ⋁_{E.f ∈ w}  S ⊨ tr(E)·f ≽ X·A
//! ```
//!
//! Owner exclusion says the non-null value of a pivot field `F` of an
//! object `X` may be passed as parameter `t` only if the callee has no
//! license on any attribute `A` of `X` with a rep inclusion through `F`:
//!
//! ```text
//! ownExcl(t, w, S) = (∀X,A,F,B :: A →F B ∧ t = S(X·F) ∧ t ≠ null
//!                                   ⇒ ¬incl(X·A, w, S))
//! ```

use oolong_logic::transform::FreshGen;
use oolong_logic::{Atom, Formula, Pattern, Term, Trigger};
use oolong_sema::{ModTarget, Scope};

/// A modifies list with its designator roots bound to concrete terms:
/// the caller's formals (`Term::var`) for the method's own list, or the
/// `sᵢ` parameter-value variables for a callee's list at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModList {
    entries: Vec<ModEntry>,
}

/// One designator `root.a₁.….aₙ` with the root already a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModEntry {
    /// The value of the designator's root.
    pub root: Term,
    /// The attribute path (names), non-empty; the last element is the
    /// licensed attribute.
    pub path: Vec<String>,
}

impl ModEntry {
    /// The location this entry licenses, evaluated in `store`: the object
    /// term (root dereferenced through all but the last attribute) and the
    /// final attribute.
    pub fn location(&self, store: &Term) -> (Term, Term) {
        let mut obj = self.root;
        for attr in &self.path[..self.path.len() - 1] {
            obj = Term::select(*store, obj, Term::attr(attr.clone()));
        }
        let attr = Term::attr(self.path.last().expect("path non-empty").clone());
        (obj, attr)
    }
}

impl ModList {
    /// Builds a modifies-list instance from resolved targets, substituting
    /// `roots[target.param]` for each designator root.
    ///
    /// # Panics
    ///
    /// Panics if a target's parameter index is out of range of `roots`.
    pub fn new(scope: &Scope, targets: &[ModTarget], roots: &[Term]) -> ModList {
        let entries = targets
            .iter()
            .map(|t| ModEntry {
                root: roots[t.param],
                path: t
                    .path
                    .iter()
                    .map(|&a| scope.attr_info(a).name.clone())
                    .collect(),
            })
            .collect();
        ModList { entries }
    }

    /// An empty modifies list (allows only fresh objects).
    pub fn empty() -> ModList {
        ModList {
            entries: Vec::new(),
        }
    }

    /// The entries of the list.
    pub fn entries(&self) -> &[ModEntry] {
        &self.entries
    }

    /// `incl(obj·attr, self, store)` — the finite disjunction over entries.
    pub fn incl(&self, obj: &Term, attr: &Term, store: &Term) -> Formula {
        Formula::or(
            self.entries
                .iter()
                .map(|e| {
                    let (eobj, eattr) = e.location(store);
                    Formula::Atom(Atom::Inc {
                        store: *store,
                        obj: eobj,
                        attr: eattr,
                        obj2: *obj,
                        attr2: *attr,
                    })
                })
                .collect(),
        )
    }

    /// `mod(obj·attr, self, store)`.
    pub fn modifiable(&self, obj: &Term, attr: &Term, store: &Term) -> Formula {
        Formula::or(vec![
            Formula::not(Formula::Atom(Atom::Alive(*store, *obj))),
            self.incl(obj, attr, store),
        ])
    }

    /// `ownExcl(t, self, store)` — the owner-exclusion property for a
    /// parameter value `t`, covering ordinary pivots and (the array
    /// extension) elem-pivot arrays and their stored elements.
    pub fn own_excl(&self, t: &Term, store: &Term, fresh: &mut FreshGen) -> Formula {
        self.own_excl_leveled(t, store, false, fresh)
    }

    /// [`ModList::own_excl`] with the array language level explicit: at the
    /// arrays level the elementwise clauses are added.
    pub fn own_excl_leveled(
        &self,
        t: &Term,
        store: &Term,
        arrays: bool,
        fresh: &mut FreshGen,
    ) -> Formula {
        let mut clauses = vec![self.own_excl_pivot(t, store, fresh)];
        if arrays {
            clauses.push(self.own_excl_elem_array(t, store, fresh));
            clauses.push(self.own_excl_element(t, store, fresh));
        }
        Formula::and(clauses)
    }

    /// The paper's clause: `t` may be the value of pivot `F` of `X` only if
    /// the list grants no license on `X·A` with `A →F B`.
    fn own_excl_pivot(&self, t: &Term, store: &Term, fresh: &mut FreshGen) -> Formula {
        let x = fresh.fresh("oeX");
        let a = fresh.fresh("oeA");
        let f = fresh.fresh("oeF");
        let b = fresh.fresh("oeB");
        let rep = Atom::RepInc {
            group: Term::var(a),
            pivot: Term::var(f),
            mapped: Term::var(b),
        };
        let pivot_read = Term::select(*store, Term::var(x), Term::var(f));
        let antecedent = Formula::and(vec![
            Formula::Atom(rep),
            Formula::eq(*t, pivot_read),
            Formula::neq(*t, Term::null()),
        ]);
        let conclusion = Formula::not(self.incl(&Term::var(x), &Term::var(a), store));
        let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Term(pivot_read)]);
        Formula::forall(
            vec![x, a, f, b],
            vec![trigger],
            Formula::implies(antecedent, conclusion),
        )
    }

    /// Elementwise clause for the array itself: `t` may be the value of an
    /// elem-pivot `F` of `X` only if no license covers `X·A` with `A ⇉F B`.
    fn own_excl_elem_array(&self, t: &Term, store: &Term, fresh: &mut FreshGen) -> Formula {
        let x = fresh.fresh("oeX");
        let a = fresh.fresh("oeA");
        let f = fresh.fresh("oeF");
        let b = fresh.fresh("oeB");
        let rep = Atom::RepIncElem {
            group: Term::var(a),
            pivot: Term::var(f),
            mapped: Term::var(b),
        };
        let pivot_read = Term::select(*store, Term::var(x), Term::var(f));
        let antecedent = Formula::and(vec![
            Formula::Atom(rep),
            Formula::eq(*t, pivot_read),
            Formula::neq(*t, Term::null()),
        ]);
        let conclusion = Formula::not(self.incl(&Term::var(x), &Term::var(a), store));
        let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Term(pivot_read)]);
        Formula::forall(
            vec![x, a, f, b],
            vec![trigger],
            Formula::implies(antecedent, conclusion),
        )
    }

    /// Elementwise clause for stored elements: `t` may be the value of slot
    /// `I` of an elem-pivot's array only if no license covers the owner.
    fn own_excl_element(&self, t: &Term, store: &Term, fresh: &mut FreshGen) -> Formula {
        let x = fresh.fresh("oeX");
        let a = fresh.fresh("oeA");
        let f = fresh.fresh("oeF");
        let b = fresh.fresh("oeB");
        let i = fresh.fresh("oeI");
        let rep = Atom::RepIncElem {
            group: Term::var(a),
            pivot: Term::var(f),
            mapped: Term::var(b),
        };
        let arr_read = Term::select(*store, Term::var(x), Term::var(f));
        let slot_read = Term::select(*store, arr_read, Term::var(i));
        let antecedent = Formula::and(vec![
            Formula::Atom(rep),
            Formula::Atom(Atom::IsInt(Term::var(i))),
            Formula::eq(*t, slot_read),
            Formula::neq(*t, Term::null()),
        ]);
        let conclusion = Formula::not(self.incl(&Term::var(x), &Term::var(a), store));
        let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Term(slot_read)]);
        Formula::forall(
            vec![x, a, f, b, i],
            vec![trigger],
            Formula::implies(antecedent, conclusion),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_sema::Scope;
    use oolong_syntax::parse_program;

    fn scope() -> Scope {
        Scope::analyze(
            &parse_program(
                "group g
                 field c
                 field d
                 proc p(t) modifies t.c.d.g",
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn p_modlist(scope: &Scope) -> ModList {
        let p = scope.proc("p").unwrap();
        let targets = scope.proc_info(p).modifies.clone();
        ModList::new(scope, &targets, &[Term::var("t")])
    }

    #[test]
    fn entry_location_builds_select_chain() {
        let s = scope();
        let ml = p_modlist(&s);
        let (obj, attr) = ml.entries()[0].location(&Term::store0());
        // t.c.d.g: object is $0($0(t·c)·d), attribute is g.
        let inner = Term::select(Term::store0(), Term::var("t"), Term::attr("c"));
        assert_eq!(obj, Term::select(Term::store0(), inner, Term::attr("d")));
        assert_eq!(attr, Term::attr("g"));
    }

    #[test]
    fn incl_is_disjunction_over_entries() {
        let s = scope();
        let ml = p_modlist(&s);
        let f = ml.incl(&Term::var("u"), &Term::attr("g"), &Term::store0());
        assert!(
            matches!(f, Formula::Atom(Atom::Inc { .. })),
            "single entry gives bare atom: {f}"
        );
    }

    #[test]
    fn empty_list_allows_only_fresh() {
        let ml = ModList::empty();
        let m = ml.modifiable(&Term::var("u"), &Term::attr("g"), &Term::store0());
        // mod = ¬alive($0, u) ∨ false = ¬alive($0, u).
        assert_eq!(
            m,
            Formula::not(Formula::Atom(Atom::Alive(Term::store0(), Term::var("u"))))
        );
    }

    #[test]
    fn own_excl_shape() {
        let s = scope();
        let ml = p_modlist(&s);
        let mut fresh = FreshGen::new();
        // Plain level: the paper's single quantified clause.
        let oe = ml.own_excl(&Term::var("t"), &Term::store0(), &mut fresh);
        match oe {
            Formula::Forall(vars, triggers, body) => {
                assert_eq!(vars.len(), 4);
                assert_eq!(triggers.len(), 1);
                assert_eq!(triggers[0].0.len(), 2, "multi-pattern trigger");
                assert!(matches!(*body, Formula::Implies(..)));
            }
            other => panic!("expected forall, got {other}"),
        }
        // Arrays level: three clauses (pivots, elem arrays, elements).
        let oe = ml.own_excl_leveled(&Term::var("t"), &Term::store0(), true, &mut fresh);
        match oe {
            Formula::And(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(&parts[2], Formula::Forall(vars, _, _) if vars.len() == 5));
            }
            other => panic!("expected conjunction of clauses, got {other}"),
        }
    }

    #[test]
    fn modifiable_includes_unallocated_escape() {
        let s = scope();
        let ml = p_modlist(&s);
        let m = ml.modifiable(&Term::var("u"), &Term::attr("g"), &Term::store0());
        match m {
            Formula::Or(parts) => {
                assert!(matches!(&parts[0], Formula::Not(inner)
                    if matches!(**inner, Formula::Atom(Atom::Alive(..)))));
            }
            other => panic!("expected disjunction, got {other}"),
        }
    }
}
