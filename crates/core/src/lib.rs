//! **Data groups for specifying and statically checking side effects** —
//! the primary contribution of
//!
//! > K. R. M. Leino, A. Poetzsch-Heffter, Y. Zhou.
//! > *Using Data Groups to Specify and Check Side Effects.* PLDI 2002.
//!
//! The crate implements, for the oolong language:
//!
//! * the **pivot uniqueness** restriction (Section 3.0) — [`restrict`];
//! * the **owner exclusion** restriction (Section 3.1), generated as a
//!   call-site obligation and entry assumption — [`effects`], [`vcgen`];
//! * the translation `tr` and weakest-liberal-precondition semantics `wlp`
//!   of Figures 2 and 3 — [`translate`], [`vcgen`];
//! * the universal and scope-dependent **background predicates** with
//!   axioms (4), (6), (7), (8), (9) — [`background`];
//! * the modular **checker driver** with its naive (restriction-free)
//!   baseline — [`checker`];
//! * **specification-overhead metrics** — [`metrics`].
//!
//! # Example
//!
//! ```
//! use datagroups::{CheckOptions, Checker};
//! use oolong_syntax::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "group value
//!      field num in value
//!      proc bump(r) modifies r.value
//!      impl bump(r) { r.num := r.num + 1 }",
//! )?;
//! let checker = Checker::new(&program, CheckOptions::default())?;
//! assert!(checker.check_all().all_verified());
//! # Ok(())
//! # }
//! ```

pub mod background;
pub mod checker;
pub mod effects;
pub mod metrics;
pub mod restrict;
pub mod slice;
pub mod translate;
pub mod vcgen;

pub use checker::{
    check_modular, CheckOptions, Checker, ImplReport, ModularReport, Refutation, Report, Verdict,
};
pub use effects::{ModEntry, ModList};
pub use metrics::{overhead, prover_metrics, HotAxiom, OverheadReport, ProverMetrics};
pub use restrict::check_pivot_uniqueness;
pub use slice::{is_sliceable, slice_background, BackgroundSlice};
pub use vcgen::{ObligationKind, ObligationLabel, Vc, VcGen, VcOptions};
