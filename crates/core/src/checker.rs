//! The modular side-effect checker: the user-facing driver tying together
//! scope analysis, the pivot-uniqueness restriction, VC generation, and the
//! theorem prover.

use crate::restrict::check_pivot_uniqueness;
use crate::slice::{slice_background, BackgroundSlice};
use crate::vcgen::{ObligationKind, ObligationLabel, Vc, VcGen, VcOptions};
use oolong_logic::{Formula, PatternPolicy, Phase};
use oolong_prover::{Budget, CandidateModel, Outcome, ScopeContext, SearchStrategy, Stats};
use oolong_sema::{ImplId, Scope};
use oolong_syntax::{Diagnostic, Diagnostics, Program};
use std::fmt;

/// Configuration for a [`Checker`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Prover resource limits.
    pub budget: Budget,
    /// Run the *naive* baseline: skip the pivot-uniqueness restriction,
    /// owner-exclusion obligations/assumptions, and background axioms (6)
    /// and (7). Used by experiments E2 and E3 to reproduce the unsound
    /// system the paper's restrictions repair.
    pub naive: bool,
    /// Emit `≠ null` definedness conditions (off by default — the paper
    /// elides them).
    pub null_checks: bool,
    /// Check at the arrays language level even when the scope uses no
    /// array features (for linking against arrays-level modules).
    pub force_arrays_level: bool,
    /// How the prover backtracks out of case splits. The default
    /// ([`SearchStrategy::Trail`], unless overridden by the
    /// `OOLONG_PROVER_CLONE_SEARCH` environment variable) is right for
    /// everything except differential testing and benchmarking of the
    /// backtracking mechanism itself.
    pub strategy: SearchStrategy,
    /// Build one prover context per scope-background group and prove each
    /// obligation inside a trail frame of it, instead of rebuilding and
    /// re-saturating the background for every obligation. Outcomes and
    /// statistics are identical either way (the differential harness
    /// checks this); off is useful only for differential testing and as
    /// the benchmark baseline.
    pub share_contexts: bool,
    /// Slice away background axioms whose declared triggers can never
    /// match the obligation's reachable vocabulary (see [`crate::slice`]).
    /// Sound by construction — a sliced axiom has zero E-matches — so off
    /// is again only for differential testing and benchmarking.
    pub slice_axioms: bool,
    /// Honor the background axioms' declared activation policies
    /// ([`oolong_logic::PatternPolicy`]): goal-directed axioms arm only
    /// inside each obligation's frame instead of participating in the
    /// shared context's pre-saturation. The phase is scheduling metadata,
    /// not logic — verdicts and labels are unchanged (the differential
    /// harness checks this across the policy dimension) — so off is only
    /// for differential testing and benchmarking the E19 regression.
    pub pattern_policies: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            budget: Budget::default(),
            naive: false,
            null_checks: false,
            force_arrays_level: false,
            strategy: SearchStrategy::from_env(),
            share_contexts: true,
            slice_axioms: true,
            pattern_policies: true,
        }
    }
}

/// Everything the prover reports about a rejected verification condition:
/// the open-branch sketch, the position labels that landed on the refuting
/// branch, the primary (innermost) obligation they identify, and the
/// exported candidate model for counterexample concretization.
#[derive(Debug, Clone, Default)]
pub struct Refutation {
    /// Human-readable sketch of the open branch's determined predicates.
    pub open_branch: Option<Vec<String>>,
    /// Position-label ids asserted on the refuting branch, in assertion
    /// order (deduplicated).
    pub labels: Vec<u32>,
    /// The obligation the branch violates: the last asserted label,
    /// resolved against the VC's label table.
    pub primary: Option<ObligationLabel>,
    /// The exported saturated branch context, when recorded.
    pub model: Option<CandidateModel>,
}

impl Refutation {
    /// Builds a refutation from a prover model, resolving the innermost
    /// label id against the VC's label table.
    pub fn from_proof(
        open_branch: Option<Vec<String>>,
        model: Option<CandidateModel>,
        vc: &Vc,
    ) -> Refutation {
        let labels = model.as_ref().map(|m| m.labels.clone()).unwrap_or_default();
        let primary = labels.last().and_then(|&id| vc.label(id)).cloned();
        Refutation {
            open_branch,
            labels,
            primary,
            model,
        }
    }
}

/// The verdict for one implementation.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The implementation respects its modifies list and no execution goes
    /// wrong.
    Verified(Stats),
    /// The implementation violates the pivot uniqueness restriction.
    RestrictionViolation(Vec<Diagnostic>),
    /// The VC could not be proved: a genuine error or an incompleteness.
    /// Carries the prover's [`Refutation`] evidence (boxed: the candidate
    /// model dwarfs every other variant).
    NotVerified(Stats, Box<Refutation>),
    /// The prover ran out of budget.
    Unknown(Stats),
    /// VC generation failed (unsupported expression form).
    TranslationError(Diagnostic),
}

impl Verdict {
    /// Whether the implementation was verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified(_))
    }

    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Verified(_) => "verified",
            Verdict::RestrictionViolation(_) => "restriction violation",
            Verdict::NotVerified(..) => "not verified",
            Verdict::Unknown(_) => "unknown",
            Verdict::TranslationError(_) => "translation error",
        }
    }

    /// The prover statistics, when a proof was attempted.
    pub fn stats(&self) -> Option<&Stats> {
        match self {
            Verdict::Verified(s) | Verdict::NotVerified(s, _) | Verdict::Unknown(s) => Some(s),
            _ => None,
        }
    }

    /// The open-branch sketch for a rejection, if the prover recorded one:
    /// the satisfiable literal assignment that witnesses why the
    /// verification condition is not derivable.
    pub fn open_branch(&self) -> Option<&[String]> {
        match self {
            Verdict::NotVerified(_, r) => r.open_branch.as_deref(),
            _ => None,
        }
    }

    /// The full refutation evidence for a rejection.
    pub fn refutation(&self) -> Option<&Refutation> {
        match self {
            Verdict::NotVerified(_, r) => Some(r),
            _ => None,
        }
    }

    /// Divergence attribution for an [`Verdict::Unknown`]: the budget
    /// dimension that tripped plus the hottest quantified axioms (see
    /// [`Stats::divergence`]).
    pub fn divergence(&self) -> Option<oolong_prover::Divergence> {
        match self {
            Verdict::Unknown(stats) => stats.divergence(),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())?;
        match self {
            Verdict::RestrictionViolation(ds) => {
                for d in ds {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            Verdict::TranslationError(d) => write!(f, ": {d}"),
            Verdict::Unknown(stats) => {
                // Which budget dimension tripped (recorded by the prover).
                if let Some(reason) = stats.exhausted {
                    write!(f, " ({reason})")?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// The verdict for one implementation, with identification.
#[derive(Debug, Clone)]
pub struct ImplReport {
    /// Which implementation.
    pub impl_id: ImplId,
    /// Name of the implemented procedure.
    pub proc_name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Labeled obligation conjuncts per kind embedded in the VC (empty
    /// when no VC was generated — restriction violations and translation
    /// errors).
    pub kind_counts: Vec<(ObligationKind, u32)>,
}

/// The results of checking every implementation in a scope.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-implementation results, in declaration order.
    pub impls: Vec<ImplReport>,
}

impl Report {
    /// Whether every implementation verified.
    pub fn all_verified(&self) -> bool {
        self.impls.iter().all(|r| r.verdict.is_verified())
    }

    /// The report for the (first) implementation of the named procedure.
    pub fn for_proc(&self, name: &str) -> Option<&ImplReport> {
        self.impls.iter().find(|r| r.proc_name == name)
    }

    /// Count of implementations with each outcome, as
    /// `(verified, rejected, unknown)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut v = 0;
        let mut r = 0;
        let mut u = 0;
        for rep in &self.impls {
            match rep.verdict {
                Verdict::Verified(_) => v += 1,
                Verdict::Unknown(_) => u += 1,
                _ => r += 1,
            }
        }
        (v, r, u)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.impls.is_empty() {
            return write!(f, "no implementations to check");
        }
        for (i, rep) in self.impls.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "impl {}: {}", rep.proc_name, rep.verdict)?;
        }
        Ok(())
    }
}

/// The modular side-effect checker for one scope.
#[derive(Debug)]
pub struct Checker {
    scope: Scope,
    options: CheckOptions,
}

impl Checker {
    /// Analyses `program` as a scope and prepares a checker.
    ///
    /// # Errors
    ///
    /// Returns the scope-analysis diagnostics if the program is ill-formed
    /// (undeclared names, inclusion cycles, parameter mismatches, …).
    pub fn new(program: &Program, options: CheckOptions) -> Result<Checker, Diagnostics> {
        Ok(Checker {
            scope: Scope::analyze(program)?,
            options,
        })
    }

    /// Wraps an already-analysed scope.
    pub fn from_scope(scope: Scope, options: CheckOptions) -> Checker {
        Checker { scope, options }
    }

    /// The underlying scope.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The options the checker was configured with.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    fn vc_options(&self) -> VcOptions {
        VcOptions {
            null_checks: self.options.null_checks,
            restrictions: !self.options.naive,
            force_arrays_level: self.options.force_arrays_level,
        }
    }

    /// Generates (without proving) the VC for one implementation.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] when the body uses an unsupported
    /// expression form.
    pub fn vc(&self, impl_id: ImplId) -> Result<Vc, Diagnostic> {
        VcGen::new(&self.scope, self.vc_options()).vc_for_impl(impl_id)
    }

    /// The pivot-uniqueness violations of one implementation (always
    /// empty in naive mode, which skips the restriction).
    pub fn restriction_violations(&self, impl_id: ImplId) -> Vec<Diagnostic> {
        if self.options.naive {
            Vec::new()
        } else {
            check_pivot_uniqueness(&self.scope, impl_id)
        }
    }

    /// The stable names of the scope-background axioms, index-aligned with
    /// `Vc::hypotheses[..background_hyps]` of every VC this checker
    /// generates (see [`crate::background::named_background`]). Lets tests
    /// and diagnostics refer to background hypotheses by name rather than
    /// position.
    pub fn background_names(&self) -> Vec<String> {
        self.background_policies()
            .into_iter()
            .map(|(name, _, _)| name)
            .collect()
    }

    /// The scope-background axioms with their stable names and declared
    /// activation policies, index-aligned with
    /// `Vc::hypotheses[..background_hyps]` exactly like
    /// [`Checker::background_names`].
    pub fn background_policies(&self) -> Vec<(String, Formula, PatternPolicy)> {
        let opts = self.vc_options();
        let arrays = opts.force_arrays_level || crate::vcgen::scope_uses_arrays(&self.scope);
        let mut fresh = oolong_logic::FreshGen::new();
        crate::background::named_background_policies(
            &self.scope,
            opts.restrictions,
            arrays,
            &mut fresh,
        )
    }

    /// The effective scheduling phase of every scope-background axiom,
    /// index-aligned with the VC's background hypotheses. All-`Eager` when
    /// [`CheckOptions::pattern_policies`] is off — that cell of the
    /// differential matrix reproduces the PR-7 goalless saturation
    /// schedule.
    pub fn background_phases(&self) -> Vec<Phase> {
        let policies = self.background_policies();
        if self.options.pattern_policies {
            policies.into_iter().map(|(_, _, p)| p.phase).collect()
        } else {
            vec![Phase::Eager; policies.len()]
        }
    }

    /// The axiom-relevance slice of a VC's scope background: which of the
    /// leading `background_hyps` hypotheses to keep. All-true when slicing
    /// is disabled.
    pub fn background_slice(&self, vc: &Vc) -> BackgroundSlice {
        let background = &vc.hypotheses[..vc.background_hyps];
        if self.options.slice_axioms {
            let seeds = vc.hypotheses[vc.background_hyps..]
                .iter()
                .chain(std::iter::once(&vc.goal));
            slice_background(background, seeds)
        } else {
            BackgroundSlice {
                keep: vec![true; background.len()],
            }
        }
    }

    /// The kept background formulas of `vc` under `slice`, in order.
    pub fn sliced_background(&self, vc: &Vc, slice: &BackgroundSlice) -> Vec<Formula> {
        vc.hypotheses[..vc.background_hyps]
            .iter()
            .zip(&slice.keep)
            .filter(|(_, &k)| k)
            .map(|(f, _)| f.clone())
            .collect()
    }

    /// The kept axioms' scheduling phases under `slice`, index-aligned
    /// with [`Checker::sliced_background`].
    pub fn sliced_phases(&self, slice: &BackgroundSlice) -> Vec<Phase> {
        self.background_phases()
            .into_iter()
            .zip(&slice.keep)
            .filter(|(_, &k)| k)
            .map(|(p, _)| p)
            .collect()
    }

    /// Builds a prover context holding a VC's (sliced) scope background,
    /// saturated once and reusable across every obligation whose slice is
    /// the same. Pre-saturation fires only the `Eager` axioms; the
    /// goal-directed ones arm per obligation inside its frame.
    pub fn context_for_slice(&self, vc: &Vc, slice: &BackgroundSlice) -> ScopeContext {
        ScopeContext::new_with_phases(
            &self.sliced_background(vc, slice),
            &self.sliced_phases(slice),
            &self.options.budget,
            self.options.strategy,
        )
    }

    /// Proves a verification condition inside `ctx` — which must hold the
    /// VC's sliced scope background — and maps the proof outcome to a
    /// [`Verdict`]. `dropped` is the number of sliced-away axioms, recorded
    /// in the verdict's statistics.
    pub fn verdict_for_vc_in(&self, ctx: &mut ScopeContext, vc: &Vc, dropped: usize) -> Verdict {
        let init = &vc.hypotheses[vc.background_hyps..];
        let proof = ctx.prove(init, &vc.goal);
        let mut stats = proof.stats;
        stats.sliced_axioms = dropped;
        match proof.outcome {
            Outcome::Proved => Verdict::Verified(stats),
            Outcome::NotProved => Verdict::NotVerified(
                stats,
                Box::new(Refutation::from_proof(proof.open_branch, proof.model, vc)),
            ),
            Outcome::Unknown(_) => Verdict::Unknown(stats),
        }
    }

    /// Proves an already-generated verification condition and maps the
    /// proof outcome to a [`Verdict`].
    ///
    /// Builds a one-shot scope context: the same code path as shared
    /// checking, so outcomes and statistics agree exactly with
    /// [`Checker::check_all`] whatever the sharing mode.
    pub fn verdict_for_vc(&self, vc: &Vc) -> Verdict {
        let slice = self.background_slice(vc);
        let mut ctx = self.context_for_slice(vc, &slice);
        self.verdict_for_vc_in(&mut ctx, vc, slice.dropped())
    }

    /// Checks a single implementation: pivot uniqueness first (unless
    /// naive), then the verification condition.
    pub fn check_impl(&self, impl_id: ImplId) -> ImplReport {
        let proc_name = self
            .scope
            .proc_info(self.scope.impl_info(impl_id).proc)
            .name
            .clone();
        let violations = self.restriction_violations(impl_id);
        if !violations.is_empty() {
            return ImplReport {
                impl_id,
                proc_name,
                verdict: Verdict::RestrictionViolation(violations),
                kind_counts: Vec::new(),
            };
        }
        let vc = match self.vc(impl_id) {
            Ok(vc) => vc,
            Err(d) => {
                return ImplReport {
                    impl_id,
                    proc_name,
                    verdict: Verdict::TranslationError(d),
                    kind_counts: Vec::new(),
                }
            }
        };
        ImplReport {
            impl_id,
            proc_name,
            kind_counts: vc.kind_counts(),
            verdict: self.verdict_for_vc(&vc),
        }
    }

    /// Checks every implementation in the scope.
    pub fn check_all(&self) -> Report {
        self.check_all_with_workers(1)
    }

    /// Checks every implementation in the scope across one worker thread
    /// per available core (verification conditions are independent).
    pub fn check_all_parallel(&self) -> Report {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.check_all_with_workers(workers)
    }

    /// Checks every implementation in the scope across `workers` threads.
    /// The report lists implementations in declaration order regardless of
    /// thread interleaving.
    ///
    /// With [`CheckOptions::share_contexts`] on, obligations whose sliced
    /// background agrees are grouped, each group saturates its scope
    /// context once, and every member proves inside a trail frame of it.
    /// Groups — not individual obligations — are the unit of work
    /// distribution, so a context is only ever touched by one thread.
    pub fn check_all_with_workers(&self, workers: usize) -> Report {
        let ids: Vec<ImplId> = self.scope.impls().map(|(id, _)| id).collect();
        let mut slots: Vec<Option<ImplReport>> = ids.iter().map(|_| None).collect();

        // Phase 1 (cheap, sequential): restriction checks and VC
        // generation. Early verdicts fill their slot; the rest become
        // prover work items carrying their background slice.
        struct Todo {
            slot: usize,
            impl_id: ImplId,
            proc_name: String,
            vc: Vc,
            slice: BackgroundSlice,
        }
        let mut todos: Vec<Todo> = Vec::new();
        for (i, &impl_id) in ids.iter().enumerate() {
            let proc_name = self
                .scope
                .proc_info(self.scope.impl_info(impl_id).proc)
                .name
                .clone();
            let violations = self.restriction_violations(impl_id);
            if !violations.is_empty() {
                slots[i] = Some(ImplReport {
                    impl_id,
                    proc_name,
                    verdict: Verdict::RestrictionViolation(violations),
                    kind_counts: Vec::new(),
                });
                continue;
            }
            match self.vc(impl_id) {
                Err(d) => {
                    slots[i] = Some(ImplReport {
                        impl_id,
                        proc_name,
                        verdict: Verdict::TranslationError(d),
                        kind_counts: Vec::new(),
                    });
                }
                Ok(vc) => {
                    let slice = self.background_slice(&vc);
                    todos.push(Todo {
                        slot: i,
                        impl_id,
                        proc_name,
                        vc,
                        slice,
                    });
                }
            }
        }

        // Phase 2: group work items by slice keep-mask. Within one checker
        // the unsliced background list is structurally identical across
        // implementations (the fresh-name generator restarts per VC), so
        // equal masks mean equal sliced backgrounds.
        let groups: Vec<Vec<usize>> = if self.options.share_contexts {
            let mut keys: Vec<&[bool]> = Vec::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (t, todo) in todos.iter().enumerate() {
                match keys.iter().position(|k| *k == todo.slice.keep.as_slice()) {
                    Some(g) => groups[g].push(t),
                    None => {
                        keys.push(&todo.slice.keep);
                        groups.push(vec![t]);
                    }
                }
            }
            groups
        } else {
            (0..todos.len()).map(|t| vec![t]).collect()
        };

        let prove_group = |members: &[usize]| -> Vec<(usize, ImplReport)> {
            let first = &todos[members[0]];
            let mut ctx = self.context_for_slice(&first.vc, &first.slice);
            members
                .iter()
                .map(|&t| {
                    let todo = &todos[t];
                    let verdict = self.verdict_for_vc_in(&mut ctx, &todo.vc, todo.slice.dropped());
                    (
                        todo.slot,
                        ImplReport {
                            impl_id: todo.impl_id,
                            proc_name: todo.proc_name.clone(),
                            kind_counts: todo.vc.kind_counts(),
                            verdict,
                        },
                    )
                })
                .collect()
        };

        if workers <= 1 || groups.len() <= 1 {
            for members in &groups {
                for (slot, report) in prove_group(members) {
                    slots[slot] = Some(report);
                }
            }
        } else {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let next = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, ImplReport)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..workers.min(groups.len()) {
                    scope.spawn(|| loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        let Some(members) = groups.get(g) else { break };
                        let reports = prove_group(members);
                        out.lock()
                            .expect("no panics while holding result lock")
                            .extend(reports);
                    });
                }
            });
            for (slot, report) in out.into_inner().expect("worker panicked") {
                slots[slot] = Some(report);
            }
        }
        Report {
            impls: slots
                .into_iter()
                .map(|slot| slot.expect("every implementation got a verdict"))
                .collect(),
        }
    }
}

/// The results of checking a program module by module (the `module`
/// extension): each module's implementations verified against its own
/// import-closure scope.
#[derive(Debug, Clone, Default)]
pub struct ModularReport {
    /// Per-module reports, in declaration order. Top-level implementations
    /// (outside any module) appear under the pseudo-module name `""`.
    pub modules: Vec<(String, Report)>,
}

impl ModularReport {
    /// Whether every implementation of every module verified.
    pub fn all_verified(&self) -> bool {
        self.modules.iter().all(|(_, r)| r.all_verified())
    }

    /// The report for a named module.
    pub fn for_module(&self, name: &str) -> Option<&Report> {
        self.modules.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

impl fmt::Display for ModularReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, report)) in self.modules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            let shown = if name.is_empty() { "(top level)" } else { name };
            write!(f, "module {shown}:")?;
            for rep in &report.impls {
                write!(f, "\n  impl {}: {}", rep.proc_name, rep.verdict)?;
            }
            if report.impls.is_empty() {
                write!(f, "\n  (no implementations)")?;
            }
        }
        Ok(())
    }
}

/// Checks a program module by module: each module's implementations are
/// verified against the module's own scope (its declarations plus
/// transitively imported modules plus top-level declarations) — the
/// piecewise checking the paper's modular soundness licenses.
///
/// # Errors
///
/// Returns diagnostics if the module structure is invalid or any module
/// scope fails analysis.
pub fn check_modular(
    program: &Program,
    options: &CheckOptions,
) -> Result<ModularReport, Diagnostics> {
    use oolong_syntax::Decl;
    let infos = oolong_sema::modules::modules(program)?;
    let mut modules = Vec::new();

    // Top-level implementations check against the whole program.
    let top_impls: Vec<&oolong_syntax::ImplDecl> = program
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Impl(i) => Some(i),
            _ => None,
        })
        .collect();
    if !top_impls.is_empty() {
        let flat = oolong_sema::flatten(program);
        let checker = Checker::new(&flat, options.clone())?;
        let report = Report {
            impls: checker
                .scope()
                .impls()
                .filter(|(_, info)| {
                    let name = &checker.scope().proc_info(info.proc).name;
                    top_impls
                        .iter()
                        .any(|ti| &ti.name.text == name && ti.body == info.body)
                })
                .map(|(id, _)| checker.check_impl(id))
                .collect(),
        };
        modules.push((String::new(), report));
    }

    for info in infos {
        let visible = oolong_sema::visible_program(program, &info.name)?;
        let checker = Checker::new(&visible, options.clone())?;
        modules.push((info.name, checker.check_all()));
    }
    Ok(ModularReport { modules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_program;

    fn check(src: &str) -> Report {
        Checker::new(&parse_program(src).unwrap(), CheckOptions::default())
            .unwrap()
            .check_all()
    }

    #[test]
    fn report_on_verifying_program() {
        let report = check(
            "group value
             field num in value
             proc bump(r) modifies r.value
             impl bump(r) { r.num := 3 }",
        );
        assert!(report.all_verified());
        let (v, r, u) = report.tally();
        assert_eq!((v, r, u), (1, 0, 0));
        assert!(report.to_string().contains("impl bump: verified"));
    }

    #[test]
    fn report_on_violating_program() {
        let report = check(
            "field f
             proc sneaky(r)
             impl sneaky(r) { r.f := 3 }",
        );
        assert!(!report.all_verified());
        assert_eq!(
            report.for_proc("sneaky").unwrap().verdict.label(),
            "not verified"
        );
    }

    #[test]
    fn restriction_violations_reported_before_proving() {
        let report = check(
            "group g
             field vec maps g into g
             proc p(st, r) modifies r.g
             field obj in g
             impl p(st, r) { r.obj := st.vec }",
        );
        let rep = report.for_proc("p").unwrap();
        assert_eq!(rep.verdict.label(), "restriction violation");
    }

    #[test]
    fn naive_mode_skips_restriction() {
        let src = "group g
             field vec maps g into g
             proc p(st, r) modifies r.g
             field obj in g
             impl p(st, r) { r.obj := st.vec }";
        let checker = Checker::new(
            &parse_program(src).unwrap(),
            CheckOptions {
                naive: true,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        let report = checker.check_all();
        let rep = report.for_proc("p").unwrap();
        assert_ne!(rep.verdict.label(), "restriction violation");
    }

    #[test]
    fn empty_scope_reports_nothing() {
        let report = check("group g");
        assert!(report.impls.is_empty());
        assert!(report.all_verified());
        assert_eq!(report.to_string(), "no implementations to check");
    }

    const MODULAR: &str = "
module vector_interface {
  group elems
  field cnt in elems
  proc vgrow(v) modifies v.elems
}
module vector_impl imports vector_interface {
  impl vgrow(v) { assume v != null ; v.cnt := v.cnt + 1 }
}
module stack_interface imports vector_interface {
  group contents
  proc push(s, o) modifies s.contents
}
module stack_impl imports stack_interface {
  field vec in contents maps elems into contents
  impl push(s, o) { assume s != null && s.vec != null ; vgrow(s.vec) }
}
";

    #[test]
    fn modular_check_verifies_each_module_in_its_scope() {
        let program = parse_program(MODULAR).unwrap();
        let report = check_modular(&program, &CheckOptions::default()).expect("checks");
        assert!(report.all_verified(), "{report}");
        assert_eq!(report.modules.len(), 4);
        let stack = report.for_module("stack_impl").expect("module exists");
        assert_eq!(stack.impls.len(), 1);
        assert!(report.to_string().contains("module stack_impl:"));
    }

    #[test]
    fn modular_check_catches_module_local_violations() {
        // vector_impl writes a field it has no license for.
        let bad = MODULAR.replace(
            "impl vgrow(v) { assume v != null ; v.cnt := v.cnt + 1 }",
            "field secret
             impl vgrow(v) { assume v != null ; v.secret := 1 }",
        );
        let program = parse_program(&bad).unwrap();
        let report = check_modular(&program, &CheckOptions::default()).expect("checks");
        assert!(!report.all_verified());
        assert!(!report.for_module("vector_impl").unwrap().all_verified());
        assert!(report.for_module("stack_impl").unwrap().all_verified());
    }

    #[test]
    fn whole_program_check_flattens_modules() {
        let program = parse_program(MODULAR).unwrap();
        let report = Checker::new(&program, CheckOptions::default())
            .expect("flattens")
            .check_all();
        assert!(report.all_verified());
        assert_eq!(report.impls.len(), 2);
    }

    #[test]
    fn top_level_impls_report_under_pseudo_module() {
        let program = parse_program(
            "module m { group g }
             field f in g
             proc p(t) modifies t.g
             impl p(t) { assume t != null ; t.f := 1 }",
        )
        .unwrap();
        let report = check_modular(&program, &CheckOptions::default()).expect("checks");
        assert!(report.all_verified(), "{report}");
        assert!(report.for_module("").is_some());
    }

    #[test]
    fn parallel_checking_agrees_with_sequential() {
        let program = parse_program(
            "group g field f in g
             proc p(t) modifies t.g
             impl p(t) { t.f := 1 }
             proc bad(t)
             impl bad(t) { t.f := 1 }",
        )
        .unwrap();
        let checker = Checker::new(&program, CheckOptions::default()).unwrap();
        let seq = checker.check_all();
        let par = checker.check_all_parallel();
        let labels = |r: &Report| -> Vec<(String, &'static str)> {
            r.impls
                .iter()
                .map(|i| (i.proc_name.clone(), i.verdict.label()))
                .collect()
        };
        assert_eq!(labels(&seq), labels(&par));
    }

    #[test]
    fn plain_programs_verify_at_the_arrays_level_too() {
        // force_arrays_level adds the extended axioms; a plain program's
        // verdicts must not change (only the work grows).
        let src = "group g
             field f in g
             proc p(t) modifies t.g
             impl p(t) { assume t != null ; t.f := 1 ; assert t.f = 1 }";
        let program = parse_program(src).unwrap();
        let plain = Checker::new(&program, CheckOptions::default())
            .unwrap()
            .check_all();
        let leveled = Checker::new(
            &program,
            CheckOptions {
                force_arrays_level: true,
                ..CheckOptions::default()
            },
        )
        .unwrap()
        .check_all();
        assert!(plain.all_verified());
        assert!(leveled.all_verified(), "{leveled}");
    }

    #[test]
    fn ill_formed_program_is_an_error() {
        assert!(Checker::new(
            &parse_program("impl nope() { skip }").unwrap(),
            CheckOptions::default()
        )
        .is_err());
    }
}
