//! The translation `tr` of oolong expressions into logic (Figure 2).
//!
//! `tr(c) = c`, `tr(x) = x`, `tr(E.f) = $(tr(E)·f)`, and `tr` is
//! homomorphic on operators. Dereferences `E.f` additionally produce the
//! well-definedness side condition `tr(E) ≠ null`, which the paper elides
//! "for brevity"; collection of these conditions is optional (see
//! [`CheckOptions::null_checks`](crate::CheckOptions)).
//!
//! Boolean-valued operators translate to formulas; oolong is untyped, but
//! storing the *result* of a comparison in a variable or field is not
//! something the paper's examples ever do, so expressions in *value*
//! position must be object/integer shaped (constants, variables,
//! designators, arithmetic). Violations are reported as translation errors.

use oolong_logic::{Atom, Formula, Term};
use oolong_syntax::{BinOp, Diagnostic, Expr, UnaryOp};

/// A translated value expression: its term and the accumulated
/// well-definedness conditions (one `≠ null` per dereference).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrValue {
    /// The logical term denoting the expression's value.
    pub term: Term,
    /// Non-null side conditions for every dereference performed.
    pub defined: Vec<Formula>,
}

/// A translated boolean expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrFormula {
    /// The logical formula denoting the expression's truth.
    pub formula: Formula,
    /// Non-null side conditions for every dereference performed.
    pub defined: Vec<Formula>,
}

/// Translates an expression in *value* position, reading object attributes
/// from the store denoted by `store`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] if the expression uses a boolean operator in
/// value position.
pub fn tr_value(expr: &Expr, store: &Term) -> Result<TrValue, Diagnostic> {
    let mut defined = Vec::new();
    let term = tr_value_inner(expr, store, &mut defined)?;
    Ok(TrValue { term, defined })
}

fn tr_value_inner(
    expr: &Expr,
    store: &Term,
    defined: &mut Vec<Formula>,
) -> Result<Term, Diagnostic> {
    match expr {
        Expr::Const(c, _) => Ok(match c {
            oolong_syntax::Const::Null => Term::null(),
            oolong_syntax::Const::Bool(b) => Term::boolean(*b),
            oolong_syntax::Const::Int(n) => Term::int(*n),
        }),
        Expr::Id(id) => Ok(Term::var(id.text.clone())),
        Expr::Select { base, attr, .. } => {
            let base_term = tr_value_inner(base, store, defined)?;
            defined.push(Formula::neq(base_term, Term::null()));
            Ok(Term::select(
                *store,
                base_term,
                Term::attr(attr.text.clone()),
            ))
        }
        Expr::Index { base, index, .. } => {
            // tr(E[I]) = $(tr(E)·tr(I)) — the store is untyped in its key
            // position, so integer slots reuse `select` directly.
            let base_term = tr_value_inner(base, store, defined)?;
            let index_term = tr_value_inner(index, store, defined)?;
            defined.push(Formula::neq(base_term, Term::null()));
            Ok(Term::select(*store, base_term, index_term))
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let l = tr_value_inner(lhs, store, defined)?;
            let r = tr_value_inner(rhs, store, defined)?;
            match op {
                BinOp::Add => Ok(Term::add(l, r)),
                BinOp::Sub => Ok(Term::sub(l, r)),
                BinOp::Mul => Ok(Term::mul(l, r)),
                _ => Err(Diagnostic::error(
                    format!("operator `{op}` yields a boolean and cannot appear in value position"),
                    *span,
                )),
            }
        }
        Expr::Unary { op, operand, span } => {
            let o = tr_value_inner(operand, store, defined)?;
            match op {
                UnaryOp::Neg => Ok(Term::neg(o)),
                UnaryOp::Not => Err(Diagnostic::error(
                    "operator `!` yields a boolean and cannot appear in value position",
                    *span,
                )),
            }
        }
    }
}

/// One heap read performed by an expression: a dereference `E.f` (or slot
/// read `E[I]`) with the object and attribute as terms evaluated in the
/// collection store, plus the dereference's source rendering and span for
/// obligation labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapRead {
    /// The read object, `tr(E)`.
    pub obj: Term,
    /// The read attribute (`Term::attr` for fields, `tr(I)` for slots).
    pub attr: Term,
    /// The dereference as written, e.g. `t.cnt`.
    pub desc: String,
    /// Span of the dereference expression.
    pub span: oolong_syntax::Span,
}

/// Collects every heap read `expr` performs, innermost first, reading from
/// the store denoted by `store`. Expressions that fail value translation
/// contribute no reads (the caller's own `tr_*` call reports the error).
pub fn heap_reads(expr: &Expr, store: &Term) -> Vec<HeapRead> {
    let mut out = Vec::new();
    collect_heap_reads(expr, store, &mut out);
    out
}

fn collect_heap_reads(expr: &Expr, store: &Term, out: &mut Vec<HeapRead>) {
    match expr {
        Expr::Select { base, attr, .. } => {
            collect_heap_reads(base, store, out);
            if let Ok(b) = tr_value(base, store) {
                out.push(HeapRead {
                    obj: b.term,
                    attr: Term::attr(attr.text.clone()),
                    desc: oolong_syntax::pretty::print_expr(expr),
                    span: expr.span(),
                });
            }
        }
        Expr::Index { base, index, .. } => {
            collect_heap_reads(base, store, out);
            collect_heap_reads(index, store, out);
            if let (Ok(b), Ok(i)) = (tr_value(base, store), tr_value(index, store)) {
                out.push(HeapRead {
                    obj: b.term,
                    attr: i.term,
                    desc: oolong_syntax::pretty::print_expr(expr),
                    span: expr.span(),
                });
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_heap_reads(lhs, store, out);
            collect_heap_reads(rhs, store, out);
        }
        Expr::Unary { operand, .. } => collect_heap_reads(operand, store, out),
        Expr::Const(..) | Expr::Id(_) => {}
    }
}

/// Translates an expression in *formula* position (an `assert`/`assume`
/// condition or `if` guard).
///
/// Non-boolean expressions (a variable, a field read) are interpreted as
/// propositions via `BoolTerm`, i.e. they hold when the value is `true`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] if arithmetic appears where only a proposition
/// makes sense in a way that cannot be interpreted (currently arithmetic is
/// always interpretable as a `BoolTerm`, so this only propagates inner
/// errors).
pub fn tr_formula(expr: &Expr, store: &Term) -> Result<TrFormula, Diagnostic> {
    let mut defined = Vec::new();
    let formula = tr_formula_inner(expr, store, &mut defined)?;
    Ok(TrFormula { formula, defined })
}

fn tr_formula_inner(
    expr: &Expr,
    store: &Term,
    defined: &mut Vec<Formula>,
) -> Result<Formula, Diagnostic> {
    match expr {
        Expr::Const(oolong_syntax::Const::Bool(true), _) => Ok(Formula::True),
        Expr::Const(oolong_syntax::Const::Bool(false), _) => Ok(Formula::False),
        Expr::Binary { op, lhs, rhs, .. } if op.is_predicate() => match op {
            BinOp::And => Ok(Formula::and(vec![
                tr_formula_inner(lhs, store, defined)?,
                tr_formula_inner(rhs, store, defined)?,
            ])),
            BinOp::Or => Ok(Formula::or(vec![
                tr_formula_inner(lhs, store, defined)?,
                tr_formula_inner(rhs, store, defined)?,
            ])),
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = tr_value_inner(lhs, store, defined)?;
                let r = tr_value_inner(rhs, store, defined)?;
                Ok(match op {
                    BinOp::Eq => Formula::eq(l, r),
                    BinOp::Ne => Formula::neq(l, r),
                    BinOp::Lt => Formula::Atom(Atom::Lt(l, r)),
                    BinOp::Le => Formula::Atom(Atom::Le(l, r)),
                    BinOp::Gt => Formula::Atom(Atom::Lt(r, l)),
                    BinOp::Ge => Formula::Atom(Atom::Le(r, l)),
                    _ => unreachable!("comparison ops handled above"),
                })
            }
            _ => unreachable!("is_predicate covers exactly these"),
        },
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
            ..
        } => Ok(Formula::not(tr_formula_inner(operand, store, defined)?)),
        other => {
            // A value used as a proposition: holds when it equals `true`.
            let term = tr_value_inner(other, store, defined)?;
            Ok(Formula::Atom(Atom::BoolTerm(term)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_syntax::parse_expr;

    fn value(src: &str) -> TrValue {
        tr_value(&parse_expr(src).expect("parses"), &Term::store()).expect("translates")
    }

    fn formula(src: &str) -> TrFormula {
        tr_formula(&parse_expr(src).expect("parses"), &Term::store()).expect("translates")
    }

    #[test]
    fn constants_translate_directly() {
        assert_eq!(value("null").term, Term::null());
        assert_eq!(value("42").term, Term::int(42));
        assert_eq!(value("true").term, Term::boolean(true));
    }

    #[test]
    fn dereference_chain_builds_selects() {
        let v = value("t.c.d");
        let inner = Term::select(Term::store(), Term::var("t"), Term::attr("c"));
        assert_eq!(v.term, Term::select(Term::store(), inner, Term::attr("d")));
        // Two dereferences, two definedness conditions.
        assert_eq!(v.defined.len(), 2);
        assert_eq!(v.defined[0], Formula::neq(Term::var("t"), Term::null()));
        assert_eq!(v.defined[1], Formula::neq(inner, Term::null()));
    }

    #[test]
    fn arithmetic_is_homomorphic() {
        let v = value("t.value + 1");
        assert_eq!(
            v.term,
            Term::add(
                Term::select(Term::store(), Term::var("t"), Term::attr("value")),
                Term::int(1)
            )
        );
    }

    #[test]
    fn boolean_op_in_value_position_rejected() {
        let e = parse_expr("a = b").unwrap();
        assert!(tr_value(&e, &Term::store()).is_err());
        let e2 = parse_expr("!a").unwrap();
        assert!(tr_value(&e2, &Term::store()).is_err());
    }

    #[test]
    fn equality_formula() {
        let f = formula("n = v.cnt");
        assert_eq!(
            f.formula,
            Formula::eq(
                Term::var("n"),
                Term::select(Term::store(), Term::var("v"), Term::attr("cnt"))
            )
        );
        assert_eq!(f.defined.len(), 1);
    }

    #[test]
    fn connectives_and_negation() {
        let f = formula("!(a = null) && (b = null || c = null)");
        match &f.formula {
            Formula::And(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
                assert!(matches!(parts[1], Formula::Or(_)));
            }
            other => panic!("expected conjunction, got {other}"),
        }
    }

    #[test]
    fn comparisons_normalise_gt_to_lt() {
        let f = formula("a > b");
        assert_eq!(
            f.formula,
            Formula::Atom(Atom::Lt(Term::var("b"), Term::var("a")))
        );
        let g = formula("a >= b");
        assert_eq!(
            g.formula,
            Formula::Atom(Atom::Le(Term::var("b"), Term::var("a")))
        );
    }

    #[test]
    fn variable_as_proposition() {
        let f = formula("flag");
        assert_eq!(f.formula, Formula::Atom(Atom::BoolTerm(Term::var("flag"))));
    }

    #[test]
    fn heap_reads_collects_dereferences_innermost_first() {
        let e = parse_expr("t.c.d + u.f").unwrap();
        let reads = heap_reads(&e, &Term::store());
        assert_eq!(reads.len(), 3);
        assert_eq!(reads[0].desc, "t.c");
        assert_eq!(reads[0].obj, Term::var("t"));
        assert_eq!(reads[0].attr, Term::attr("c"));
        assert_eq!(reads[1].desc, "t.c.d");
        assert_eq!(
            reads[1].obj,
            Term::select(Term::store(), Term::var("t"), Term::attr("c"))
        );
        assert_eq!(reads[2].desc, "u.f");
        // Slot reads use the translated index as the attribute.
        let s = heap_reads(&parse_expr("a[i].f").unwrap(), &Term::store());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].attr, Term::var("i"));
    }

    #[test]
    fn custom_store_is_threaded() {
        let store0 = Term::store0();
        let v = tr_value(&parse_expr("t.f").unwrap(), &store0).unwrap();
        assert_eq!(
            v.term,
            Term::select(Term::store0(), Term::var("t"), Term::attr("f"))
        );
    }
}
