//! The universal and scope-dependent background predicates (Sections 4.0
//! and 4.2).
//!
//! The **universal background predicate** `UBP` holds in every oolong
//! program: McCarthy's store axioms, the allocation axioms for `new(S)`
//! and `S⁺`, the inclusion connection (axiom (4)), transitivity of `≽`,
//! and — because every restricted program maintains them — the pivot
//! uniqueness axiom (6) and the acyclicity axiom (7). The last two are
//! omitted for the *naive* baseline checker, which models a system without
//! the paper's alias-confinement restrictions.
//!
//! The **scope-dependent background predicate** `BP_D` adds, per declared
//! attribute, the enumeration axioms for `⊒` and `→f` ((8) and (9)), the
//! ground inclusion facts they imply, and — for every declared non-pivot
//! field — the store-insensitivity of `≽` to its updates (a consequence of
//! the paper's insensitivity axiom specialised to a declared field, which
//! keeps E-matching tractable; the generic store-pair form quantifies over
//! two stores and has no usable trigger).

use oolong_logic::transform::FreshGen;
use oolong_logic::{Atom, Formula, Pattern, PatternPolicy, Symbol, Term, Trigger};
use oolong_sema::{AttrKind, Scope};

/// The single point where a background quantifier is built. Every axiom in
/// this file declares its [`PatternPolicy`] here, and the policy's trigger
/// list *is* the quantifier's trigger list — so the formula the prover
/// sees and the policy the scheduler honors can never disagree. The
/// policy-gate test (`tests/policy_gate.rs`) enforces that no other call
/// site in this file constructs a quantifier directly, which is what makes
/// heuristic trigger inference a user-level-only fallback.
fn declare(vars: Vec<Symbol>, policy: PatternPolicy, body: Formula) -> (Formula, PatternPolicy) {
    debug_assert!(
        policy.is_declared(),
        "background quantifiers must declare patterns"
    );
    let formula = Formula::forall(vars, policy.all_triggers(), body);
    (formula, policy)
}

/// A ground (quantifier-free) background fact: nothing to match, so the
/// policy declares no patterns and the phase is vacuously eager.
fn ground(formula: Formula) -> (Formula, PatternPolicy) {
    (formula, PatternPolicy::eager(Vec::new()))
}

/// Generates the universal background predicate as a list of axioms.
///
/// `alias_restrictions` selects whether the consequences of pivot
/// uniqueness and owner exclusion (axioms (6) and (7)) are included; the
/// naive baseline sets it to `false`.
///
/// `arrays` selects the array-dependencies *language level*: scopes that
/// declare `maps elem` clauses or use index syntax are checked with the
/// extended axiom (4) and the slot axioms; plain scopes use the paper's
/// original system. Scope monotonicity holds within a level (an
/// arrays-level extension of a plain scope requires re-checking the plain
/// modules at the arrays level).
pub fn universal_background(
    alias_restrictions: bool,
    arrays: bool,
    fresh: &mut FreshGen,
) -> Vec<Formula> {
    universal_background_named(alias_restrictions, arrays, fresh)
        .into_iter()
        .map(|(_, f)| f)
        .collect()
}

/// [`universal_background`] with a stable name attached to every axiom, so
/// slicing decisions, telemetry, and the slicing-soundness witness corpus
/// can refer to axioms by name instead of by position.
pub fn universal_background_named(
    alias_restrictions: bool,
    arrays: bool,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula)> {
    universal_background_policies(alias_restrictions, arrays, fresh)
        .into_iter()
        .map(|(name, f, _)| (name, f))
        .collect()
}

/// [`universal_background_named`] with each axiom's declared
/// [`PatternPolicy`] attached.
pub fn universal_background_policies(
    alias_restrictions: bool,
    arrays: bool,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms: Vec<(&'static str, (Formula, PatternPolicy))> = vec![
        ("select-update-same", select_update_same(fresh)),
        ("select-update-other", select_update_other(fresh)),
        ("new-unallocated", new_unallocated(fresh)),
        ("succ-allocates-new", succ_allocates_new(fresh)),
        ("succ-alive-iff", succ_alive_iff(fresh)),
        ("succ-preserves-select", succ_preserves_select(fresh)),
        ("update-preserves-alive", update_preserves_alive(fresh)),
        ("null-is-alive", null_is_alive(fresh)),
        ("reads-are-alive-or-null", reads_are_alive_or_null(fresh)),
        ("inclusion-connection", inclusion_connection(arrays, fresh)),
        ("inc-transitive", inc_transitive(fresh)),
        ("succ-preserves-inc", succ_preserves_inc(fresh)),
        ("local-inc-reflexive", local_inc_reflexive(fresh)),
        (
            "fresh-objects-are-objects",
            fresh_objects_are_objects(fresh),
        ),
    ];
    if arrays {
        axioms.push(("comparisons-are-ints", comparisons_are_ints(fresh)));
    }
    if alias_restrictions {
        axioms.push(("pivot-uniqueness", pivot_uniqueness(fresh)));
        axioms.push(("owner-acyclicity", owner_acyclicity(fresh)));
        axioms.push(("pivot-values-are-objects", pivot_values_are_objects(fresh)));
        if arrays {
            axioms.push(("slot-uniqueness", slot_uniqueness(fresh)));
            axioms.push(("slot-values-are-objects", slot_values_are_objects(fresh)));
            axioms.push((
                "owner-acyclicity-elem-array",
                owner_acyclicity_elem_array(fresh),
            ));
            axioms.push(("owner-acyclicity-element", owner_acyclicity_element(fresh)));
            axioms.push(("elem-pivot-uniqueness", elem_pivot_uniqueness(fresh)));
            axioms.push((
                "elem-pivot-values-are-objects",
                elem_pivot_values_are_objects(fresh),
            ));
            axioms.push(("pivots-are-attributes", pivots_are_attributes(fresh)));
        }
    }
    axioms
        .into_iter()
        .map(|(name, (f, policy))| (name.to_string(), f, policy))
        .collect()
}

/// The complete background a verification condition asserts for `scope`,
/// in assertion order, with stable axiom names: the universal background,
/// then the scope-dependent background, then — when `alias_restrictions`
/// is off, i.e. for the naive baseline — the closed-world additions.
///
/// `vc_for_impl` builds `Vc::hypotheses[..background_hyps]` from exactly
/// this list in exactly this order, so the names here index the VC's
/// background hypotheses one-for-one.
pub fn named_background(
    scope: &Scope,
    alias_restrictions: bool,
    arrays: bool,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula)> {
    named_background_policies(scope, alias_restrictions, arrays, fresh)
        .into_iter()
        .map(|(name, f, _)| (name, f))
        .collect()
}

/// [`named_background`] with each axiom's declared [`PatternPolicy`]
/// attached, in the same order. The policies' [`Phase`] column is the
/// input to the prover's two-phase schedule (and to the engine's
/// fingerprint phase mask), so it must stay in lockstep with the
/// hypothesis list — which it does by construction, being the same list.
pub fn named_background_policies(
    scope: &Scope,
    alias_restrictions: bool,
    arrays: bool,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms = universal_background_policies(alias_restrictions, arrays, fresh);
    axioms.extend(scope_background_policies(scope, fresh));
    if !alias_restrictions {
        axioms.extend(closed_world_background_policies(scope, fresh));
    }
    axioms
}

/// Generates the *closed-world* additions to the scope background used by
/// the naive baseline checker: the eventual program is assumed to declare
/// **no** inclusions beyond those visible in the scope. This is the
/// classically unsound design the paper's Section 3 dismantles — it makes
/// `q` (§3.0) checkable in the small scope, and then fails scope
/// monotonicity the moment the pivot declaration comes into view.
pub fn closed_world_background(scope: &Scope, fresh: &mut FreshGen) -> Vec<Formula> {
    closed_world_background_named(scope, fresh)
        .into_iter()
        .map(|(_, f)| f)
        .collect()
}

/// [`closed_world_background`] with stable axiom names.
pub fn closed_world_background_named(
    scope: &Scope,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula)> {
    closed_world_background_policies(scope, fresh)
        .into_iter()
        .map(|(name, f, _)| (name, f))
        .collect()
}

/// [`closed_world_background_named`] with declared pattern policies. Both
/// enumeration axioms are goal-directed: they fire once per rep/local
/// inclusion atom, and asserting them against a goalless background
/// enumerates the scope's whole declaration table into every context.
pub fn closed_world_background_policies(
    scope: &Scope,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms = Vec::new();

    // ∀A,F,B :: A →F B ⇒ ⋁ declared triples.
    {
        let (av, fv, bv) = (fresh.fresh("cwA"), fresh.fresh("cwF"), fresh.fresh("cwB"));
        let atom = Atom::RepInc {
            group: Term::var(av),
            pivot: Term::var(fv),
            mapped: Term::var(bv),
        };
        let arms = scope
            .rep_triples()
            .into_iter()
            .map(|(g, f, b)| {
                Formula::and(vec![
                    Formula::eq(Term::var(av), Term::attr(scope.attr_info(g).name.clone())),
                    Formula::eq(Term::var(fv), Term::attr(scope.attr_info(f).name.clone())),
                    Formula::eq(Term::var(bv), Term::attr(scope.attr_info(b).name.clone())),
                ])
            })
            .collect();
        let (formula, policy) = declare(
            vec![av, fv, bv],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::implies(Formula::Atom(atom), Formula::or(arms)),
        );
        axioms.push(("closed-world-rep".to_string(), formula, policy));
    }

    // ∀G,A :: G ⊒ A ⇒ G = A ∨ ⋁ declared enclosing pairs.
    {
        let (gv, av) = (fresh.fresh("cwG"), fresh.fresh("cwA"));
        let atom = Atom::LocalInc(Term::var(gv), Term::var(av));
        let mut arms = vec![Formula::eq(Term::var(gv), Term::var(av))];
        for (attr, info) in scope.attrs() {
            for &g in scope.enclosing_groups(attr) {
                arms.push(Formula::and(vec![
                    Formula::eq(Term::var(gv), Term::attr(scope.attr_info(g).name.clone())),
                    Formula::eq(Term::var(av), Term::attr(info.name.clone())),
                ]));
            }
        }
        let (formula, policy) = declare(
            vec![gv, av],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::implies(Formula::Atom(atom), Formula::or(arms)),
        );
        axioms.push(("closed-world-local".to_string(), formula, policy));
    }

    axioms
}

/// Generates the scope-dependent background predicate `BP_D`.
pub fn scope_background(scope: &Scope, fresh: &mut FreshGen) -> Vec<Formula> {
    scope_background_named(scope, fresh)
        .into_iter()
        .map(|(_, f)| f)
        .collect()
}

/// [`scope_background`] with stable axiom names (parameterized by the
/// declared attribute names involved).
pub fn scope_background_named(scope: &Scope, fresh: &mut FreshGen) -> Vec<(String, Formula)> {
    scope_background_policies(scope, fresh)
        .into_iter()
        .map(|(name, f, _)| (name, f))
        .collect()
}

/// [`scope_background_named`] with declared pattern policies. The ground
/// inclusion facts are (vacuously) eager; the per-attribute and per-field
/// *enumeration* axioms are goal-directed — they fire on every ground
/// `⊒`/`→f` fact, so letting them run during goalless pre-saturation
/// enumerates the scope's whole declaration lattice (and, through the
/// `Iff` bodies' freshly interned arm atoms, re-triggers itself) in every
/// context whether or not an obligation ever asks.
pub fn scope_background_policies(
    scope: &Scope,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms = Vec::new();

    for (attr_id, info) in scope.attrs() {
        let a = Term::attr(info.name.clone());
        // Ground reflexivity and the declared transitive enclosing groups.
        let (f, policy) = ground(Formula::Atom(Atom::LocalInc(a, a)));
        axioms.push((format!("local-inc-refl:{}", info.name), f, policy));
        for &g in scope.enclosing_groups(attr_id) {
            let g_name = &scope.attr_info(g).name;
            let (f, policy) = ground(Formula::Atom(Atom::LocalInc(Term::attr(g_name.clone()), a)));
            axioms.push((format!("local-inc:{}>{}", g_name, info.name), f, policy));
        }
        // Enumeration axiom for ⊒ into this attribute:
        //   ∀G :: G ⊒ a ⇔ (G = a ∨ G = g₁ ∨ … ∨ G = gₙ).
        let gv = fresh.fresh("bgG");
        let mut arms = vec![Formula::eq(Term::var(gv), a)];
        for &g in scope.enclosing_groups(attr_id) {
            arms.push(Formula::eq(
                Term::var(gv),
                Term::attr(scope.attr_info(g).name.clone()),
            ));
        }
        let atom = Atom::LocalInc(Term::var(gv), a);
        let (f, policy) = declare(
            vec![gv],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::Iff(Box::new(Formula::Atom(atom)), Box::new(Formula::or(arms))),
        );
        axioms.push((format!("local-inc-enum:{}", info.name), f, policy));

        if info.kind == AttrKind::Field {
            // Fields have no proper members: ∀B :: a ⊒ B ⇒ B = a. Members
            // attach to groups only (sema rejects `in` clauses naming a
            // field), so no scope extension can ever put an attribute
            // below a field — unlike the group enumeration, this closed
            // form is scope-monotone. It discharges owner-exclusion
            // obligations at calls whose refutation witness bottoms out
            // below a field-level modifies entry with a quantified
            // member attribute.
            let bv = fresh.fresh("bgB");
            let below = Atom::LocalInc(a, Term::var(bv));
            let (f, policy) = declare(
                vec![bv],
                PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(below)])]),
                Formula::implies(Formula::Atom(below), Formula::eq(Term::var(bv), a)),
            );
            axioms.push((format!("local-inc-members:{}", info.name), f, policy));
            axioms.extend(field_rep_axioms(scope, attr_id, &a, fresh));
        }
    }

    // Ground rep-inclusion facts a →f b for every declared triple.
    for (g, f, b) in scope.rep_triples() {
        let (g_name, f_name, b_name) = (
            &scope.attr_info(g).name,
            &scope.attr_info(f).name,
            &scope.attr_info(b).name,
        );
        let (formula, policy) = ground(Formula::Atom(Atom::RepInc {
            group: Term::attr(g_name.clone()),
            pivot: Term::attr(f_name.clone()),
            mapped: Term::attr(b_name.clone()),
        }));
        axioms.push((format!("rep:{g_name}-{f_name}>{b_name}"), formula, policy));
    }
    // Ground elementwise facts a ⇉f b (array dependencies).
    for (g, f, b) in scope.rep_elem_triples() {
        let (g_name, f_name, b_name) = (
            &scope.attr_info(g).name,
            &scope.attr_info(f).name,
            &scope.attr_info(b).name,
        );
        let (formula, policy) = ground(Formula::Atom(Atom::RepIncElem {
            group: Term::attr(g_name.clone()),
            pivot: Term::attr(f_name.clone()),
            mapped: Term::attr(b_name.clone()),
        }));
        axioms.push((
            format!("rep-elem:{g_name}-{f_name}>{b_name}"),
            formula,
            policy,
        ));
    }

    // Read-frame inclusion: read frames license dereferences through `≽`
    // exactly like modifies lists, but where a modifies entry's reflexive
    // inclusion is pre-derived per-VC, read obligations ask about
    // arbitrary select chains. Scopes declaring read frames get the
    // reflexive case as a general axiom, goal-directed on the reflexive
    // inclusion atom itself (it is derivable from `local-inc-reflexive`
    // via the inclusion connection; asserting it directly saves a
    // matching generation on every read license).
    if scope.has_read_frames() {
        let (s, x, a) = (fresh.fresh("rfS"), fresh.fresh("rfX"), fresh.fresh("rfA"));
        let atom = Atom::Inc {
            store: Term::var(s),
            obj: Term::var(x),
            attr: Term::var(a),
            obj2: Term::var(x),
            attr2: Term::var(a),
        };
        let (formula, policy) = declare(
            vec![s, x, a],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::Atom(atom),
        );
        axioms.push(("read-frame-inc-reflexive".to_string(), formula, policy));
    }

    axioms
}

fn field_rep_axioms(
    scope: &Scope,
    field: oolong_sema::AttrId,
    f: &Term,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms = Vec::new();
    let field_name = &scope.attr_info(field).name;
    let mapped = scope.mapped_attrs(field);
    axioms.extend(field_rep_elem_axioms(scope, field, f, fresh));

    // Axiom (8): ∀A,B :: A →f B ⇒ (B = b₁ ∨ … ∨ B = bₙ); empty → ¬(A →f B).
    {
        let av = fresh.fresh("bgA");
        let bv = fresh.fresh("bgB");
        let atom = Atom::RepInc {
            group: Term::var(av),
            pivot: *f,
            mapped: Term::var(bv),
        };
        let arms = mapped
            .iter()
            .map(|&b| Formula::eq(Term::var(bv), Term::attr(scope.attr_info(b).name.clone())))
            .collect();
        let (formula, policy) = declare(
            vec![av, bv],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::implies(Formula::Atom(atom), Formula::or(arms)),
        );
        axioms.push((format!("rep-range:{field_name}"), formula, policy));
    }

    // Axiom (9), per mapped attribute b:
    //   ∀A :: A →f b ⇔ (A = a₁ ∨ … ∨ A = aₙ).
    for &b in &mapped {
        let av = fresh.fresh("bgA");
        let b_name = &scope.attr_info(b).name;
        let b_term = Term::attr(b_name.clone());
        let atom = Atom::RepInc {
            group: Term::var(av),
            pivot: *f,
            mapped: b_term,
        };
        let arms = scope
            .mappers(field, b)
            .iter()
            .map(|&a| Formula::eq(Term::var(av), Term::attr(scope.attr_info(a).name.clone())))
            .collect();
        let (formula, policy) = declare(
            vec![av],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::Iff(Box::new(Formula::Atom(atom)), Box::new(Formula::or(arms))),
        );
        axioms.push((
            format!("rep-mappers:{field_name}>{b_name}"),
            formula,
            policy,
        ));
    }

    // Store-insensitivity of ≽ to updates of a declared non-pivot field
    // (no ordinary and no elementwise maps clauses):
    //   ∀S,Z,V,X,A,Y,B :: (S(Z·f := V) ⊨ X·A ≽ Y·B) ⇔ (S ⊨ X·A ≽ Y·B).
    if mapped.is_empty() && scope.mapped_attrs_kind(field, true).is_empty() {
        let (s, z, v, x, a, y, b) = (
            fresh.fresh("bgS"),
            fresh.fresh("bgZ"),
            fresh.fresh("bgV"),
            fresh.fresh("bgX"),
            fresh.fresh("bgA"),
            fresh.fresh("bgY"),
            fresh.fresh("bgB"),
        );
        let updated = Term::update(Term::var(s), Term::var(z), *f, Term::var(v));
        let inc_upd = Atom::Inc {
            store: updated,
            obj: Term::var(x),
            attr: Term::var(a),
            obj2: Term::var(y),
            attr2: Term::var(b),
        };
        let inc_base = Atom::Inc {
            store: Term::var(s),
            obj: Term::var(x),
            attr: Term::var(a),
            obj2: Term::var(y),
            attr2: Term::var(b),
        };
        let _ = updated;
        // Query-driven: one trigger on the post-update side only. Nothing
        // in a goalless background contains an update term, so the axiom
        // is goal-directed — it can only fire once an obligation's
        // post-state `≽` queries exist.
        let (formula, policy) = declare(
            vec![s, z, v, x, a, y, b],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(inc_upd)])]),
            Formula::Iff(
                Box::new(Formula::Atom(inc_upd)),
                Box::new(Formula::Atom(inc_base)),
            ),
        );
        axioms.push((format!("store-insensitive:{field_name}"), formula, policy));
    }

    axioms
}

/// The elementwise analogues of axioms (8) and (9) for a declared field:
/// the `maps elem` clauses of `f` fully determine `· ⇉f ·`.
fn field_rep_elem_axioms(
    scope: &Scope,
    field: oolong_sema::AttrId,
    f: &Term,
    fresh: &mut FreshGen,
) -> Vec<(String, Formula, PatternPolicy)> {
    let mut axioms = Vec::new();
    let field_name = &scope.attr_info(field).name;
    let mapped = scope.mapped_attrs_kind(field, true);

    // (8)-elem: ∀A,B :: A ⇉f B ⇒ (B = b₁ ∨ …); empty → ¬(A ⇉f B).
    {
        let av = fresh.fresh("bgA");
        let bv = fresh.fresh("bgB");
        let atom = Atom::RepIncElem {
            group: Term::var(av),
            pivot: *f,
            mapped: Term::var(bv),
        };
        let arms = mapped
            .iter()
            .map(|&b| Formula::eq(Term::var(bv), Term::attr(scope.attr_info(b).name.clone())))
            .collect();
        let (formula, policy) = declare(
            vec![av, bv],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::implies(Formula::Atom(atom), Formula::or(arms)),
        );
        axioms.push((format!("rep-elem-range:{field_name}"), formula, policy));
    }

    // (9)-elem, per mapped attribute b: ∀A :: A ⇉f b ⇔ (A = a₁ ∨ …).
    for &b in &mapped {
        let av = fresh.fresh("bgA");
        let b_name = &scope.attr_info(b).name;
        let b_term = Term::attr(b_name.clone());
        let atom = Atom::RepIncElem {
            group: Term::var(av),
            pivot: *f,
            mapped: b_term,
        };
        let arms = scope
            .mappers_kind(field, b, true)
            .iter()
            .map(|&a| Formula::eq(Term::var(av), Term::attr(scope.attr_info(a).name.clone())))
            .collect();
        let (formula, policy) = declare(
            vec![av],
            PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Atom(atom)])]),
            Formula::Iff(Box::new(Formula::Atom(atom)), Box::new(Formula::or(arms))),
        );
        axioms.push((
            format!("rep-elem-mappers:{field_name}>{b_name}"),
            formula,
            policy,
        ));
    }

    axioms
}

// ----------------------------------------------------------------- UBP parts

/// `∀S,X,A,V :: select(S(X·A := V), X, A) = V`.
fn select_update_same(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, v) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubV"),
    );
    let upd = Term::update(Term::var(s), Term::var(x), Term::var(a), Term::var(v));
    let body = Formula::eq(Term::select(upd, Term::var(x), Term::var(a)), Term::var(v));
    declare(
        vec![s, x, a, v],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Term(upd)])]),
        body,
    )
}

/// `∀S,X,A,V,Y,B :: (X = Y ∧ A = B) ∨ select(S(X·A := V), Y, B) = select(S, Y, B)`.
fn select_update_other(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, v, y, b) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubV"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let upd = Term::update(Term::var(s), Term::var(x), Term::var(a), Term::var(v));
    let read = Term::select(upd, Term::var(y), Term::var(b));
    let body = Formula::or(vec![
        Formula::and(vec![
            Formula::eq(Term::var(x), Term::var(y)),
            Formula::eq(Term::var(a), Term::var(b)),
        ]),
        Formula::eq(read, Term::select(Term::var(s), Term::var(y), Term::var(b))),
    ]);
    declare(
        vec![s, x, a, v, y, b],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Term(read)])]),
        body,
    )
}

/// `∀S :: ¬alive(S, new(S)) ∧ new(S) ≠ null`.
fn new_unallocated(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let s = fresh.fresh("ubS");
    let new = Term::new_obj(Term::var(s));
    let body = Formula::and(vec![
        Formula::not(Formula::Atom(Atom::Alive(Term::var(s), new))),
        Formula::neq(new, Term::null()),
    ]);
    declare(
        vec![s],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Term(new)])]),
        body,
    )
}

/// `∀S :: alive(S⁺, new(S))`.
fn succ_allocates_new(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let s = fresh.fresh("ubS");
    let succ = Term::succ(Term::var(s));
    let body = Formula::Atom(Atom::Alive(succ, Term::new_obj(Term::var(s))));
    declare(
        vec![s],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Term(succ)])]),
        body,
    )
}

/// `∀S,X :: alive(S⁺, X) ⇔ (alive(S, X) ∨ X = new(S))` — `S ⊑ S⁺` and
/// `S⁺` allocates exactly `new(S)`, stated as a single query-driven
/// equivalence (it fires only when some `alive(S⁺, X)` node exists, which
/// keeps instantiation from fanning out over every store/object pair).
fn succ_alive_iff(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x) = (fresh.fresh("ubS"), fresh.fresh("ubX"));
    let post = Atom::Alive(Term::succ(Term::var(s)), Term::var(x));
    let pre = Formula::or(vec![
        Formula::Atom(Atom::Alive(Term::var(s), Term::var(x))),
        Formula::eq(Term::var(x), Term::new_obj(Term::var(s))),
    ]);
    declare(
        vec![s, x],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(post)])]),
        Formula::Iff(Box::new(Formula::Atom(post)), Box::new(pre)),
    )
}

/// `∀S,X,A :: select(S⁺, X, A) = select(S, X, A)` (other half of `S ⊑ S⁺`,
/// strengthened to all objects — allocation does not change any attribute
/// value).
fn succ_preserves_select(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a) = (fresh.fresh("ubS"), fresh.fresh("ubX"), fresh.fresh("ubA"));
    let succ = Term::succ(Term::var(s));
    let post = Term::select(succ, Term::var(x), Term::var(a));
    let pre = Term::select(Term::var(s), Term::var(x), Term::var(a));
    let triggers = vec![
        Trigger(vec![Pattern::Term(post)]),
        Trigger(vec![Pattern::Term(pre), Pattern::Term(succ)]),
    ];
    declare(
        vec![s, x, a],
        PatternPolicy::eager(triggers),
        Formula::eq(post, pre),
    )
}

/// `∀S,Z,F,V,X :: alive(S(Z·F := V), X) ⇔ alive(S, X)` — field updates do
/// not allocate.
fn update_preserves_alive(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, z, fv, v, x) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubZ"),
        fresh.fresh("ubF"),
        fresh.fresh("ubV"),
        fresh.fresh("ubX"),
    );
    let upd = Term::update(Term::var(s), Term::var(z), Term::var(fv), Term::var(v));
    let post = Atom::Alive(upd, Term::var(x));
    let pre = Atom::Alive(Term::var(s), Term::var(x));
    // Query-driven: one trigger on the post-update side only.
    declare(
        vec![s, z, fv, v, x],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(post)])]),
        Formula::Iff(Box::new(Formula::Atom(post)), Box::new(Formula::Atom(pre))),
    )
}

/// `∀S,X :: alive(S, null)` — `null` (like every non-object value) counts
/// as allocated; only genuinely fresh objects are non-alive. Triggered by
/// any aliveness query on the store and non-splitting: congruence links it
/// to `alive(S, v)` queries once `v = null` is known.
fn null_is_alive(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x) = (fresh.fresh("ubS"), fresh.fresh("ubX"));
    let query = Atom::Alive(Term::var(s), Term::var(x));
    let fact = Atom::Alive(Term::var(s), Term::null());
    declare(
        vec![s, x],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(query)])]),
        Formula::Atom(fact),
    )
}

/// `∀S,X,A :: select(S, X, A) = null ∨ alive(S, select(S, X, A))` — in
/// every store the semantics constructs, field values are null or
/// allocated (objects enter the store only through evaluated expressions,
/// which denote allocated values). This is the standard "reachable store"
/// axiom ESC-style checkers add; §3.0's `q` needs it to know the value
/// returned through `result.obj` is not a fresh object the callee could
/// freely mutate.
fn reads_are_alive_or_null(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, s2) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
    );
    let read = Term::select(Term::var(s), Term::var(x), Term::var(a));
    let body = Formula::or(vec![
        Formula::eq(read, Term::null()),
        Formula::Atom(Atom::Alive(Term::var(s), read)),
    ]);
    // Query-driven: fires only when the aliveness of a read is in
    // question (in any store S2), not for every select term.
    let query = Atom::Alive(Term::var(s2), read);
    declare(
        vec![s, x, a, s2],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(query)])]),
        body,
    )
}

/// `a < b` or `a ≤ b` being *true* implies both operands are integers:
/// comparisons of non-integers go wrong operationally, so on every
/// surviving path the operands are integers. This is how `assume i >= 0`
/// lets the checker conclude `isInt(i)` for an array index parameter.
fn comparisons_are_ints(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (a, b) = (fresh.fresh("ubA"), fresh.fresh("ubB"));
    let lt = Atom::Lt(Term::var(a), Term::var(b));
    let le = Atom::Le(Term::var(a), Term::var(b));
    let ints = Formula::and(vec![
        Formula::Atom(Atom::IsInt(Term::var(a))),
        Formula::Atom(Atom::IsInt(Term::var(b))),
    ]);
    declare(
        vec![a, b],
        PatternPolicy::eager(vec![
            Trigger(vec![Pattern::Atom(lt)]),
            Trigger(vec![Pattern::Atom(le)]),
        ]),
        Formula::and(vec![
            Formula::implies(Formula::Atom(lt), ints.clone()),
            Formula::implies(Formula::Atom(le), ints),
        ]),
    )
}

/// The inclusion connection, axiom (4), extended with the array
/// dependencies of §6:
///
/// ```text
/// S ⊨ X·A ≽ Y·B  ⇔  (X = Y ∧ A ⊒ B)
///                 ∨ (X ≠ Y ∧ Y ≠ null ∧ (∃Z,H,F,K :: S ⊨ X·A ≽ Z·H ∧ H →F K
///                                        ∧ Y = S(Z·F) ∧ K ⊒ B))
///                 ∨ (X ≠ Y ∧ Y ≠ null ∧ isInt(B)
///                    ∧ (∃Z,H,F,K :: S ⊨ X·A ≽ Z·H ∧ H ⇉F K ∧ Y = S(Z·F)))
///                 ∨ (X ≠ Y ∧ Y ≠ null
///                    ∧ (∃Z,H,F,K,R,I :: S ⊨ X·A ≽ Z·H ∧ H ⇉F K ∧ R = S(Z·F)
///                       ∧ R ≠ null ∧ isInt(I) ∧ Y = S(R·I) ∧ K ⊒ B))
/// ```
///
/// The third disjunct licenses every integer slot of an elem-pivot's
/// array; the fourth licenses attribute `B` (under `K ⊒ B`) of every
/// element stored in those slots.
///
/// The `Y ≠ null` conjunct reflects that rep chains reach locations of
/// real representation objects only; without it, an extension's null pivot
/// would give callees license on locations of `null`, making §3.0's `q`
/// unverifiable.
fn inclusion_connection(arrays: bool, fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, y, b) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let (z, h, f, k) = (
        fresh.fresh("ubZ"),
        fresh.fresh("ubH"),
        fresh.fresh("ubF"),
        fresh.fresh("ubK"),
    );
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(y),
        attr2: Term::var(b),
    };
    let local_case = Formula::and(vec![
        Formula::eq(Term::var(x), Term::var(y)),
        Formula::Atom(Atom::LocalInc(Term::var(a), Term::var(b))),
    ]);
    let chain_inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(z),
        attr2: Term::var(h),
    };
    let chain_rep = Atom::RepInc {
        group: Term::var(h),
        pivot: Term::var(f),
        mapped: Term::var(k),
    };
    let chain_read = Term::select(Term::var(s), Term::var(z), Term::var(f));
    let chain = Formula::exists_with_triggers(
        vec![z, h, f, k],
        // Selective triggers for the negated (universal) reading: an
        // inclusion prefix + rep declaration, or a pivot read + rep
        // declaration.
        vec![
            Trigger(vec![Pattern::Atom(chain_inc), Pattern::Atom(chain_rep)]),
            Trigger(vec![Pattern::Term(chain_read), Pattern::Atom(chain_rep)]),
        ],
        Formula::and(vec![
            Formula::Atom(chain_inc),
            Formula::Atom(chain_rep),
            Formula::eq(
                Term::var(y),
                Term::select(Term::var(s), Term::var(z), Term::var(f)),
            ),
            Formula::Atom(Atom::LocalInc(Term::var(k), Term::var(b))),
        ]),
    );
    // Factor the common guards: X ≠ Y ∧ Y ≠ null apply to every
    // non-local case; keeping them shared cuts case-split fan-out.
    let mut chains = vec![chain];
    if arrays {
        chains.push(Formula::and(vec![
            Formula::Atom(Atom::IsInt(Term::var(b))),
            slot_chain_body(fresh, s, x, a, y),
        ]));
        chains.push(elem_chain_body(fresh, s, x, a, y, b));
    }
    let nonlocal_case = Formula::and(vec![
        Formula::neq(Term::var(x), Term::var(y)),
        Formula::neq(Term::var(y), Term::null()),
        Formula::or(chains),
    ]);
    // Eager despite its size: the trigger is an `≽` atom, and a goalless
    // background contains none, so pre-saturation never fires it — while
    // gating it would clone its (large) body into every obligation frame.
    declare(
        vec![s, x, a, y, b],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(inc)])]),
        Formula::Iff(
            Box::new(Formula::Atom(inc)),
            Box::new(Formula::or(vec![local_case, nonlocal_case])),
        ),
    )
}

/// The elementwise *slot* chain of extended axiom (4):
/// `∃Z,H,F,K :: S ⊨ X·A ≽ Z·H ∧ H ⇉F K ∧ Y = S(Z·F)`.
fn slot_chain_body(fresh: &mut FreshGen, s: Symbol, x: Symbol, a: Symbol, y: Symbol) -> Formula {
    let (z, h, f, k) = (
        fresh.fresh("ubZ"),
        fresh.fresh("ubH"),
        fresh.fresh("ubF"),
        fresh.fresh("ubK"),
    );
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(z),
        attr2: Term::var(h),
    };
    let rep = Atom::RepIncElem {
        group: Term::var(h),
        pivot: Term::var(f),
        mapped: Term::var(k),
    };
    let read = Term::select(Term::var(s), Term::var(z), Term::var(f));
    Formula::exists_with_triggers(
        vec![z, h, f, k],
        vec![
            Trigger(vec![Pattern::Atom(inc), Pattern::Atom(rep)]),
            Trigger(vec![Pattern::Term(read), Pattern::Atom(rep)]),
        ],
        Formula::and(vec![
            Formula::Atom(inc),
            Formula::Atom(rep),
            Formula::eq(Term::var(y), read),
        ]),
    )
}

/// The elementwise *element* chain of extended axiom (4):
/// `∃Z,H,F,K,R,I :: S ⊨ X·A ≽ Z·H ∧ H ⇉F K ∧ R = S(Z·F) ∧ R ≠ null
///                 ∧ isInt(I) ∧ Y = S(R·I) ∧ K ⊒ B`.
fn elem_chain_body(
    fresh: &mut FreshGen,
    s: Symbol,
    x: Symbol,
    a: Symbol,
    y: Symbol,
    b: Symbol,
) -> Formula {
    let (z, h, f, k, i) = (
        fresh.fresh("ubZ"),
        fresh.fresh("ubH"),
        fresh.fresh("ubF"),
        fresh.fresh("ubK"),
        fresh.fresh("ubI"),
    );
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(z),
        attr2: Term::var(h),
    };
    let rep = Atom::RepIncElem {
        group: Term::var(h),
        pivot: Term::var(f),
        mapped: Term::var(k),
    };
    let arr = Term::select(Term::var(s), Term::var(z), Term::var(f));
    let slot = Term::select(Term::var(s), arr, Term::var(i));
    Formula::exists_with_triggers(
        vec![z, h, f, k, i],
        // The nested slot-read pattern keeps the negated reading from
        // firing on every select pair.
        vec![
            Trigger(vec![
                Pattern::Atom(inc),
                Pattern::Atom(rep),
                Pattern::Term(slot),
            ]),
            Trigger(vec![Pattern::Term(slot), Pattern::Atom(rep)]),
        ],
        Formula::and(vec![
            Formula::Atom(inc),
            Formula::Atom(rep),
            Formula::neq(arr, Term::null()),
            Formula::Atom(Atom::IsInt(Term::var(i))),
            Formula::eq(Term::var(y), slot),
            Formula::Atom(Atom::LocalInc(Term::var(k), Term::var(b))),
        ]),
    )
}

/// Transitivity of `≽` (stated as a universal background axiom in §4.0).
fn inc_transitive(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, y, b, z, c) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
        fresh.fresh("ubZ"),
        fresh.fresh("ubC"),
    );
    let first = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(y),
        attr2: Term::var(b),
    };
    let second = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(y),
        attr: Term::var(b),
        obj2: Term::var(z),
        attr2: Term::var(c),
    };
    let conclusion = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(z),
        attr2: Term::var(c),
    };
    // MPAT: both premise inclusions must match under one binding. Goal
    // directed — transitivity chains grow quadratically when saturated
    // without a goal to aim the chain at.
    let trigger = Trigger(vec![Pattern::Atom(first), Pattern::Atom(second)]);
    declare(
        vec![s, x, a, y, b, z, c],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(
            Formula::and(vec![Formula::Atom(first), Formula::Atom(second)]),
            Formula::Atom(conclusion),
        ),
    )
}

/// `≽` is insensitive to allocation: `S⁺ ⊨ X·A ≽ Y·B ⇔ S ⊨ X·A ≽ Y·B`
/// (a special case of the paper's store-insensitivity axiom — `S` and `S⁺`
/// agree on every attribute value).
fn succ_preserves_inc(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, a, y, b) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubA"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let succ = Term::succ(Term::var(s));
    let inc_succ = Atom::Inc {
        store: succ,
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(y),
        attr2: Term::var(b),
    };
    let inc_base = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(x),
        attr: Term::var(a),
        obj2: Term::var(y),
        attr2: Term::var(b),
    };
    let _ = (&inc_base, succ);
    // Query-driven: one trigger on the post-allocation side only.
    declare(
        vec![s, x, a, y, b],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(inc_succ)])]),
        Formula::Iff(
            Box::new(Formula::Atom(inc_succ)),
            Box::new(Formula::Atom(inc_base)),
        ),
    )
}

/// `∀A :: A ⊒ A` — reflexivity of the local inclusion relation, triggered
/// only when a reflexive query term exists.
fn local_inc_reflexive(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let a = fresh.fresh("ubA");
    let atom = Atom::LocalInc(Term::var(a), Term::var(a));
    declare(
        vec![a],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Atom(atom)])]),
        Formula::Atom(atom),
    )
}

/// Axiom (6): non-null pivot values are unique —
///
/// ```text
/// G →F A ∧ S(X·F) ≠ null ∧ S(X·F) = S(Y·B) ⇒ X = Y ∧ F = B
/// ```
fn pivot_uniqueness(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x, y, b) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let rep = Atom::RepInc {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let pivot_read = Term::select(Term::var(s), Term::var(x), Term::var(f));
    let other_read = Term::select(Term::var(s), Term::var(y), Term::var(b));
    let antecedent = Formula::and(vec![
        Formula::Atom(rep),
        Formula::neq(pivot_read, Term::null()),
        Formula::eq(pivot_read, other_read),
    ]);
    let conclusion = Formula::and(vec![
        Formula::eq(Term::var(x), Term::var(y)),
        Formula::eq(Term::var(f), Term::var(b)),
    ]);
    // MPAT: a rep declaration plus *two* store reads must be present —
    // the antisymmetry shape E14 flagged as a divergence culprit when
    // left to fire freely.
    let trigger = Trigger(vec![
        Pattern::Atom(rep),
        Pattern::Term(pivot_read),
        Pattern::Term(other_read),
    ]);
    declare(
        vec![g, f, a, s, x, y, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, conclusion),
    )
}

/// Axiom (7): no location of a pivot-referenced object includes a group of
/// its owner —
///
/// ```text
/// G →F A ∧ Y = S(X·F) ∧ Y ≠ null ⇒ ¬(S ⊨ Y·B ≽ X·G)
/// ```
fn owner_acyclicity(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x, y, b) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let rep = Atom::RepInc {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(y),
        attr: Term::var(b),
        obj2: Term::var(x),
        attr2: Term::var(g),
    };
    let antecedent = Formula::and(vec![
        Formula::Atom(rep),
        Formula::eq(
            Term::var(y),
            Term::select(Term::var(s), Term::var(x), Term::var(f)),
        ),
        Formula::neq(Term::var(y), Term::null()),
    ]);
    let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Atom(inc)]);
    declare(
        vec![g, f, a, s, x, y, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, Formula::not(Formula::Atom(inc))),
    )
}

/// A consequence of the pivot uniqueness restriction: pivot fields are only
/// ever assigned `new()` or `null`, so their values are `null` or object
/// references —
///
/// ```text
/// G →F A ⇒ S(X·F) = null ∨ isObj(S(X·F))
/// ```
///
/// Without this, owner exclusion could not be discharged for non-object
/// arguments (e.g. the literal `3` in the paper's `push(st, 3)`): nothing
/// else rules out an extension's pivot field holding `3`.
fn pivot_values_are_objects(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
    );
    let rep = Atom::RepInc {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let read = Term::select(Term::var(s), Term::var(x), Term::var(f));
    let body = Formula::implies(
        Formula::Atom(rep),
        Formula::or(vec![
            Formula::eq(read, Term::null()),
            Formula::Atom(Atom::IsObj(read)),
        ]),
    );
    let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Term(read)]);
    declare(
        vec![g, f, a, s, x],
        PatternPolicy::goal_directed(vec![trigger]),
        body,
    )
}

/// The (7)-analogue for elem-pivot arrays: no location of the array
/// referenced by an elem-pivot includes a group of its owner —
///
/// ```text
/// G ⇉F A ∧ Y = S(X·F) ∧ Y ≠ null ⇒ ¬(S ⊨ Y·B ≽ X·G)
/// ```
fn owner_acyclicity_elem_array(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x, y, b) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let rep = Atom::RepIncElem {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(y),
        attr: Term::var(b),
        obj2: Term::var(x),
        attr2: Term::var(g),
    };
    let antecedent = Formula::and(vec![
        Formula::Atom(rep),
        Formula::eq(
            Term::var(y),
            Term::select(Term::var(s), Term::var(x), Term::var(f)),
        ),
        Formula::neq(Term::var(y), Term::null()),
    ]);
    let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Atom(inc)]);
    declare(
        vec![g, f, a, s, x, y, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, Formula::not(Formula::Atom(inc))),
    )
}

/// The (7)-analogue for array elements: no location of an element stored in
/// an elem-pivot's array includes a group of the array's owner —
///
/// ```text
/// G ⇉F A ∧ R = S(X·F) ∧ R ≠ null ∧ isInt(I) ∧ E = S(R·I) ∧ E ≠ null
///   ⇒ ¬(S ⊨ E·B ≽ X·G)
/// ```
fn owner_acyclicity_element(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x, r, i, e, b) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubR"),
        fresh.fresh("ubI"),
        fresh.fresh("ubE"),
        fresh.fresh("ubB"),
    );
    let rep = Atom::RepIncElem {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let inc = Atom::Inc {
        store: Term::var(s),
        obj: Term::var(e),
        attr: Term::var(b),
        obj2: Term::var(x),
        attr2: Term::var(g),
    };
    let antecedent = Formula::and(vec![
        Formula::Atom(rep),
        Formula::eq(
            Term::var(r),
            Term::select(Term::var(s), Term::var(x), Term::var(f)),
        ),
        Formula::neq(Term::var(r), Term::null()),
        Formula::Atom(Atom::IsInt(Term::var(i))),
        Formula::eq(
            Term::var(e),
            Term::select(Term::var(s), Term::var(r), Term::var(i)),
        ),
        Formula::neq(Term::var(e), Term::null()),
    ]);
    let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Atom(inc)]);
    declare(
        vec![g, f, a, s, x, r, i, e, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, Formula::not(Formula::Atom(inc))),
    )
}

/// The (6)-analogue for elem-pivot fields: non-null elem-pivot values
/// (the arrays themselves) are unique —
///
/// ```text
/// G ⇉F A ∧ S(X·F) ≠ null ∧ S(X·F) = S(Y·B) ⇒ X = Y ∧ F = B
/// ```
fn elem_pivot_uniqueness(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x, y, b) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let rep = Atom::RepIncElem {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let pivot_read = Term::select(Term::var(s), Term::var(x), Term::var(f));
    let other_read = Term::select(Term::var(s), Term::var(y), Term::var(b));
    let antecedent = Formula::and(vec![
        Formula::Atom(rep),
        Formula::neq(pivot_read, Term::null()),
        Formula::eq(pivot_read, other_read),
    ]);
    let conclusion = Formula::and(vec![
        Formula::eq(Term::var(x), Term::var(y)),
        Formula::eq(Term::var(f), Term::var(b)),
    ]);
    let trigger = Trigger(vec![
        Pattern::Atom(rep),
        Pattern::Term(pivot_read),
        Pattern::Term(other_read),
    ]);
    declare(
        vec![g, f, a, s, x, y, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, conclusion),
    )
}

/// Elem-pivot values (arrays) are `null` or objects — the elem analogue of
/// [`pivot_values_are_objects`]:
///
/// ```text
/// G ⇉F A ⇒ S(X·F) = null ∨ isObj(S(X·F))
/// ```
fn elem_pivot_values_are_objects(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (g, f, a, s, x) = (
        fresh.fresh("ubG"),
        fresh.fresh("ubF"),
        fresh.fresh("ubA"),
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
    );
    let rep = Atom::RepIncElem {
        group: Term::var(g),
        pivot: Term::var(f),
        mapped: Term::var(a),
    };
    let read = Term::select(Term::var(s), Term::var(x), Term::var(f));
    let body = Formula::implies(
        Formula::Atom(rep),
        Formula::or(vec![
            Formula::eq(read, Term::null()),
            Formula::Atom(Atom::IsObj(read)),
        ]),
    );
    let trigger = Trigger(vec![Pattern::Atom(rep), Pattern::Term(read)]);
    declare(
        vec![g, f, a, s, x],
        PatternPolicy::goal_directed(vec![trigger]),
        body,
    )
}

/// Pivot positions of rep inclusions are declared attribute names, never
/// integer slot keys:
///
/// ```text
/// A →F B ⇒ ¬isInt(F)        A ⇉F B ⇒ ¬isInt(F)
/// ```
///
/// Needed to discharge owner exclusion for element values: an element
/// equal to a "pivot read" at an *integer* key would otherwise evade the
/// per-field enumeration axioms.
fn pivots_are_attributes(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (a, f, b) = (fresh.fresh("ubA"), fresh.fresh("ubF"), fresh.fresh("ubB"));
    let rep = Atom::RepInc {
        group: Term::var(a),
        pivot: Term::var(f),
        mapped: Term::var(b),
    };
    let rep_elem = Atom::RepIncElem {
        group: Term::var(a),
        pivot: Term::var(f),
        mapped: Term::var(b),
    };
    let not_int = Formula::not(Formula::Atom(Atom::IsInt(Term::var(f))));
    // Goal-directed: its triggers are the ground rep facts of the scope,
    // so eager scheduling would stamp a ¬isInt fact per declared triple
    // into every context regardless of need.
    declare(
        vec![a, f, b],
        PatternPolicy::goal_directed(vec![
            Trigger(vec![Pattern::Atom(rep)]),
            Trigger(vec![Pattern::Atom(rep_elem)]),
        ]),
        Formula::and(vec![
            Formula::implies(Formula::Atom(rep), not_int.clone()),
            Formula::implies(Formula::Atom(rep_elem), not_int),
        ]),
    )
}

/// Slot uniqueness (the (6)-analogue of the array-dependencies slot
/// discipline — slots are only ever assigned `new()` or `null`, so their
/// non-null values are unique):
///
/// ```text
/// isInt(I) ∧ S(X·I) ≠ null ∧ S(X·I) = S(Y·B) ⇒ X = Y ∧ I = B
/// ```
fn slot_uniqueness(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, i, y, b) = (
        fresh.fresh("ubS"),
        fresh.fresh("ubX"),
        fresh.fresh("ubI"),
        fresh.fresh("ubY"),
        fresh.fresh("ubB"),
    );
    let slot_read = Term::select(Term::var(s), Term::var(x), Term::var(i));
    let other_read = Term::select(Term::var(s), Term::var(y), Term::var(b));
    let antecedent = Formula::and(vec![
        Formula::Atom(Atom::IsInt(Term::var(i))),
        Formula::neq(slot_read, Term::null()),
        Formula::eq(slot_read, other_read),
    ]);
    let conclusion = Formula::and(vec![
        Formula::eq(Term::var(x), Term::var(y)),
        Formula::eq(Term::var(i), Term::var(b)),
    ]);
    let trigger = Trigger(vec![Pattern::Term(slot_read), Pattern::Term(other_read)]);
    declare(
        vec![s, x, i, y, b],
        PatternPolicy::goal_directed(vec![trigger]),
        Formula::implies(antecedent, conclusion),
    )
}

/// Slot values are `null` or objects (slots are only assigned `new()` or
/// `null` under the extended restriction):
///
/// ```text
/// isInt(I) ⇒ S(X·I) = null ∨ isObj(S(X·I))
/// ```
fn slot_values_are_objects(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let (s, x, i) = (fresh.fresh("ubS"), fresh.fresh("ubX"), fresh.fresh("ubI"));
    let read = Term::select(Term::var(s), Term::var(x), Term::var(i));
    let body = Formula::implies(
        Formula::Atom(Atom::IsInt(Term::var(i))),
        Formula::or(vec![
            Formula::eq(read, Term::null()),
            Formula::Atom(Atom::IsObj(read)),
        ]),
    );
    declare(
        vec![s, x, i],
        PatternPolicy::goal_directed(vec![Trigger(vec![Pattern::Term(read)])]),
        body,
    )
}

/// `∀S :: isObj(new(S))` — freshly allocated values are object references.
fn fresh_objects_are_objects(fresh: &mut FreshGen) -> (Formula, PatternPolicy) {
    let s = fresh.fresh("ubS");
    let new = Term::new_obj(Term::var(s));
    declare(
        vec![s],
        PatternPolicy::eager(vec![Trigger(vec![Pattern::Term(new)])]),
        Formula::Atom(Atom::IsObj(new)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_prover::{prove, Budget};
    use oolong_sema::Scope;
    use oolong_syntax::parse_program;

    fn stack_scope() -> Scope {
        Scope::analyze(
            &parse_program(
                "group contents
                 group elems
                 field cnt in elems
                 field obj
                 field vec maps elems into contents",
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn all_axioms(scope: &Scope) -> Vec<Formula> {
        let mut fresh = FreshGen::new();
        let mut axioms = universal_background(true, false, &mut fresh);
        axioms.extend(scope_background(scope, &mut fresh));
        axioms
    }

    #[test]
    fn axiom_counts() {
        let mut fresh = FreshGen::new();
        // Plain level: the paper's system.
        assert_eq!(universal_background(true, false, &mut fresh).len(), 17);
        assert_eq!(universal_background(false, false, &mut fresh).len(), 14);
        // Arrays level adds comparisons-are-ints plus four slot axioms.
        assert_eq!(universal_background(true, true, &mut fresh).len(), 25);
        assert_eq!(universal_background(false, true, &mut fresh).len(), 15);
        let bp = scope_background(&stack_scope(), &mut fresh);
        assert!(!bp.is_empty());
    }

    #[test]
    fn store_axioms_prove_read_over_write() {
        let axioms = all_axioms(&stack_scope());
        // select(update(S, t, cnt, 3), t, cnt) = 3
        let upd = Term::update(
            Term::store(),
            Term::var("t"),
            Term::attr("cnt"),
            Term::int(3),
        );
        let goal = Formula::eq(
            Term::select(upd, Term::var("t"), Term::attr("cnt")),
            Term::int(3),
        );
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn store_axioms_prove_frame_over_distinct_attr() {
        let axioms = all_axioms(&stack_scope());
        // select(update(S, t, cnt, 3), u, obj) = select(S, u, obj): attrs differ.
        let upd = Term::update(
            Term::store(),
            Term::var("t"),
            Term::attr("cnt"),
            Term::int(3),
        );
        let goal = Formula::eq(
            Term::select(upd, Term::var("u"), Term::attr("obj")),
            Term::select(Term::store(), Term::var("u"), Term::attr("obj")),
        );
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn fresh_object_is_unallocated_and_nonnull() {
        let axioms = all_axioms(&stack_scope());
        let goal = Formula::and(vec![
            Formula::not(Formula::Atom(Atom::Alive(
                Term::store(),
                Term::new_obj(Term::store()),
            ))),
            Formula::neq(Term::new_obj(Term::store()), Term::null()),
        ]);
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn reflexive_inclusion_of_declared_group() {
        let axioms = all_axioms(&stack_scope());
        // $ ⊨ t·contents ≽ t·contents via (4) left disjunct + ground ⊒.
        let goal = Formula::Atom(Atom::Inc {
            store: Term::store(),
            obj: Term::var("t"),
            attr: Term::attr("contents"),
            obj2: Term::var("t"),
            attr2: Term::attr("contents"),
        });
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn local_inclusion_of_field_in_group() {
        let axioms = all_axioms(&stack_scope());
        // $ ⊨ t·elems ≽ t·cnt since cnt in elems.
        let goal = Formula::Atom(Atom::Inc {
            store: Term::store(),
            obj: Term::var("t"),
            attr: Term::attr("elems"),
            obj2: Term::var("t"),
            attr2: Term::attr("cnt"),
        });
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn rep_inclusion_through_pivot() {
        let axioms = all_axioms(&stack_scope());
        // $ ⊨ st·contents ≽ $(st·vec)·cnt — the paper's running example.
        let vec_val = Term::select(Term::store(), Term::var("st"), Term::attr("vec"));
        let mut hyps = axioms;
        // The chain disjunct of (4) needs X ≠ Y and Y ≠ null; pivot values
        // are distinct from their owners in restricted programs, and here
        // the pivot is assumed set.
        hyps.push(Formula::neq(Term::var("st"), vec_val));
        hyps.push(Formula::neq(vec_val, Term::null()));
        let goal = Formula::Atom(Atom::Inc {
            store: Term::store(),
            obj: Term::var("st"),
            attr: Term::attr("contents"),
            obj2: vec_val,
            attr2: Term::attr("cnt"),
        });
        assert!(prove(&hyps, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn no_inclusion_between_unrelated_attrs() {
        let axioms = all_axioms(&stack_scope());
        // ¬($ ⊨ t·obj ≽ t·cnt): obj is not a group enclosing cnt.
        let goal = Formula::not(Formula::Atom(Atom::Inc {
            store: Term::store(),
            obj: Term::var("t"),
            attr: Term::attr("obj"),
            obj2: Term::var("t"),
            attr2: Term::attr("cnt"),
        }));
        assert!(prove(&axioms, &goal, &Budget::default()).is_proved());
    }

    #[test]
    fn pivot_uniqueness_derives_disequality() {
        // Axiom (6): with vec a pivot and t.vec ≠ null, a non-pivot read
        // result.obj cannot alias t.vec (since obj ≠ vec).
        let axioms = all_axioms(&stack_scope());
        let vec_read = Term::select(Term::store(), Term::var("t"), Term::attr("vec"));
        let obj_read = Term::select(Term::store(), Term::var("r"), Term::attr("obj"));
        let mut hyps = axioms;
        hyps.push(Formula::neq(vec_read, Term::null()));
        let goal = Formula::neq(vec_read, obj_read);
        assert!(prove(&hyps, &goal, &Budget::default()).is_proved());
    }
}
