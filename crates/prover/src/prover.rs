//! The refutation prover: a DPLL-style tableau over skolemized NNF with an
//! E-graph for ground reasoning and E-matching for quantifier
//! instantiation.
//!
//! To prove `H₁ ∧ … ∧ Hₙ ⇒ G`, the prover asserts each `Hᵢ` positively and
//! `G` negatively, then searches for a contradiction:
//!
//! 1. ground literals are asserted into the E-graph (congruence closure,
//!    interpreted constants, eager arithmetic evaluation);
//! 2. disjunctions are simplified against the current state and case-split
//!    with backtracking (the E-graph is cloned at each branch);
//! 3. when a branch is ground-saturated, quantified hypotheses are
//!    instantiated by matching their triggers against the E-graph, and the
//!    loop repeats. Saturation runs **before** case splitting (instances
//!    land on the shared branch prefix) and is **incremental**: old
//!    quantifiers re-match only against nodes created since the previous
//!    round, with a full pass to confirm saturation.
//!
//! Every dimension of work is metered by a [`Budget`]; exhausting it yields
//! [`Outcome::Unknown`] — this is how the paper's observation that Simplify
//! "loops irrevocably" on cyclic rep inclusions is reproduced as a
//! measurable result rather than a hang.

use crate::egraph::{EGraph, NodeId};
use crate::matcher::{match_trigger, match_trigger_anchored, term_of};
use crate::triggers::{classify_quant, infer_triggers, QuantKind};
use oolong_logic::transform::{to_nnf, FreshGen, Nnf};
use oolong_logic::{Atom, Formula, Phase, Symbol, Term, Trigger};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Resource limits for one proof attempt.
///
/// `Hash`/`Eq` are part of the incremental engine's cache-key contract:
/// two proof attempts with different budgets are different obligations
/// (a starved budget can turn `Proved` into `Unknown`), so the budget is
/// hashed into every verification-condition fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Maximum total quantifier instantiations.
    pub max_instances: usize,
    /// Maximum quantifier instantiations produced per saturation round.
    pub max_instances_per_round: usize,
    /// Maximum number of case-split branches explored.
    pub max_branches: u64,
    /// Maximum number of E-graph nodes per branch.
    pub max_nodes: usize,
    /// Maximum case-split depth.
    pub max_depth: usize,
    /// Maximum matching generation: instantiations whose bindings involve
    /// terms created at this generation are deferred (Simplify's matching
    /// depth). A branch that saturates with deferred work reports
    /// [`Outcome::Unknown`] rather than [`Outcome::NotProved`].
    pub max_term_gen: u32,
    /// Maximum saturation rounds across the whole search. Each round can
    /// involve a full matching pass over every active quantifier, so this
    /// bounds the dominant cost of hopeless searches.
    pub max_rounds: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_instances: 120_000,
            max_instances_per_round: 400,
            max_branches: 100_000,
            max_nodes: 400_000,
            max_depth: 240,
            max_term_gen: 2,
            max_rounds: 3_000,
        }
    }
}

impl Budget {
    /// A deliberately tiny budget, used to demonstrate divergence on
    /// cyclic inclusions (experiment E6).
    pub fn tiny() -> Self {
        Budget {
            max_instances: 25,
            max_instances_per_round: 10,
            max_branches: 120,
            max_nodes: 2_000,
            max_depth: 12,
            max_term_gen: 1,
            max_rounds: 60,
        }
    }

    /// The budget as named `u64` fields, in a fixed order, for structured
    /// serialization (cache entries, event logs).
    pub fn to_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("max_instances", self.max_instances as u64),
            (
                "max_instances_per_round",
                self.max_instances_per_round as u64,
            ),
            ("max_branches", self.max_branches),
            ("max_nodes", self.max_nodes as u64),
            ("max_depth", self.max_depth as u64),
            ("max_term_gen", u64::from(self.max_term_gen)),
            ("max_rounds", self.max_rounds as u64),
        ]
    }
}

/// The budget dimension that tripped when a proof attempt came back
/// [`Outcome::Unknown`]. Recorded at the *first* exhaustion point of the
/// search, which is deterministic for a deterministic search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// `max_instances` (or a per-round slice of it) ran out.
    Instances,
    /// `max_branches` case-split arms were explored.
    Branches,
    /// A branch's E-graph grew past `max_nodes`.
    Nodes,
    /// Case splitting nested past `max_depth`.
    Depth,
    /// `max_rounds` saturation rounds ran without a verdict.
    Rounds,
    /// A branch saturated, but only because the matching-generation limit
    /// (`max_term_gen`) deferred instantiations that might still close it.
    DeferredInstances,
}

impl UnknownReason {
    /// Stable lower-case name, used in cache entries and event logs.
    pub fn as_str(self) -> &'static str {
        match self {
            UnknownReason::Instances => "instances",
            UnknownReason::Branches => "branches",
            UnknownReason::Nodes => "nodes",
            UnknownReason::Depth => "depth",
            UnknownReason::Rounds => "rounds",
            UnknownReason::DeferredInstances => "deferred-instances",
        }
    }

    /// Inverse of [`UnknownReason::as_str`].
    pub fn from_name(name: &str) -> Option<UnknownReason> {
        Some(match name {
            "instances" => UnknownReason::Instances,
            "branches" => UnknownReason::Branches,
            "nodes" => UnknownReason::Nodes,
            "depth" => UnknownReason::Depth,
            "rounds" => UnknownReason::Rounds,
            "deferred-instances" => UnknownReason::DeferredInstances,
            _ => return None,
        })
    }

    /// Human phrasing of the exhausted dimension.
    pub fn describe(self) -> &'static str {
        match self {
            UnknownReason::Instances => "instantiation budget exhausted",
            UnknownReason::Branches => "case-split budget exhausted",
            UnknownReason::Nodes => "E-graph node budget exhausted",
            UnknownReason::Depth => "case-split depth limit reached",
            UnknownReason::Rounds => "saturation round limit reached",
            UnknownReason::DeferredInstances => "matching-generation limit deferred instantiations",
        }
    }
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// Per-quantifier telemetry: one row per structurally distinct quantified
/// axiom the search registered, keyed by the same stable id used in
/// `OOLONG_PROVER_TRACE` output (`q0`, `q1`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantProfile {
    /// Stable structural id of the quantifier.
    pub id: usize,
    /// Vocabulary classification (rep inclusion / inclusion / store / other).
    pub kind: QuantKind,
    /// Rendered trigger set (empty when the quantifier was inert).
    pub trigger: String,
    /// Trigger-match bindings found (before dedup and generation checks).
    pub matches: u64,
    /// Instantiations actually asserted.
    pub instances: u64,
    /// Instantiations asserted during background pre-saturation (context
    /// construction, before any obligation's goal exists). Zero for
    /// one-shot proofs, which have no pre-saturation phase.
    pub presat_instances: u64,
    /// Instantiations asserted inside an obligation's frame, after the
    /// goal terms were asserted. `presat_instances + goal_instances ==
    /// instances` always.
    pub goal_instances: u64,
    /// Instantiations deferred by the matching-generation limit.
    pub deferred: u64,
    /// The most recent instantiation bindings (at most three, rendered as
    /// `v := t` lists): a representative term chain for loop diagnosis.
    pub chain: Vec<String>,
}

impl QuantProfile {
    /// Total matching pressure: performed plus deferred instantiations —
    /// the sort key for divergence attribution.
    pub fn pressure(&self) -> u64 {
        self.instances + self.deferred
    }
}

impl fmt::Display for QuantProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q{} [{}] {}: {} instances ({} presat + {} goal), {} matches",
            self.id,
            self.kind,
            if self.trigger.is_empty() {
                "(no trigger)"
            } else {
                &self.trigger
            },
            self.instances,
            self.presat_instances,
            self.goal_instances,
            self.matches,
        )?;
        if self.deferred > 0 {
            write!(f, ", {} deferred", self.deferred)?;
        }
        Ok(())
    }
}

/// Divergence attribution: which budget dimension tripped and which
/// quantified axioms were doing the most instantiation work when it did —
/// the paper's "loops irrevocably on cyclic rep inclusions" anecdote as a
/// mechanical report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The dimension that ran out.
    pub reason: UnknownReason,
    /// Hottest quantifiers, by [`QuantProfile::pressure`], descending.
    pub culprits: Vec<QuantProfile>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}; top instantiation culprits:", self.reason)?;
        for culprit in &self.culprits {
            writeln!(f, "  {culprit}")?;
            for step in &culprit.chain {
                writeln!(f, "    at {step}")?;
            }
        }
        Ok(())
    }
}

/// Counters describing the work a proof attempt performed.
///
/// Everything here is *deterministic* for a given verification condition
/// and budget (the search is single-threaded with a fixed order), which is
/// what lets the incremental engine cache stats alongside verdicts and
/// replay them bit-for-bit on warm runs. Wall time is therefore kept out
/// of `Stats` — it lives on [`Proof::millis`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Quantifier instantiations performed.
    pub instances: usize,
    /// Case-split branches explored.
    pub branches: u64,
    /// Saturation rounds run.
    pub rounds: usize,
    /// Deepest case-split nesting reached.
    pub max_depth: usize,
    /// Largest per-branch E-graph.
    pub peak_nodes: usize,
    /// Quantified formulas registered.
    pub quants: usize,
    /// Quantifiers skipped because no usable trigger could be inferred.
    pub skipped_quants: usize,
    /// Instantiations deferred by the matching-generation limit.
    pub deferred_instances: usize,
    /// Trigger-match bindings found across all quantifiers (before dedup
    /// and generation checks).
    pub trigger_matches: u64,
    /// E-graph class merges performed, summed across branches.
    pub merges: u64,
    /// Disjunctions registered for case splitting (clause count).
    pub clauses: u64,
    /// High-water mark of the E-graph undo trail (trail-mode search only;
    /// zero under the clone-based reference strategy).
    pub trail_depth_max: usize,
    /// Checkpoints unwound by backtracking (trail mode only).
    pub pops: u64,
    /// E-graph merges rolled back by backtracking (trail mode only).
    pub undone_merges: u64,
    /// Background axioms pruned by relevance slicing before the proof
    /// attempt (zero when slicing is disabled). Set by the checker, which
    /// owns the slicing decision; deterministic per fingerprinted
    /// obligation because the sliced axiom set is part of the fingerprint.
    pub sliced_axioms: usize,
    /// When the outcome was [`Outcome::Unknown`]: which limit tripped.
    pub exhausted: Option<UnknownReason>,
    /// Per-quantifier instantiation telemetry, ordered by stable id.
    pub per_quant: Vec<QuantProfile>,
}

impl Stats {
    /// The scalar counters as named `u64` fields, in a fixed order, for
    /// structured serialization (cache entries, event logs). The
    /// non-scalar members — [`Stats::exhausted`] and [`Stats::per_quant`]
    /// — are serialized separately by their consumers.
    pub fn to_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("instances", self.instances as u64),
            ("branches", self.branches),
            ("rounds", self.rounds as u64),
            ("max_depth", self.max_depth as u64),
            ("peak_nodes", self.peak_nodes as u64),
            ("quants", self.quants as u64),
            ("skipped_quants", self.skipped_quants as u64),
            ("deferred_instances", self.deferred_instances as u64),
            ("trigger_matches", self.trigger_matches),
            ("merges", self.merges),
            ("clauses", self.clauses),
            ("trail_depth_max", self.trail_depth_max as u64),
            ("pops", self.pops),
            ("undone_merges", self.undone_merges),
            ("sliced_axioms", self.sliced_axioms as u64),
        ]
    }

    /// Rebuilds counters from named fields (inverse of [`Stats::to_fields`];
    /// unknown names are ignored, missing names stay zero).
    pub fn from_fields<'a>(fields: impl IntoIterator<Item = (&'a str, u64)>) -> Stats {
        let mut stats = Stats::default();
        for (name, value) in fields {
            match name {
                "instances" => stats.instances = value as usize,
                "branches" => stats.branches = value,
                "rounds" => stats.rounds = value as usize,
                "max_depth" => stats.max_depth = value as usize,
                "peak_nodes" => stats.peak_nodes = value as usize,
                "quants" => stats.quants = value as usize,
                "skipped_quants" => stats.skipped_quants = value as usize,
                "deferred_instances" => stats.deferred_instances = value as usize,
                "trigger_matches" => stats.trigger_matches = value,
                "merges" => stats.merges = value,
                "clauses" => stats.clauses = value,
                "trail_depth_max" => stats.trail_depth_max = value as usize,
                "pops" => stats.pops = value,
                "undone_merges" => stats.undone_merges = value,
                "sliced_axioms" => stats.sliced_axioms = value as usize,
                _ => {}
            }
        }
        stats
    }

    /// The hottest quantifiers by instantiation pressure (performed plus
    /// deferred), descending, ties broken by stable id. Rows that did no
    /// matching work are omitted.
    pub fn top_culprits(&self, n: usize) -> Vec<&QuantProfile> {
        let mut hot: Vec<&QuantProfile> = self
            .per_quant
            .iter()
            .filter(|q| q.pressure() > 0 || q.matches > 0)
            .collect();
        hot.sort_by(|a, b| b.pressure().cmp(&a.pressure()).then(a.id.cmp(&b.id)));
        hot.truncate(n);
        hot
    }

    /// Divergence attribution, present exactly when the proof attempt
    /// exhausted its budget: the tripped dimension plus the top
    /// instantiation culprits.
    pub fn divergence(&self) -> Option<Divergence> {
        let reason = self.exhausted?;
        Some(Divergence {
            reason,
            culprits: self.top_culprits(5).into_iter().cloned().collect(),
        })
    }

    /// This stats record with the strategy-specific trail counters zeroed.
    /// Every other counter is identical between the trail and clone search
    /// strategies (they execute the same search); the trail counters
    /// describe the backtracking mechanism itself, so differential
    /// comparisons normalize them away with this.
    pub fn without_trail_counters(&self) -> Stats {
        Stats {
            trail_depth_max: 0,
            pops: 0,
            undone_merges: 0,
            ..self.clone()
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instances={} matches={} branches={} rounds={} depth={} peak_nodes={} merges={} \
             clauses={} quants={} deferred={} pops={}",
            self.instances,
            self.trigger_matches,
            self.branches,
            self.rounds,
            self.max_depth,
            self.peak_nodes,
            self.merges,
            self.clauses,
            self.quants,
            self.deferred_instances,
            self.pops
        )
    }
}

/// The verdict of a proof attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The conjecture is valid: every branch closed.
    Proved,
    /// Some branch saturated without contradiction: the conjecture was not
    /// derivable with the available instantiations (for the checker this
    /// means *reject*).
    NotProved,
    /// The budget was exhausted before a verdict; the payload records
    /// which limit tripped first.
    Unknown(UnknownReason),
}

impl Outcome {
    /// Whether this is an [`Outcome::Unknown`] of any dimension.
    pub fn is_unknown(self) -> bool {
        matches!(self, Outcome::Unknown(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Proved => write!(f, "proved"),
            Outcome::NotProved => write!(f, "not proved"),
            Outcome::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}

/// One E-class of a [`CandidateModel`]: the ground terms the refuting
/// branch identified, plus the class's interpreted value when it has one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelClass {
    /// A rendered representative term (leaf-preferring; `@classN` aliases
    /// for leafless cyclic classes).
    pub repr: Term,
    /// Leaf members: the free variables and interpreted constants the
    /// class contains.
    pub members: Vec<Term>,
    /// The class's interpreted constant, if any.
    pub value: Option<oolong_logic::Cst>,
}

/// One `select(store, obj, attr) = value` entry of a candidate model's
/// function graph, as indices into [`CandidateModel::classes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSelect {
    /// Class of the store argument.
    pub store: usize,
    /// Class of the object argument.
    pub obj: usize,
    /// Class of the attribute argument.
    pub attr: usize,
    /// Class the select term evaluates into.
    pub value: usize,
}

/// One determined (or undetermined) predicate entry of a candidate model:
/// `sym(args) = value`, args as class indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRelation {
    /// Predicate name (the E-graph symbol's debug name, e.g. `PInc`).
    pub sym: String,
    /// Argument classes.
    pub args: Vec<usize>,
    /// Truth value, when the branch determined one.
    pub value: Option<bool>,
}

/// The saturated context of the first open (refuting) branch, exported for
/// counterexample concretization: the ground E-class partition, the
/// `select` function graph, the determined predicate entries, known
/// disequalities, and the position labels asserted on the branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateModel {
    /// Position labels ([`Nnf::Lit::label`]) asserted on the branch, in
    /// assertion order, deduplicated. The *last* label is the innermost
    /// obligation the branch violates.
    pub labels: Vec<u32>,
    /// The ground E-class partition.
    pub classes: Vec<ModelClass>,
    /// `select` function-graph entries.
    pub selects: Vec<ModelSelect>,
    /// Predicate entries (`PAlive`, `PInc`, …).
    pub relations: Vec<ModelRelation>,
    /// Pairs of classes (by index, `i < j`) known disequal.
    pub diseqs: Vec<(usize, usize)>,
}

impl CandidateModel {
    /// The innermost (most recently asserted) position label of the
    /// branch: the obligation the counterexample violates.
    pub fn primary_label(&self) -> Option<u32> {
        self.labels.last().copied()
    }
}

/// The result of [`prove`]: outcome plus work counters.
#[derive(Debug, Clone)]
pub struct Proof {
    /// The verdict.
    pub outcome: Outcome,
    /// Work performed.
    pub stats: Stats,
    /// When the outcome is [`Outcome::NotProved`]: a description of the
    /// literals of the first saturated open branch (a model sketch), for
    /// diagnosing why the conjecture failed.
    pub open_branch: Option<Vec<String>>,
    /// When the outcome is [`Outcome::NotProved`]: the exported saturated
    /// context of the first open branch, for counterexample
    /// concretization and replay.
    pub model: Option<CandidateModel>,
    /// Wall-clock time of the attempt, in milliseconds. Deliberately not
    /// part of [`Stats`]: stats must be deterministic and cache-replayable.
    pub millis: f64,
}

impl Proof {
    /// Whether the conjecture was proved valid.
    pub fn is_proved(&self) -> bool {
        self.outcome == Outcome::Proved
    }

    /// Divergence attribution when the budget was exhausted (see
    /// [`Stats::divergence`]).
    pub fn divergence(&self) -> Option<Divergence> {
        self.stats.divergence()
    }
}

/// How the search backtracks out of case-split arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// One shared context; each arm runs between checkpoint and rollback
    /// on an undo trail (Simplify's undo-stack discipline). Cost per
    /// branch is proportional to the work the branch performs.
    #[default]
    Trail,
    /// The clone-based reference: each arm deep-copies the whole context.
    /// Retained for differential testing and the e15 benchmark; cost per
    /// branch is proportional to the size of the accumulated state.
    CloneSearch,
}

impl SearchStrategy {
    /// The process default: [`SearchStrategy::Trail`], unless the
    /// `OOLONG_PROVER_CLONE_SEARCH` environment variable is set (checked
    /// once per process).
    pub fn from_env() -> SearchStrategy {
        static CLONE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *CLONE.get_or_init(|| std::env::var_os("OOLONG_PROVER_CLONE_SEARCH").is_some()) {
            SearchStrategy::CloneSearch
        } else {
            SearchStrategy::Trail
        }
    }
}

/// Proves `hypotheses ⇒ goal` by refuting `hypotheses ∧ ¬goal`.
pub fn prove(hypotheses: &[Formula], goal: &Formula, budget: &Budget) -> Proof {
    prove_with_strategy(hypotheses, goal, budget, SearchStrategy::from_env())
}

/// [`prove`] with an explicit backtracking strategy.
pub fn prove_with_strategy(
    hypotheses: &[Formula],
    goal: &Formula,
    budget: &Budget,
    strategy: SearchStrategy,
) -> Proof {
    let mut fresh = FreshGen::new();
    let mut parts: Vec<Nnf> = hypotheses
        .iter()
        .map(|h| to_nnf(h, true, &mut fresh))
        .collect();
    parts.push(to_nnf(goal, false, &mut fresh));
    refute_with_strategy(parts, budget, strategy)
}

/// Refutes a conjunction of NNF formulas: [`Outcome::Proved`] means the
/// conjunction is unsatisfiable.
pub fn refute(parts: Vec<Nnf>, budget: &Budget) -> Proof {
    refute_with_strategy(parts, budget, SearchStrategy::from_env())
}

/// [`refute`] with an explicit backtracking strategy. Both strategies
/// execute the identical search and report identical outcomes and
/// counters, except for the trail-specific telemetry (see
/// [`Stats::without_trail_counters`]).
pub fn refute_with_strategy(parts: Vec<Nnf>, budget: &Budget, strategy: SearchStrategy) -> Proof {
    let start = std::time::Instant::now();
    let mut shared = Shared {
        budget: budget.clone(),
        stats: Stats::default(),
        quant_ids: HashMap::new(),
        quant_meta: Vec::new(),
        fuel: None,
        open_branch: None,
        model: None,
        strategy,
        presat: false,
    };
    let mut ctx = Ctx {
        eg: EGraph::new(),
        pending: parts.into_iter().map(|p| (p, 0)).collect(),
        splits: Vec::new(),
        quants: Vec::new(),
        quant_ids_present: HashSet::new(),
        seen: HashSet::new(),
        labels: Vec::new(),
        deferred: false,
        matched_upto: 0,
        fresh_quants_from: 0,
        full_pass_merges: u64::MAX,
        trail: Vec::new(),
        recording: 0,
        match_cache: HashMap::new(),
    };
    let outcome = outcome_of(search(&mut ctx, 0, &mut shared), shared.fuel);
    let mut stats = shared.stats;
    if strategy == SearchStrategy::Trail {
        // Under the clone strategy `search` sums per-frame merge deltas;
        // with a single shared E-graph the monotonic counter is the same
        // total, counted once.
        stats.merges = ctx.eg.merges_performed();
        stats.trail_depth_max = ctx.eg.trail_high_water();
        stats.pops = ctx.eg.pops();
        stats.undone_merges = ctx.eg.undone_merges();
    }
    stats.exhausted = match outcome {
        Outcome::Unknown(reason) => Some(reason),
        _ => None,
    };
    stats.per_quant = render_per_quant(&shared.quant_meta);
    Proof {
        outcome,
        stats,
        open_branch: shared.open_branch,
        model: shared.model,
        millis: start.elapsed().as_secs_f64() * 1_000.0,
    }
}

fn outcome_of(branch: Branch, fuel: Option<UnknownReason>) -> Outcome {
    match branch {
        Branch::Closed => Outcome::Proved,
        Branch::Open => Outcome::NotProved,
        Branch::Fuel => Outcome::Unknown(fuel.unwrap_or(UnknownReason::Instances)),
    }
}

/// Renders the accumulated per-quantifier telemetry as [`QuantProfile`]
/// rows ordered by stable id.
fn render_per_quant(quant_meta: &[QuantMeta]) -> Vec<QuantProfile> {
    quant_meta
        .iter()
        .enumerate()
        .map(|(id, meta)| QuantProfile {
            id,
            kind: meta.kind,
            trigger: meta.trigger.clone(),
            matches: meta.matches,
            instances: meta.instances,
            presat_instances: meta.presat_instances,
            goal_instances: meta.goal_instances,
            deferred: meta.deferred,
            chain: meta
                .recent
                .iter()
                .map(|terms| {
                    meta.vars
                        .iter()
                        .zip(terms)
                        .map(|(v, t)| format!("{v} := {t}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .collect(),
        })
        .collect()
}

/// A prover context pre-loaded with a scope's shared background.
///
/// The background formulas are asserted and ground-saturated **once**; any
/// number of obligations can then be proved against the saturated state,
/// each one inside a checkpoint/rollback frame of the shared E-graph
/// (trail mode) or against a clone of it (clone mode). This amortizes
/// context construction — NNF conversion, interning, background quantifier
/// saturation — across every obligation of a scope, the way Boogie asserts
/// its `UnivBackPred` once per prover session.
///
/// Proofs are **order-independent**: every [`ScopeContext::prove`] call
/// starts from private copies of the mutable search state (statistics,
/// quantifier registry, fresh-name generator) and leaves the shared
/// E-graph exactly as it found it, so a context proves a given obligation
/// to the same [`Proof`] — outcome *and* deterministic stats — no matter
/// what was proved before it, and identically whether the context is
/// shared across a scope or built one-shot for a single obligation. The
/// differential matrix harness relies on this equivalence.
pub struct ScopeContext {
    budget: Budget,
    strategy: SearchStrategy,
    base: Ctx,
    /// Work counters accumulated while building the base. Every proof's
    /// stats start from a copy, so construction cost is reported in each
    /// proof — identically whether the context is shared or one-shot,
    /// which keeps cached stats deterministic per obligation.
    base_stats: Stats,
    base_quant_ids: HashMap<(Vec<Symbol>, Nnf), usize>,
    base_quant_meta: Vec<QuantMeta>,
    base_fresh: FreshGen,
    /// For each background formula (by index): the stable quantifier ids
    /// its assertion registered, for cross-checking axiom slicing against
    /// per-quantifier telemetry.
    axiom_quants: Vec<Vec<usize>>,
    /// Monotonic merge count consumed by base construction.
    base_merges: u64,
    /// Goal-directed background quantifiers: registered with stable ids at
    /// construction (so telemetry rows and `axiom_quants` cover them) but
    /// *not* activated in the base — each [`ScopeContext::prove`] arms a
    /// copy inside the obligation's frame, after the goal terms are
    /// asserted, and the frame rollback disarms them again.
    gated_quants: Vec<Quant>,
    /// The background itself was contradictory: every conjecture proves.
    contradictory: bool,
    /// Base saturation exhausted the budget: every proof is Unknown.
    poisoned: Option<UnknownReason>,
}

impl fmt::Debug for ScopeContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScopeContext")
            .field("strategy", &self.strategy)
            .field("axioms", &self.axiom_quants.len())
            .field("quants", &self.base_quant_meta.len())
            .field("base_merges", &self.base_merges)
            .field("contradictory", &self.contradictory)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl ScopeContext {
    /// Asserts and saturates `background` into a fresh context.
    ///
    /// Saturation runs the same drain / unit-propagate / instantiate loop
    /// as the search itself but never case-splits: derived facts land in
    /// the shared state, surviving disjunctions are carried into every
    /// proof's own search. A contradictory background makes every proof
    /// succeed; a background that exhausts the budget poisons the context
    /// and makes every proof report [`Outcome::Unknown`].
    pub fn new(background: &[Formula], budget: &Budget, strategy: SearchStrategy) -> ScopeContext {
        ScopeContext::new_with_phases(background, &[], budget, strategy)
    }

    /// [`ScopeContext::new`] honoring a per-axiom activation [`Phase`]
    /// (`phases[i]` schedules `background[i]`; missing entries default to
    /// [`Phase::Eager`], so the empty slice reproduces [`ScopeContext::new`]
    /// exactly).
    ///
    /// [`Phase::GoalDirected`] axioms do not participate in base
    /// saturation: their top-level quantifiers are parked in
    /// `gated_quants` (ground conjuncts, if any, are still asserted
    /// eagerly — they are facts, not matching rules) and armed inside each
    /// obligation's frame by [`ScopeContext::prove`]. The derivable facts
    /// are unchanged — every proof still sees every axiom — only *when*
    /// instantiation may happen moves, which is what keeps verdicts and
    /// labels identical across phase assignments.
    pub fn new_with_phases(
        background: &[Formula],
        phases: &[Phase],
        budget: &Budget,
        strategy: SearchStrategy,
    ) -> ScopeContext {
        let mut fresh = FreshGen::new();
        let mut shared = Shared {
            budget: budget.clone(),
            stats: Stats::default(),
            quant_ids: HashMap::new(),
            quant_meta: Vec::new(),
            fuel: None,
            open_branch: None,
            model: None,
            strategy,
            presat: true,
        };
        let mut ctx = Ctx {
            eg: EGraph::new(),
            pending: Vec::new(),
            splits: Vec::new(),
            quants: Vec::new(),
            quant_ids_present: HashSet::new(),
            seen: HashSet::new(),
            labels: Vec::new(),
            deferred: false,
            matched_upto: 0,
            fresh_quants_from: 0,
            full_pass_merges: u64::MAX,
            trail: Vec::new(),
            recording: 0,
            match_cache: HashMap::new(),
        };
        let mut axiom_quants: Vec<Vec<usize>> = Vec::with_capacity(background.len());
        let mut gated_quants: Vec<Quant> = Vec::new();
        let mut contradictory = false;
        for (i, f) in background.iter().enumerate() {
            let ids_before = shared.quant_ids.len();
            let phase = phases.get(i).copied().unwrap_or(Phase::Eager);
            let nnf = to_nnf(f, true, &mut fresh);
            match phase {
                Phase::Eager => ctx.pending.push((nnf, 0)),
                Phase::GoalDirected => {
                    // Park the top-level quantifiers; assert ground parts.
                    split_gated(nnf, &mut ctx.pending, &mut |vars, triggers, body| {
                        gated_quants.push(park_gated_quant(&mut shared, vars, triggers, body));
                    });
                }
            }
            let step = drain_pending(&mut ctx, &mut shared);
            axiom_quants.push((ids_before..shared.quant_ids.len()).collect());
            match step {
                Step::Conflict => {
                    contradictory = true;
                    break;
                }
                Step::Fuel => break,
                Step::Ok => {}
            }
        }
        axiom_quants.resize(background.len(), Vec::new());
        while !contradictory && shared.fuel.is_none() {
            match drain_pending(&mut ctx, &mut shared) {
                Step::Conflict => {
                    contradictory = true;
                    break;
                }
                Step::Fuel => break,
                Step::Ok => {}
            }
            match normalize_splits(&mut ctx) {
                Step::Conflict => {
                    contradictory = true;
                    break;
                }
                Step::Fuel => break,
                Step::Ok => {}
            }
            if !ctx.pending.is_empty() {
                continue; // unit propagation produced new facts
            }
            shared.stats.rounds += 1;
            if shared.stats.rounds > shared.budget.max_rounds {
                shared.fuel.get_or_insert(UnknownReason::Rounds);
                break;
            }
            match instantiate_round(&mut ctx, &mut shared) {
                InstResult::Progress => {}
                InstResult::Fuel | InstResult::Saturated => break,
            }
        }
        let base_merges = ctx.eg.merges_performed();
        let mut base_stats = shared.stats;
        // Pre-seed the merge counter with the base total: clone-mode
        // frame-delta accounting then adds each proof's own merges on top,
        // and the trail-mode fix-up in `prove` reproduces the same sum.
        base_stats.merges = base_merges;
        ScopeContext {
            budget: budget.clone(),
            strategy,
            base: ctx,
            base_stats,
            base_quant_ids: shared.quant_ids,
            base_quant_meta: shared.quant_meta,
            base_fresh: fresh,
            axiom_quants,
            base_merges,
            gated_quants,
            contradictory,
            poisoned: shared.fuel,
        }
    }

    /// Proves `hypotheses ⇒ goal` against the saturated background, leaving
    /// the context state untouched for the next obligation.
    pub fn prove(&mut self, hypotheses: &[Formula], goal: &Formula) -> Proof {
        let start = std::time::Instant::now();
        if self.contradictory {
            let mut stats = self.base_stats.clone();
            stats.per_quant = render_per_quant(&self.base_quant_meta);
            return Proof {
                outcome: Outcome::Proved,
                stats,
                open_branch: None,
                model: None,
                millis: start.elapsed().as_secs_f64() * 1_000.0,
            };
        }
        if let Some(reason) = self.poisoned {
            let mut stats = self.base_stats.clone();
            stats.exhausted = Some(reason);
            stats.per_quant = render_per_quant(&self.base_quant_meta);
            return Proof {
                outcome: Outcome::Unknown(reason),
                stats,
                open_branch: None,
                model: None,
                millis: start.elapsed().as_secs_f64() * 1_000.0,
            };
        }
        let mut fresh = self.base_fresh.clone();
        let mut parts: Vec<Nnf> = hypotheses
            .iter()
            .map(|h| to_nnf(h, true, &mut fresh))
            .collect();
        parts.push(to_nnf(goal, false, &mut fresh));
        let mut shared = Shared {
            budget: self.budget.clone(),
            stats: self.base_stats.clone(),
            quant_ids: self.base_quant_ids.clone(),
            quant_meta: self.base_quant_meta.clone(),
            fuel: None,
            open_branch: None,
            model: None,
            strategy: self.strategy,
            presat: false,
        };
        let (outcome, mut stats) = match self.strategy {
            SearchStrategy::Trail => {
                // Monotonic-counter samples so the proof reports only its
                // own trail work (plus the base merges), not the lifetime
                // totals of a long-lived shared E-graph.
                let merges_before = self.base.eg.merges_performed();
                let pops_before = self.base.eg.pops();
                let undone_before = self.base.eg.undone_merges();
                self.base.eg.reset_trail_high_water();
                let cp = self.base.checkpoint();
                arm_gated(&mut self.base, &mut shared, &self.gated_quants);
                self.base.pending.extend(parts.into_iter().map(|p| (p, 0)));
                let outcome = outcome_of(search(&mut self.base, 0, &mut shared), shared.fuel);
                let mut stats = shared.stats;
                stats.merges = self.base_merges + (self.base.eg.merges_performed() - merges_before);
                stats.trail_depth_max = self.base.eg.trail_high_water();
                stats.pops = self.base.eg.pops() - pops_before;
                stats.undone_merges = self.base.eg.undone_merges() - undone_before;
                self.base.rollback(cp);
                (outcome, stats)
            }
            SearchStrategy::CloneSearch => {
                let mut child = self.base.clone();
                arm_gated(&mut child, &mut shared, &self.gated_quants);
                child.pending.extend(parts.into_iter().map(|p| (p, 0)));
                let outcome = outcome_of(search(&mut child, 0, &mut shared), shared.fuel);
                (outcome, shared.stats)
            }
        };
        stats.exhausted = match outcome {
            Outcome::Unknown(reason) => Some(reason),
            _ => None,
        };
        stats.per_quant = render_per_quant(&shared.quant_meta);
        Proof {
            outcome,
            stats,
            open_branch: shared.open_branch,
            model: shared.model,
            millis: start.elapsed().as_secs_f64() * 1_000.0,
        }
    }

    /// The stable quantifier ids registered by background formula `axiom`
    /// (its index in the slice passed to [`ScopeContext::new`]). Proofs
    /// from this context report per-quantifier telemetry under these ids,
    /// so slicing decisions can be cross-checked against what actually
    /// fired.
    pub fn background_quants(&self, axiom: usize) -> &[usize] {
        self.axiom_quants
            .get(axiom)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the background alone was contradictory (every proof
    /// trivially succeeds).
    pub fn is_contradictory(&self) -> bool {
        self.contradictory
    }

    /// The budget dimension the base saturation exhausted, if any (every
    /// proof reports [`Outcome::Unknown`] with this reason).
    pub fn poisoned(&self) -> Option<UnknownReason> {
        self.poisoned
    }

    /// The budget the context was built with.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The search strategy the context was built with.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// A rendering of the shared E-graph's state, for asserting that a
    /// proof's rollback left the context byte-clean.
    pub fn debug_state(&self) -> String {
        self.base.eg.debug_state()
    }
}

// ------------------------------------------------------------------ internals

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Branch {
    Closed,
    Open,
    Fuel,
}

struct Shared {
    budget: Budget,
    stats: Stats,
    /// Stable ids for structurally identical quantifiers.
    quant_ids: HashMap<(Vec<Symbol>, Nnf), usize>,
    /// Per-quantifier telemetry, indexed by stable id (kept in lockstep
    /// with `quant_ids`).
    quant_meta: Vec<QuantMeta>,
    /// The first budget dimension that ran out, if any.
    fuel: Option<UnknownReason>,
    /// Literals of the first saturated open branch.
    open_branch: Option<Vec<String>>,
    /// Exported context of the first saturated open branch.
    model: Option<CandidateModel>,
    /// How case-split arms are backtracked.
    strategy: SearchStrategy,
    /// Whether the search is currently in background pre-saturation (true
    /// only while [`ScopeContext::new`] builds the base); instantiations
    /// are attributed to the presat/goal telemetry split by this flag.
    presat: bool,
}

/// Accumulating telemetry for one quantifier (rendered to a
/// [`QuantProfile`] when the search finishes).
#[derive(Clone)]
struct QuantMeta {
    kind: QuantKind,
    trigger: String,
    vars: Vec<Symbol>,
    matches: u64,
    instances: u64,
    presat_instances: u64,
    goal_instances: u64,
    deferred: u64,
    /// Ring of the most recent instantiation bindings (capacity
    /// [`CHAIN_LEN`]): the representative term chain for loop diagnosis.
    recent: Vec<Vec<Term>>,
}

/// How many recent instantiation bindings each quantifier retains.
const CHAIN_LEN: usize = 3;

/// Records the first exhausted budget dimension and reports fuel-out.
fn out_of_fuel(shared: &mut Shared, reason: UnknownReason) -> Branch {
    shared.fuel.get_or_insert(reason);
    Branch::Fuel
}

#[derive(Clone)]
struct Quant {
    id: usize,
    vars: Vec<Symbol>,
    triggers: Vec<Trigger>,
    body: Nnf,
}

/// A disjunction awaiting a case split. Arms falsified by the current
/// state are *masked* (`live[k] = false`) rather than removed, so
/// backtracking revives them in O(1); dead arms are never re-evaluated.
#[derive(Clone)]
struct SplitClause {
    arms: Vec<Nnf>,
    /// Matching generation of the originating fact.
    gen: u32,
    /// Liveness mask, parallel to `arms`.
    live: Vec<bool>,
    /// Number of `true` entries in `live`.
    live_count: usize,
}

impl SplitClause {
    fn new(arms: Vec<Nnf>, gen: u32) -> SplitClause {
        let live = vec![true; arms.len()];
        let live_count = arms.len();
        SplitClause {
            arms,
            gen,
            live,
            live_count,
        }
    }
}

/// One recorded inverse of a branch-local context mutation (the
/// counterpart of the E-graph's own undo trail, for `splits` and `seen`).
/// `pending` and `quants` only grow between checkpoints, so they roll back
/// by truncation instead of per-entry records.
#[derive(Clone)]
enum CtxUndo {
    /// A clause was appended to `splits`.
    SplitAdded,
    /// `splits.swap_remove(index)` removed this clause.
    SplitRemoved { index: usize, clause: SplitClause },
    /// Arm `arm` of `splits[clause]` was masked dead.
    ArmKilled { clause: usize, arm: usize },
    /// This instantiation key was added to `seen`.
    SeenInserted { key: (usize, Vec<Term>) },
}

/// A checkpoint over the full context, taken before exploring a split arm
/// in trail mode (see [`Ctx::checkpoint`] / [`Ctx::rollback`]).
struct Checkpoint {
    eg: crate::egraph::EgMark,
    trail_len: usize,
    pending_len: usize,
    quants_len: usize,
    labels_len: usize,
    deferred: bool,
    matched_upto: usize,
    fresh_quants_from: usize,
    full_pass_merges: u64,
}

/// A full-trigger-match result, reusable while the E-graph's touch stamps
/// show none of the trigger's symbols changed — under that condition a
/// rematch would return this exact binding vector (same classes, same
/// order). Cached bindings are still *walked* normally on reuse, so
/// instance terms, deferrals, and every counter come out identical to a
/// real rematch; only the E-graph scan is skipped.
#[derive(Clone)]
struct MatchCacheEntry {
    /// Symbols the trigger's full match consults.
    syms: Vec<crate::egraph::Sym>,
    /// Touch stamp taken immediately before the cached match ran.
    stamp: u64,
    /// Head symbol, for single-pattern triggers. Such a match is an
    /// in-order scan of one symbol bucket, so when only node *creation*
    /// (never a union or removal) touched the trigger's symbols, the
    /// cached bindings extend exactly by scanning the bucket suffix.
    head: Option<crate::egraph::Sym>,
    /// Length of the head's symbol bucket when the cached match ran.
    bucket_len: usize,
    /// The bindings the full match produced.
    bindings: Vec<crate::matcher::Binding>,
}

#[derive(Clone)]
struct Ctx {
    eg: EGraph,
    /// Facts to assert, each stamped with its matching generation.
    pending: Vec<(Nnf, u32)>,
    /// Disjunctions awaiting a case split.
    splits: Vec<SplitClause>,
    quants: Vec<Quant>,
    quant_ids_present: HashSet<usize>,
    /// Instantiations already performed in this branch.
    seen: HashSet<(usize, Vec<Term>)>,
    /// Position labels of the labelled literals asserted (or found already
    /// true) on this branch, in order. Rolls back by truncation.
    labels: Vec<u32>,
    /// Whether the generation limit deferred any instantiation.
    deferred: bool,
    /// Number of E-graph nodes already covered by anchored matching.
    matched_upto: usize,
    /// Quantifiers added since the last full (unanchored) matching pass.
    fresh_quants_from: usize,
    /// E-graph merge count at the end of the last full pass: when no
    /// merges happened since, a dry anchored pass already implies
    /// saturation (anchored matching covers new nodes, registration
    /// covers new quantifiers, so only merges can enable anything else).
    full_pass_merges: u64,
    /// Undo entries for `splits`/`seen` recorded since the oldest active
    /// checkpoint (trail mode; empty in clone mode).
    trail: Vec<CtxUndo>,
    /// Active checkpoints; context mutations record onto `trail` only
    /// when non-zero.
    recording: usize,
    /// Completed full-match results per `(quantifier index, trigger
    /// index)`. Cleared wholesale on rollback: entries may reference
    /// quantifier slots a rollback truncates, and `seen` keys inserted on
    /// the unwound branch disappear with it.
    match_cache: HashMap<(usize, usize), MatchCacheEntry>,
}

impl Ctx {
    fn record(&mut self, entry: CtxUndo) {
        if self.recording > 0 {
            self.trail.push(entry);
        }
    }

    fn add_split(&mut self, clause: SplitClause) {
        self.splits.push(clause);
        self.record(CtxUndo::SplitAdded);
    }

    /// Removes clause `index` by swap, recording its reinsertion.
    fn remove_split(&mut self, index: usize) {
        let clause = self.splits.swap_remove(index);
        if self.recording > 0 {
            self.trail.push(CtxUndo::SplitRemoved { index, clause });
        }
    }

    fn kill_arm(&mut self, clause: usize, arm: usize) {
        let s = &mut self.splits[clause];
        debug_assert!(s.live[arm]);
        s.live[arm] = false;
        s.live_count -= 1;
        self.record(CtxUndo::ArmKilled { clause, arm });
    }

    /// Opens a checkpoint covering the E-graph and all branch-local state.
    fn checkpoint(&mut self) -> Checkpoint {
        self.recording += 1;
        Checkpoint {
            eg: self.eg.push(),
            trail_len: self.trail.len(),
            pending_len: self.pending.len(),
            quants_len: self.quants.len(),
            labels_len: self.labels.len(),
            deferred: self.deferred,
            matched_upto: self.matched_upto,
            fresh_quants_from: self.fresh_quants_from,
            full_pass_merges: self.full_pass_merges,
        }
    }

    /// Restores the exact state at the matching [`Ctx::checkpoint`].
    fn rollback(&mut self, cp: Checkpoint) {
        while self.trail.len() > cp.trail_len {
            match self.trail.pop().expect("length checked") {
                CtxUndo::SplitAdded => {
                    self.splits.pop();
                }
                CtxUndo::SplitRemoved { index, clause } => {
                    // Inverse of swap_remove: put the clause back at the
                    // end, then swap it into its old slot (a no-op swap
                    // when it was the last element).
                    self.splits.push(clause);
                    let last = self.splits.len() - 1;
                    self.splits.swap(index, last);
                }
                CtxUndo::ArmKilled { clause, arm } => {
                    let s = &mut self.splits[clause];
                    s.live[arm] = true;
                    s.live_count += 1;
                }
                CtxUndo::SeenInserted { key } => {
                    self.seen.remove(&key);
                }
            }
        }
        while self.quants.len() > cp.quants_len {
            let q = self.quants.pop().expect("length checked");
            self.quant_ids_present.remove(&q.id);
        }
        self.pending.truncate(cp.pending_len);
        self.labels.truncate(cp.labels_len);
        self.deferred = cp.deferred;
        self.matched_upto = cp.matched_upto;
        self.fresh_quants_from = cp.fresh_quants_from;
        self.full_pass_merges = cp.full_pass_merges;
        self.match_cache.clear();
        self.eg.pop(cp.eg);
        self.recording -= 1;
    }
}

fn search(ctx: &mut Ctx, depth: usize, shared: &mut Shared) -> Branch {
    match shared.strategy {
        // Trail mode shares one E-graph, so its monotonic merge counter
        // already counts every merge once; `refute_with_strategy` copies
        // it into the stats at the end.
        SearchStrategy::Trail => search_frame(ctx, depth, shared),
        SearchStrategy::CloneSearch => {
            // Frame-delta merge accounting: each child branch clones the
            // E-graph, so counting each frame's own growth sums every
            // merge exactly once.
            let merges_at_entry = ctx.eg.merge_count();
            let verdict = search_frame(ctx, depth, shared);
            shared.stats.merges += ctx.eg.merge_count().saturating_sub(merges_at_entry);
            verdict
        }
    }
}

fn search_frame(ctx: &mut Ctx, depth: usize, shared: &mut Shared) -> Branch {
    shared.stats.max_depth = shared.stats.max_depth.max(depth);
    if depth >= shared.budget.max_depth {
        return out_of_fuel(shared, UnknownReason::Depth);
    }
    loop {
        // 1. Assert all pending facts.
        match drain_pending(ctx, shared) {
            Step::Conflict => return Branch::Closed,
            Step::Fuel => return Branch::Fuel,
            Step::Ok => {}
        }
        // 2. Simplify disjunctions; unit-propagate.
        match normalize_splits(ctx) {
            Step::Conflict => return Branch::Closed,
            Step::Fuel => return Branch::Fuel,
            Step::Ok => {}
        }
        if !ctx.pending.is_empty() {
            continue; // unit propagation produced new facts
        }
        // 3. Saturate quantifiers BEFORE splitting: instances produced
        //    here are inherited by every branch below (via the per-branch
        //    seen-set cloned from this context), avoiding re-derivation
        //    once per branch.
        shared.stats.rounds += 1;
        if shared.stats.rounds > shared.budget.max_rounds {
            return out_of_fuel(shared, UnknownReason::Rounds);
        }
        match instantiate_round(ctx, shared) {
            InstResult::Progress => continue,
            InstResult::Fuel => return Branch::Fuel,
            InstResult::Saturated => {}
        }
        // 4. Case split if a disjunction remains.
        if let Some(idx) = pick_split(ctx) {
            // Remove the clause for the duration of the exploration (so
            // child frames don't split on it again); the removal is
            // recorded on the trail only once the arm loop is done, which
            // keeps the trail LIFO — every child checkpoint has already
            // been unwound by then.
            let clause = ctx.splits.swap_remove(idx);
            let mut any_open = false;
            let mut any_fuel = false;
            let mut fuel_out = false;
            for (k, live) in clause.live.iter().enumerate() {
                if !live {
                    continue;
                }
                shared.stats.branches += 1;
                if shared.stats.branches > shared.budget.max_branches {
                    fuel_out = true;
                    shared.fuel.get_or_insert(UnknownReason::Branches);
                    break;
                }
                let arm = clause.arms[k].clone();
                if trace_enabled() {
                    eprintln!("[{:indent$}branch {arm}]", "", indent = depth.min(20));
                }
                let verdict = match shared.strategy {
                    SearchStrategy::Trail => {
                        let cp = ctx.checkpoint();
                        ctx.pending.push((arm, clause.gen));
                        let verdict = search(ctx, depth + 1, shared);
                        ctx.rollback(cp);
                        verdict
                    }
                    SearchStrategy::CloneSearch => {
                        let mut child = ctx.clone();
                        child.pending.push((arm, clause.gen));
                        search(&mut child, depth + 1, shared)
                    }
                };
                if trace_enabled() {
                    eprintln!("[{:indent$}-> {verdict:?}]", "", indent = depth.min(20));
                }
                match verdict {
                    Branch::Closed => {}
                    Branch::Open => {
                        any_open = true;
                        break;
                    }
                    Branch::Fuel => any_fuel = true,
                }
            }
            if ctx.recording > 0 {
                ctx.trail.push(CtxUndo::SplitRemoved { index: idx, clause });
            }
            return if fuel_out {
                Branch::Fuel
            } else if any_open {
                Branch::Open
            } else if any_fuel {
                Branch::Fuel
            } else {
                Branch::Closed
            };
        }
        // 5. Fully saturated with no splits left: the branch is open.
        if ctx.deferred {
            // Instantiation was incomplete: the branch may yet be
            // contradictory at a deeper matching generation.
            return out_of_fuel(shared, UnknownReason::DeferredInstances);
        }
        if shared.open_branch.is_none() {
            shared.open_branch = Some(describe_branch(ctx));
            shared.model = Some(extract_model(ctx));
        }
        return Branch::Open;
    }
}

enum Step {
    Ok,
    Conflict,
    Fuel,
}

fn drain_pending(ctx: &mut Ctx, shared: &mut Shared) -> Step {
    while let Some((f, gen)) = ctx.pending.pop() {
        match f {
            Nnf::True => {}
            Nnf::False => return Step::Conflict,
            Nnf::And(parts) => ctx.pending.extend(parts.into_iter().map(|p| (p, gen))),
            Nnf::Or(parts) => {
                shared.stats.clauses += 1;
                ctx.add_split(SplitClause::new(parts, gen));
            }
            Nnf::Lit {
                atom,
                positive,
                label,
            } => {
                if let Some(id) = label {
                    ctx.labels.push(id);
                }
                ctx.eg.set_generation(gen);
                if assert_lit(&mut ctx.eg, &atom, positive).is_err() {
                    return Step::Conflict;
                }
                if ctx.eg.node_count() > shared.budget.max_nodes {
                    shared.fuel.get_or_insert(UnknownReason::Nodes);
                    return Step::Fuel;
                }
                shared.stats.peak_nodes = shared.stats.peak_nodes.max(ctx.eg.node_count());
            }
            Nnf::Forall {
                vars,
                triggers,
                body,
            } => {
                register_quant(ctx, shared, vars, triggers, *body);
            }
        }
    }
    Step::Ok
}

/// Splits a goal-directed background axiom's NNF into its ground conjuncts
/// (pushed onto `pending` for eager assertion — they are facts, not
/// matching rules) and its top-level quantifiers (handed to `gate`).
/// Quantifiers nested under disjunctions or other quantifiers stay where
/// they are: they only come alive through instantiation inside a frame, so
/// they are goal-directed already.
fn split_gated(
    nnf: Nnf,
    pending: &mut Vec<(Nnf, u32)>,
    gate: &mut impl FnMut(Vec<Symbol>, Vec<Trigger>, Nnf),
) {
    match nnf {
        Nnf::And(parts) => {
            for part in parts {
                split_gated(part, pending, gate);
            }
        }
        Nnf::Forall {
            vars,
            triggers,
            body,
        } => gate(vars, triggers, *body),
        other => pending.push((other, 0)),
    }
}

/// Assigns a gated quantifier its stable id and telemetry row *without*
/// activating it: the id is allocated in background order (so `axiom_quants`
/// and per-quantifier telemetry cover gated axioms exactly like eager
/// ones), but the quantifier joins no branch until [`arm_gated`] runs
/// inside an obligation frame.
fn park_gated_quant(
    shared: &mut Shared,
    vars: Vec<Symbol>,
    triggers: Vec<Trigger>,
    body: Nnf,
) -> Quant {
    let key = (vars.clone(), body.clone());
    let next_id = shared.quant_ids.len();
    let id = *shared.quant_ids.entry(key).or_insert(next_id);
    let triggers = if triggers.is_empty() {
        infer_triggers(&vars, &body)
    } else {
        triggers
    };
    if id == shared.quant_meta.len() {
        shared.quant_meta.push(QuantMeta {
            kind: classify_quant(&triggers, &body),
            trigger: triggers
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
            vars: vars.clone(),
            matches: 0,
            instances: 0,
            presat_instances: 0,
            goal_instances: 0,
            deferred: 0,
            recent: Vec::new(),
        });
    }
    Quant {
        id,
        vars,
        triggers,
        body,
    }
}

/// Activates the context's gated quantifiers in the current branch. Runs
/// after the obligation frame's checkpoint (trail) or on the frame's clone,
/// so rollback/drop disarms them; armed quantifiers sit past
/// `fresh_quants_from` and get a full matching pass on the frame's first
/// saturation round, exactly like a quantifier registered by the
/// obligation itself.
fn arm_gated(ctx: &mut Ctx, shared: &mut Shared, gated: &[Quant]) {
    for q in gated {
        if !ctx.quant_ids_present.insert(q.id) {
            continue; // structurally shared with an eager axiom
        }
        shared.stats.quants += 1;
        if q.triggers.is_empty() {
            shared.stats.skipped_quants += 1;
        }
        ctx.quants.push(q.clone());
    }
}

fn register_quant(
    ctx: &mut Ctx,
    shared: &mut Shared,
    vars: Vec<Symbol>,
    triggers: Vec<Trigger>,
    body: Nnf,
) {
    let key = (vars.clone(), body.clone());
    let next_id = shared.quant_ids.len();
    let id = *shared.quant_ids.entry(key).or_insert(next_id);
    if !ctx.quant_ids_present.insert(id) {
        return; // already active in this branch
    }
    shared.stats.quants += 1;
    let triggers = if triggers.is_empty() {
        let inferred = infer_triggers(&vars, &body);
        if inferred.is_empty() {
            shared.stats.skipped_quants += 1;
            Vec::new()
        } else {
            inferred
        }
    } else {
        triggers
    };
    if id == shared.quant_meta.len() {
        // First registration of this structural quantifier anywhere in the
        // search: record its telemetry row.
        shared.quant_meta.push(QuantMeta {
            kind: classify_quant(&triggers, &body),
            trigger: triggers
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
            vars: vars.clone(),
            matches: 0,
            instances: 0,
            presat_instances: 0,
            goal_instances: 0,
            deferred: 0,
            recent: Vec::new(),
        });
    }
    if trace_enabled() {
        eprintln!(
            "[quant q{id} ∀{} {} :: {body}]",
            vars.iter()
                .map(|v| v.as_str())
                .collect::<Vec<_>>()
                .join(","),
            triggers
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    ctx.quants.push(Quant {
        id,
        vars,
        triggers,
        body,
    });
}

fn assert_lit(eg: &mut EGraph, atom: &Atom, positive: bool) -> Result<(), crate::egraph::Conflict> {
    match atom {
        Atom::Eq(a, b) => {
            let a = eg.intern(a)?;
            let b = eg.intern(b)?;
            if positive {
                eg.merge(a, b)
            } else {
                eg.assert_diseq(a, b)
            }
        }
        other => {
            let node = eg.intern_atom(other)?.expect("non-Eq atoms have nodes");
            let target = if positive {
                eg.true_id()
            } else {
                eg.false_id()
            };
            eg.merge(node, target)
        }
    }
}

/// Truth of a literal under the current E-graph, if determined.
fn lit_truth(eg: &mut EGraph, atom: &Atom, positive: bool) -> Option<bool> {
    let raw = match atom {
        Atom::Eq(a, b) => {
            let a = eg.intern(a).ok()?;
            let b = eg.intern(b).ok()?;
            if eg.same_class(a, b) {
                Some(true)
            } else if eg.known_disequal(a, b) {
                Some(false)
            } else {
                None
            }
        }
        other => {
            let node = eg.intern_atom(other).ok()??;
            eg.bool_value(node)
        }
    };
    raw.map(|v| if positive { v } else { !v })
}

fn normalize_splits(ctx: &mut Ctx) -> Step {
    let mut i = 0;
    while i < ctx.splits.len() {
        let mut satisfied = false;
        let arm_count = ctx.splits[i].arms.len();
        for k in 0..arm_count {
            if !ctx.splits[i].live[k] {
                continue;
            }
            // Evaluating a literal interns its atom (mutating the
            // E-graph), so take the arm out of the clause for the call.
            let arm = std::mem::replace(&mut ctx.splits[i].arms[k], Nnf::True);
            let (truth, label) = match &arm {
                Nnf::True => (Some(true), None),
                Nnf::False => (Some(false), None),
                Nnf::Lit {
                    atom,
                    positive,
                    label,
                } => (lit_truth(&mut ctx.eg, atom, *positive), *label),
                _ => (None, None),
            };
            ctx.splits[i].arms[k] = arm;
            match truth {
                Some(true) => {
                    // A labelled literal that already holds on the branch
                    // still stamps the branch with its position.
                    if let Some(id) = label {
                        ctx.labels.push(id);
                    }
                    satisfied = true;
                }
                Some(false) => ctx.kill_arm(i, k),
                None => {}
            }
        }
        if satisfied {
            ctx.remove_split(i);
            continue;
        }
        match ctx.splits[i].live_count {
            0 => return Step::Conflict,
            1 => {
                let k = ctx.splits[i]
                    .live
                    .iter()
                    .position(|&l| l)
                    .expect("live_count is 1");
                let arm = ctx.splits[i].arms[k].clone();
                ctx.pending.push((arm, ctx.splits[i].gen));
                ctx.remove_split(i);
                // Re-examine remaining splits after the new fact lands.
                return Step::Ok;
            }
            _ => {
                i += 1;
            }
        }
    }
    Step::Ok
}

fn pick_split(ctx: &Ctx) -> Option<usize> {
    ctx.splits
        .iter()
        .enumerate()
        .min_by_key(|(_, clause)| (clause.live_count, clause.gen))
        .map(|(i, _)| i)
}

enum InstResult {
    Progress,
    Saturated,
    Fuel,
}

/// Renders the determined predicate nodes of a saturated branch, for
/// diagnosis of failed proofs.
fn describe_branch(ctx: &Ctx) -> Vec<String> {
    use crate::egraph::Sym;
    let mut out = Vec::new();
    let mut aliases = Vec::new();
    for sym in [
        Sym::PAlive,
        Sym::PLocalInc,
        Sym::PRepInc,
        Sym::PInc,
        Sym::PLt,
        Sym::PLe,
        Sym::PIsObj,
        Sym::PIsInt,
        Sym::PRepIncElem,
    ] {
        for &node in ctx.eg.nodes_with_sym(&sym) {
            let value = match ctx.eg.bool_value(node) {
                Some(true) => "true",
                Some(false) => "false",
                None => "?",
            };
            let args: Vec<String> = ctx
                .eg
                .node(node)
                .children
                .clone()
                .into_iter()
                .map(|c| term_of(&ctx.eg, c, &mut aliases).to_string())
                .collect();
            out.push(format!("{sym:?}({}) = {value}", args.join(", ")));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// How many E-classes the pairwise disequality scan of [`extract_model`]
/// covers. Refuting branches are small in practice; the cap only guards
/// against quadratic blowup on pathological saturations.
const MODEL_DISEQ_CLASS_CAP: usize = 256;

/// Exports the saturated branch context as a [`CandidateModel`]: the
/// ground E-class partition, the `select` function graph, the determined
/// predicate entries, known disequalities, and the position labels
/// asserted on the branch.
fn extract_model(ctx: &Ctx) -> CandidateModel {
    use crate::egraph::Sym;
    let eg = &ctx.eg;
    let mut aliases = Vec::new();
    // Partition the nodes into classes, indexed in first-appearance order
    // (deterministic: node ids are allocation-ordered).
    let mut index: HashMap<NodeId, usize> = HashMap::new();
    let mut roots: Vec<NodeId> = Vec::new();
    let mut classes: Vec<ModelClass> = Vec::new();
    for id in 0..eg.node_count() as NodeId {
        let root = eg.find(id);
        let idx = *index.entry(root).or_insert_with(|| {
            roots.push(root);
            classes.push(ModelClass {
                repr: term_of(eg, root, &mut aliases),
                members: Vec::new(),
                value: eg.class_value(root).cloned(),
            });
            classes.len() - 1
        });
        match &eg.node(id).sym {
            Sym::Var(name) => classes[idx].members.push(Term::var(*name)),
            Sym::Lit(c) => classes[idx].members.push(Term::lit(*c)),
            _ => {}
        }
    }
    let class_of = |id: NodeId| index[&eg.find(id)];
    let mut selects = Vec::new();
    for &node in eg.nodes_with_sym(&Sym::Select) {
        let ch = &eg.node(node).children;
        if ch.len() == 3 {
            selects.push(ModelSelect {
                store: class_of(ch[0]),
                obj: class_of(ch[1]),
                attr: class_of(ch[2]),
                value: class_of(node),
            });
        }
    }
    selects.sort_unstable_by_key(|s| (s.store, s.obj, s.attr, s.value));
    selects.dedup();
    let mut relations = Vec::new();
    for sym in [
        Sym::PAlive,
        Sym::PLocalInc,
        Sym::PRepInc,
        Sym::PInc,
        Sym::PLt,
        Sym::PLe,
        Sym::PIsObj,
        Sym::PIsInt,
        Sym::PRepIncElem,
    ] {
        for &node in eg.nodes_with_sym(&sym) {
            relations.push(ModelRelation {
                sym: format!("{sym:?}"),
                args: eg
                    .node(node)
                    .children
                    .iter()
                    .map(|&c| class_of(c))
                    .collect(),
                value: eg.bool_value(node),
            });
        }
    }
    relations.sort_unstable_by(|a, b| (&a.sym, &a.args).cmp(&(&b.sym, &b.args)));
    relations.dedup();
    let mut diseqs = Vec::new();
    let scan = roots.len().min(MODEL_DISEQ_CLASS_CAP);
    for i in 0..scan {
        for j in i + 1..scan {
            if eg.known_disequal(roots[i], roots[j]) {
                diseqs.push((i, j));
            }
        }
    }
    let mut labels = Vec::new();
    for &l in &ctx.labels {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    CandidateModel {
        labels,
        classes,
        selects,
        relations,
        diseqs,
    }
}

/// Whether the `OOLONG_PROVER_TRACE` environment variable enables
/// instantiation tracing on stderr (checked once per process).
fn trace_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("OOLONG_PROVER_TRACE").is_some())
}

/// One saturation round. Mostly *incremental*: new quantifiers are matched
/// fully once, old quantifiers are matched only against nodes created
/// since the last round (anchored matching). When an incremental round
/// produces nothing, a full pass confirms saturation.
fn instantiate_round(ctx: &mut Ctx, shared: &mut Shared) -> InstResult {
    let produced = instantiate_pass(ctx, shared, false);
    match produced {
        PassResult::Produced(n) if n > 0 => return InstResult::Progress,
        PassResult::Fuel => return InstResult::Fuel,
        _ => {}
    }
    // Incremental pass was dry. A full pass can only find more if a merge
    // happened since the previous full pass (new nodes and new quantifiers
    // are already covered incrementally).
    if ctx.eg.merge_count() == ctx.full_pass_merges {
        return InstResult::Saturated;
    }
    let result = match instantiate_pass(ctx, shared, true) {
        PassResult::Produced(0) => InstResult::Saturated,
        PassResult::Produced(_) => InstResult::Progress,
        PassResult::Fuel => InstResult::Fuel,
    };
    ctx.full_pass_merges = ctx.eg.merge_count();
    result
}

enum PassResult {
    Produced(usize),
    Fuel,
}

// TEMP instrumentation

/// `term_of`, memoized by class root for the duration of one pass. The
/// E-graph only changes mid-pass through alias merges, which bump the
/// (node, merge) counts and flush the memo; results that pushed aliases
/// carry a side effect and are never cached. Under those rules a hit
/// returns exactly what a fresh `term_of` call would.
fn term_of_memo(
    eg: &EGraph,
    id: crate::egraph::NodeId,
    aliases: &mut Vec<(Term, crate::egraph::NodeId)>,
    memo: &mut HashMap<crate::egraph::NodeId, Term>,
    version: &mut (usize, u64),
) -> Term {
    let now = (eg.node_count(), eg.merge_count());
    if *version != now {
        memo.clear();
        *version = now;
    }
    let root = eg.find(id);
    if let Some(&t) = memo.get(&root) {
        return t;
    }
    let before = aliases.len();
    let t = term_of(eg, id, aliases);
    if aliases.len() == before {
        memo.insert(root, t);
    }
    t
}

fn instantiate_pass(ctx: &mut Ctx, shared: &mut Shared, full: bool) -> PassResult {
    let mut term_memo: HashMap<crate::egraph::NodeId, Term> = HashMap::new();
    let mut memo_version: (usize, u64) = (0, 0);

    let mut produced = 0;
    let new_nodes: Vec<crate::egraph::NodeId> = if full {
        Vec::new()
    } else {
        (ctx.matched_upto..ctx.eg.node_count())
            .map(|i| i as crate::egraph::NodeId)
            .collect()
    };
    let fresh_from = ctx.fresh_quants_from;
    ctx.matched_upto = ctx.eg.node_count();
    ctx.fresh_quants_from = ctx.quants.len();
    // Split borrows: quantifiers are only registered by `drain_pending`,
    // never during a pass, so the list can be iterated in place while the
    // E-graph, seen-set, and pending queue are mutated.
    let Ctx {
        eg,
        pending,
        quants,
        seen,
        deferred,
        trail,
        recording,
        match_cache,
        ..
    } = ctx;
    // Bucket the new nodes by head symbol once: anchored matching can only
    // pin a pattern at a node whose head symbol one of the trigger's
    // patterns carries, so each trigger sweeps its head buckets instead of
    // every new node.
    let mut by_head: HashMap<crate::egraph::Sym, Vec<crate::egraph::NodeId>> = HashMap::new();
    for &node in &new_nodes {
        by_head.entry(eg.node(node).sym).or_default().push(node);
    }
    for (qi, quant) in quants.iter().enumerate() {
        for (ti, trigger) in quant.triggers.iter().enumerate() {
            let full_match = full || qi >= fresh_from;
            let anchored_bindings;
            let bindings: &[crate::matcher::Binding] = if full_match {
                // Full pass, or a quantifier registered since the last
                // pass: match against the whole graph — unless an earlier
                // full match of this trigger is still valid, in which case
                // a rematch would return the identical binding vector and
                // the cached one is walked instead. Walking (not skipping)
                // keeps instance terms, deferrals, and counters exact.
                enum Plan {
                    Hit,
                    Extend,
                    Rescan,
                }
                let plan = match match_cache.get(&(qi, ti)) {
                    Some(e) if eg.syms_unchanged_since(&e.syms, e.stamp) => Plan::Hit,
                    Some(e)
                        if e.head.is_some() && eg.syms_struct_unchanged_since(&e.syms, e.stamp) =>
                    {
                        Plan::Extend
                    }
                    _ => Plan::Rescan,
                };
                match plan {
                    Plan::Hit => {}
                    Plan::Extend => {
                        // Only node creation touched the trigger's symbols:
                        // every cached match survives with its dedup key, and
                        // new matches can only sit at nodes appended to the
                        // head bucket. Scanning that suffix reproduces a full
                        // rescan exactly, in order.
                        let e = match_cache.get_mut(&(qi, ti)).expect("entry exists");
                        let head = e.head.expect("extend plan implies head");
                        e.stamp = eg.touch_stamp();
                        crate::matcher::match_trigger_extend(
                            eg,
                            &quant.vars,
                            trigger,
                            head,
                            e.bucket_len,
                            &mut e.bindings,
                        );
                        e.bucket_len = eg.nodes_with_sym(&head).len();
                    }
                    Plan::Rescan => {
                        let stamp = eg.touch_stamp();
                        let bindings = match_trigger(eg, &quant.vars, trigger);
                        let head = crate::matcher::trigger_single_head(trigger);
                        let bucket_len = head.map_or(0, |h| eg.nodes_with_sym(&h).len());
                        match_cache.insert(
                            (qi, ti),
                            MatchCacheEntry {
                                syms: crate::matcher::trigger_syms(&quant.vars, trigger),
                                stamp,
                                head,
                                bucket_len,
                                bindings,
                            },
                        );
                    }
                }
                &match_cache[&(qi, ti)].bindings
            } else {
                let heads = crate::matcher::trigger_heads(trigger);
                let mut candidates: Vec<crate::egraph::NodeId> = Vec::new();
                for head in &heads {
                    if let Some(bucket) = by_head.get(head) {
                        candidates.extend_from_slice(bucket);
                    }
                }
                if heads.len() > 1 {
                    // Restore creation order across buckets (each bucket is
                    // already ordered); a node can appear in only one.
                    candidates.sort_unstable();
                }
                let mut out = Vec::new();
                for &node in &candidates {
                    out.extend(match_trigger_anchored(eg, &quant.vars, trigger, node));
                }
                anchored_bindings = out;
                &anchored_bindings
            };
            shared.stats.trigger_matches += bindings.len() as u64;
            shared.quant_meta[quant.id].matches += bindings.len() as u64;
            for binding in bindings {
                let bound = |hole: usize| binding.node(hole as u16).expect("binding is complete");
                let binding_gen = (0..quant.vars.len())
                    .map(|hole| eg.class_gen(bound(hole)))
                    .max()
                    .unwrap_or(0);
                let instance_gen = binding_gen + 1;
                if instance_gen > shared.budget.max_term_gen {
                    *deferred = true;
                    shared.stats.deferred_instances += 1;
                    shared.quant_meta[quant.id].deferred += 1;
                    continue;
                }
                let mut aliases = Vec::new();
                let terms: Vec<Term> = (0..quant.vars.len())
                    .map(|hole| {
                        term_of_memo(
                            eg,
                            bound(hole),
                            &mut aliases,
                            &mut term_memo,
                            &mut memo_version,
                        )
                    })
                    .collect();
                let key = (quant.id, terms.clone());
                if seen.contains(&key) {
                    continue;
                }
                if *recording > 0 {
                    trail.push(CtxUndo::SeenInserted { key: key.clone() });
                }
                seen.insert(key);
                // Definitional aliases keep instantiation sound for
                // leafless cyclic classes.
                for (alias, root) in aliases {
                    let Ok(alias_id) = eg.intern(&alias) else {
                        shared.fuel.get_or_insert(UnknownReason::Instances);
                        return PassResult::Fuel;
                    };
                    if eg.merge(alias_id, root).is_err() {
                        // The alias equates a class with itself; a conflict
                        // here means the branch is already contradictory.
                        pending.push((Nnf::False, instance_gen));
                        return PassResult::Produced(produced + 1);
                    }
                }
                let map: Vec<(Symbol, Term)> = quant.vars.iter().copied().zip(terms).collect();
                if trace_enabled() {
                    let binding: Vec<String> =
                        map.iter().map(|(v, t)| format!("{v}:={t}")).collect();
                    eprintln!("[inst q{} {}]", quant.id, binding.join(", "));
                }
                pending.push((quant.body.subst(&map), instance_gen));
                produced += 1;
                shared.stats.instances += 1;
                let meta = &mut shared.quant_meta[quant.id];
                meta.instances += 1;
                if shared.presat {
                    meta.presat_instances += 1;
                } else {
                    meta.goal_instances += 1;
                }
                if meta.recent.len() == CHAIN_LEN {
                    meta.recent.remove(0);
                }
                meta.recent.push(map.iter().map(|(_, t)| *t).collect());
                if shared.stats.instances >= shared.budget.max_instances {
                    shared.fuel.get_or_insert(UnknownReason::Instances);
                    return PassResult::Fuel;
                }
                if produced >= shared.budget.max_instances_per_round {
                    return PassResult::Produced(produced);
                }
            }
        }
    }
    PassResult::Produced(produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::{Formula as F, Pattern, Term as T};

    fn proved(hyps: &[F], goal: &F) -> bool {
        prove(hyps, goal, &Budget::default()).is_proved()
    }

    #[test]
    fn proves_reflexivity() {
        assert!(proved(&[], &F::eq(T::var("x"), T::var("x"))));
    }

    #[test]
    fn does_not_prove_false() {
        let p = prove(&[], &F::False, &Budget::default());
        assert_eq!(p.outcome, Outcome::NotProved);
    }

    #[test]
    fn proves_transitivity_of_equality() {
        let hyps = [
            F::eq(T::var("a"), T::var("b")),
            F::eq(T::var("b"), T::var("c")),
        ];
        assert!(proved(&hyps, &F::eq(T::var("a"), T::var("c"))));
    }

    #[test]
    fn proves_congruence() {
        let hyps = [F::eq(T::var("a"), T::var("b"))];
        let goal = F::eq(
            T::uninterp("f", vec![T::var("a")]),
            T::uninterp("f", vec![T::var("b")]),
        );
        assert!(proved(&hyps, &goal));
    }

    #[test]
    fn refutes_distinct_constants() {
        assert!(proved(
            &[F::eq(T::var("x"), T::int(1)), F::eq(T::var("x"), T::int(2))],
            &F::False
        ));
    }

    #[test]
    fn case_split_on_disjunction() {
        // (x = 1 ∨ x = 2) ⇒ x ≠ 3
        let hyp = F::or(vec![
            F::eq(T::var("x"), T::int(1)),
            F::eq(T::var("x"), T::int(2)),
        ]);
        assert!(proved(&[hyp], &F::neq(T::var("x"), T::int(3))));
    }

    #[test]
    fn does_not_prove_too_much_from_disjunction() {
        let hyp = F::or(vec![
            F::eq(T::var("x"), T::int(1)),
            F::eq(T::var("x"), T::int(2)),
        ]);
        let p = prove(&[hyp], &F::eq(T::var("x"), T::int(1)), &Budget::default());
        assert_eq!(p.outcome, Outcome::NotProved);
    }

    #[test]
    fn modus_ponens_via_disjunction() {
        // (p ⇒ q), p ⊢ q  with p, q boolean terms.
        let p = F::Atom(Atom::BoolTerm(T::var("p")));
        let q = F::Atom(Atom::BoolTerm(T::var("q")));
        assert!(proved(&[F::implies(p.clone(), q.clone()), p], &q));
    }

    #[test]
    fn instantiates_universal_hypothesis() {
        // ∀X {f(X)} :: f(X) = 0, with f(c) present ⊢ f(c) = 0.
        let body = F::eq(T::uninterp("f", vec![T::var("X")]), T::int(0));
        let trig = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        let hyp = F::forall(vec!["X".into()], vec![trig], body);
        let goal = F::eq(T::uninterp("f", vec![T::var("c")]), T::int(0));
        assert!(proved(&[hyp], &goal));
    }

    #[test]
    fn chained_instantiation() {
        // ∀X :: f(X) = g(X); ∀X :: g(X) = 0 ⊢ f(c) = 0.
        let h1 = F::forall(
            vec!["X".into()],
            vec![Trigger(vec![Pattern::Term(T::uninterp(
                "f",
                vec![T::var("X")],
            ))])],
            F::eq(
                T::uninterp("f", vec![T::var("X")]),
                T::uninterp("g", vec![T::var("X")]),
            ),
        );
        let h2 = F::forall(
            vec!["X".into()],
            vec![Trigger(vec![Pattern::Term(T::uninterp(
                "g",
                vec![T::var("X")],
            ))])],
            F::eq(T::uninterp("g", vec![T::var("X")]), T::int(0)),
        );
        let goal = F::eq(T::uninterp("f", vec![T::var("c")]), T::int(0));
        assert!(proved(&[h1, h2], &goal));
    }

    #[test]
    fn existential_goal_via_witness() {
        // f(c) = 1 ⊢ ∃X :: f(X) = 1 — note the negated goal becomes
        // ∀X :: f(X) ≠ 1, instantiated at X := c by the f(X) trigger.
        let hyp = F::eq(T::uninterp("f", vec![T::var("c")]), T::int(1));
        let goal = F::exists(
            vec!["X".into()],
            F::eq(T::uninterp("f", vec![T::var("X")]), T::int(1)),
        );
        assert!(proved(&[hyp], &goal));
    }

    #[test]
    fn arithmetic_evaluation_in_proofs() {
        // x = 2 ⊢ x + 3 = 5.
        let hyp = F::eq(T::var("x"), T::int(2));
        let goal = F::eq(T::add(T::var("x"), T::int(3)), T::int(5));
        assert!(proved(&[hyp], &goal));
    }

    #[test]
    fn comparison_atoms() {
        let goal = F::Atom(Atom::Lt(T::int(1), T::int(2)));
        assert!(proved(&[], &goal));
        let bad = F::Atom(Atom::Lt(T::int(2), T::int(1)));
        assert_eq!(
            prove(&[], &bad, &Budget::default()).outcome,
            Outcome::NotProved
        );
    }

    #[test]
    fn unknown_on_tiny_budget_with_looping_axiom() {
        // ∀X {f(X)} :: f(g(X)) = X — each instantiation creates a fresh
        // f-term over a new g-chain, matching again: a true matching loop.
        // (Note: the milder f(f(X)) = f(X) loop *converges* in our E-graph
        // because instances collapse into existing classes.)
        let body = F::eq(
            T::uninterp("f", vec![T::uninterp("g", vec![T::var("X")])]),
            T::var("X"),
        );
        let trig = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        let hyp = F::forall(vec!["X".into()], vec![trig], body);
        let seed = F::eq(T::uninterp("f", vec![T::var("c")]), T::var("d"));
        // Unprovable goal, diverging instantiation: tiny budget gives Unknown.
        let p = prove(&[hyp, seed], &F::False, &Budget::tiny());
        assert!(p.outcome.is_unknown(), "outcome: {}", p.outcome);
        assert!(p.stats.instances > 0);
        // The divergence attributor names the looping axiom.
        let divergence = p.divergence().expect("unknown proofs attribute divergence");
        assert!(!divergence.culprits.is_empty());
        let culprit = &divergence.culprits[0];
        assert!(culprit.instances > 0);
        assert!(
            !culprit.chain.is_empty(),
            "culprits carry a representative term chain"
        );
        assert!(
            culprit.trigger.contains('f'),
            "trigger: {}",
            culprit.trigger
        );
    }

    #[test]
    fn unknown_display_names_the_exhausted_dimension() {
        assert_eq!(
            Outcome::Unknown(UnknownReason::Instances).to_string(),
            "unknown (instantiation budget exhausted)"
        );
        assert_eq!(
            Outcome::Unknown(UnknownReason::Branches).to_string(),
            "unknown (case-split budget exhausted)"
        );
        assert_eq!(
            Outcome::Unknown(UnknownReason::DeferredInstances).to_string(),
            "unknown (matching-generation limit deferred instantiations)"
        );
    }

    #[test]
    fn unknown_reason_names_round_trip() {
        for reason in [
            UnknownReason::Instances,
            UnknownReason::Branches,
            UnknownReason::Nodes,
            UnknownReason::Depth,
            UnknownReason::Rounds,
            UnknownReason::DeferredInstances,
        ] {
            assert_eq!(UnknownReason::from_name(reason.as_str()), Some(reason));
        }
        assert_eq!(UnknownReason::from_name("bogus"), None);
    }

    #[test]
    fn stats_scalar_fields_round_trip() {
        let body = F::eq(T::uninterp("f", vec![T::var("X")]), T::int(0));
        let trig = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        let hyp = F::forall(vec!["X".into()], vec![trig], body);
        // The chain a = b = c forces benign merges before the goal closes.
        let chain = [
            F::eq(T::var("a"), T::var("b")),
            F::eq(T::var("b"), T::var("c")),
            F::eq(T::uninterp("f", vec![T::var("a")]), T::var("a")),
        ];
        let goal = F::eq(T::uninterp("f", vec![T::var("c")]), T::int(0));
        let mut hyps = vec![hyp];
        hyps.extend(chain);
        let p = prove(&hyps, &goal, &Budget::default());
        let rebuilt = Stats::from_fields(p.stats.to_fields());
        // Scalars round-trip; the structured members are serialized
        // separately by the cache.
        assert_eq!(rebuilt.instances, p.stats.instances);
        assert_eq!(rebuilt.trigger_matches, p.stats.trigger_matches);
        assert_eq!(rebuilt.merges, p.stats.merges);
        assert_eq!(rebuilt.clauses, p.stats.clauses);
        assert!(p.stats.merges > 0, "asserting literals merges classes");
        assert!(p.stats.trigger_matches >= p.stats.instances as u64);
    }

    #[test]
    fn convergent_rewrite_loop_saturates() {
        // f(f(X)) = f(X) collapses into finitely many classes: the prover
        // saturates and answers NotProved instead of diverging.
        let body = F::eq(
            T::uninterp("f", vec![T::uninterp("f", vec![T::var("X")])]),
            T::uninterp("f", vec![T::var("X")]),
        );
        let trig = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        let hyp = F::forall(vec!["X".into()], vec![trig], body);
        let seed = F::eq(T::uninterp("f", vec![T::var("c")]), T::var("d"));
        let p = prove(&[hyp, seed], &F::False, &Budget::default());
        assert_eq!(p.outcome, Outcome::NotProved);
    }

    #[test]
    fn iff_hypothesis_used_both_ways() {
        let p = F::Atom(Atom::BoolTerm(T::var("p")));
        let q = F::Atom(Atom::BoolTerm(T::var("q")));
        let iff = F::Iff(Box::new(p.clone()), Box::new(q.clone()));
        assert!(proved(&[iff.clone(), q.clone()], &p));
        assert!(proved(&[iff, F::not(p.clone())], &F::not(q)));
    }

    #[test]
    fn unit_propagation_avoids_branching() {
        // (a = 1 ∨ b = 1), a ≠ 1 ⊢ b = 1 without any case split.
        let hyp = F::or(vec![
            F::eq(T::var("a"), T::int(1)),
            F::eq(T::var("b"), T::int(1)),
        ]);
        let neq = F::neq(T::var("a"), T::int(1));
        let proof = prove(
            &[hyp, neq],
            &F::eq(T::var("b"), T::int(1)),
            &Budget::default(),
        );
        assert!(proof.is_proved());
        assert_eq!(
            proof.stats.branches, 0,
            "unit propagation should not branch"
        );
    }

    #[test]
    fn stats_are_populated() {
        // Each arm only becomes contradictory after the split commits to a
        // value of x, forcing genuine branching.
        let hyp = F::or(vec![
            F::eq(T::var("x"), T::int(1)),
            F::eq(T::var("x"), T::int(2)),
        ]);
        let y5 = F::eq(T::var("y"), T::int(5));
        let goal = F::neq(T::add(T::var("x"), T::var("y")), T::int(0));
        let proof = prove(&[hyp, y5], &goal, &Budget::default());
        assert!(proof.is_proved());
        assert!(proof.stats.branches >= 2, "stats: {}", proof.stats);
        assert!(proof.stats.peak_nodes > 0);
    }
}
