//! E-matching: finding instantiations of quantified formulas whose trigger
//! patterns are present in the E-graph, modulo the known equalities.
//!
//! This is the mechanism Simplify uses to guide quantifier instantiation
//! (and whose "matching heuristics show signs of fragility when cyclic
//! inclusions are involved", Section 5 of the paper — our fuel accounting
//! turns that fragility into a measurable `Unknown` outcome).

use crate::egraph::{EGraph, NodeId, Sym};
use oolong_logic::{Atom, FnSym, Pattern, Symbol, Term, TermNode, Trigger};
use std::borrow::Borrow;
use std::collections::HashSet;

/// A match of a trigger: each quantified variable — identified by its
/// *hole index*, i.e. its position in the quantifier's variable list —
/// bound to an E-graph class.
///
/// Bindings are cloned at every step of the matching search, so the
/// representation matters: a small vector sorted by hole index clones as
/// one allocation and probes with a short scan, where the previous
/// `BTreeMap<String, NodeId>` allocated a tree node per variable and
/// compared strings on every lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Binding(Vec<(u16, NodeId)>);

impl Binding {
    /// The class bound to hole `hole`, if any.
    pub fn node(&self, hole: u16) -> Option<NodeId> {
        self.0.iter().find(|&&(h, _)| h == hole).map(|&(_, id)| id)
    }

    /// Number of holes bound.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no hole is bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The class bound to the variable named `name` under `vars` (the
    /// quantifier's variable list that defined the hole indices).
    pub fn named(&self, vars: &[Symbol], name: &str) -> Option<NodeId> {
        let hole = vars.iter().position(|v| *v == *name)? as u16;
        self.node(hole)
    }

    fn insert(&mut self, hole: u16, id: NodeId) {
        match self.0.binary_search_by_key(&hole, |&(h, _)| h) {
            Ok(_) => debug_assert!(false, "hole {hole} bound twice"),
            Err(pos) => self.0.insert(pos, (hole, id)),
        }
    }

    /// Undoes an [`insert`](Self::insert) during the backtracking match
    /// search.
    fn remove(&mut self, hole: u16) {
        match self.0.binary_search_by_key(&hole, |&(h, _)| h) {
            Ok(pos) => {
                self.0.remove(pos);
            }
            Err(_) => debug_assert!(false, "hole {hole} not bound"),
        }
    }
}

/// Pre-resolved hole names: maps a pattern variable to its hole index by
/// scanning the (tiny) quantifier variable list.
struct Holes<'a> {
    vars: &'a [Symbol],
}

impl Holes<'_> {
    fn index(&self, name: Symbol) -> Option<u16> {
        self.vars.iter().position(|&v| v == name).map(|i| i as u16)
    }
}

/// Finds all bindings of `vars` under which every pattern of `trigger`
/// matches a term (or atom) present in the E-graph.
pub fn match_trigger(eg: &EGraph, vars: &[Symbol], trigger: &Trigger) -> Vec<Binding> {
    match_trigger_impl(eg, vars, trigger, None)
}

/// Like [`match_trigger`], but *anchored*: at least one pattern of the
/// trigger must match at `anchor` (a specific node). Used for incremental
/// matching against newly created nodes only.
pub fn match_trigger_anchored(
    eg: &EGraph,
    vars: &[Symbol],
    trigger: &Trigger,
    anchor: NodeId,
) -> Vec<Binding> {
    match_trigger_impl(eg, vars, trigger, Some(anchor))
}

fn match_trigger_impl(
    eg: &EGraph,
    vars: &[Symbol],
    trigger: &Trigger,
    anchor: Option<NodeId>,
) -> Vec<Binding> {
    let holes = Holes { vars };
    let positions: Vec<Option<usize>> = match anchor {
        None => vec![None],
        Some(anchor) => {
            // Each pattern position whose head symbol matches the anchor
            // gets a run with that pattern pinned to the anchor node.
            let anchor_sym = &eg.node(anchor).sym;
            let hits: Vec<Option<usize>> = trigger
                .0
                .iter()
                .enumerate()
                .filter(|(_, p)| pattern_head(p).as_ref() == Some(anchor_sym))
                .map(|(i, _)| Some(i))
                .collect();
            if hits.is_empty() {
                return Vec::new();
            }
            hits
        }
    };
    let mut all = Vec::new();
    for pinned in positions {
        // Match the pinned pattern *first*: the anchor fixes its holes, so
        // every other pattern's bucket scan runs under an already-constrained
        // binding instead of enumerating its full cross-product. The
        // conjunction join is commutative and the final dedup is by
        // canonical binding, so the resulting binding set is order-
        // independent; only the search cost changes. The remaining patterns
        // keep their declared order (MPAT declarations put the most
        // selective premise first).
        let order: Vec<usize> = match pinned {
            None => (0..trigger.0.len()).collect(),
            Some(p) => std::iter::once(p)
                .chain((0..trigger.0.len()).filter(|&i| i != p))
                .collect(),
        };
        let mut bindings = vec![Binding::default()];
        for i in order {
            let pattern = &trigger.0[i];
            let mut next = Vec::new();
            for binding in &bindings {
                if pinned == Some(i) {
                    let node = anchor.expect("pinned implies anchor");
                    match_pattern_at(eg, &holes, pattern, node, binding, &mut next);
                } else {
                    match_pattern_top(eg, &holes, pattern, binding, &mut next);
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        all.extend(bindings);
    }
    // A trigger that leaves some variable unbound cannot drive a complete
    // instantiation; drop such bindings. (A binding can never bind a
    // non-hole, so completeness is just a length check.)
    all.retain(|b| b.len() == vars.len());
    dedup_bindings(eg, all)
}

/// The E-graph head symbol a pattern matches on, if any.
fn pattern_head(pattern: &Pattern) -> Option<Sym> {
    match pattern {
        Pattern::Term(t) => match t.node() {
            TermNode::App(f, _) => Some(fn_sym(f)),
            _ => None,
        },
        Pattern::Atom(atom) => atom_shape(atom).map(|(sym, _)| sym),
    }
}

/// The distinct head symbols of a trigger's patterns. Anchored matching
/// can only succeed at nodes carrying one of these, so callers sweeping
/// many candidate anchors use this to skip nodes that cannot pin any
/// pattern.
pub(crate) fn trigger_heads(trigger: &Trigger) -> Vec<Sym> {
    let mut heads: Vec<Sym> = Vec::new();
    for head in trigger.0.iter().filter_map(pattern_head) {
        if !heads.contains(&head) {
            heads.push(head);
        }
    }
    heads
}

/// The head symbol of a single-pattern trigger, if it has one. Only such
/// triggers support suffix extension of a cached match set: their full
/// match is an in-order scan of one symbol bucket, so new matches can only
/// come from nodes appended to that bucket.
pub(crate) fn trigger_single_head(trigger: &Trigger) -> Option<Sym> {
    match trigger.0.as_slice() {
        [p] => pattern_head(p),
        _ => None,
    }
}

/// Extends `base` — a previously computed `match_trigger` result for a
/// single-pattern trigger with head `head` — with matches anchored at
/// bucket positions `from..` of `nodes_with_sym(head)`.
///
/// Exact under [`EGraph::syms_struct_unchanged_since`] for the trigger's
/// symbols since `base` was computed: the prefix scan reproduces `base`
/// verbatim (no union or removal disturbed its matches or their canonical
/// dedup keys), so full-rescan output equals `base` plus the deduped
/// suffix matches, in bucket order.
pub(crate) fn match_trigger_extend(
    eg: &EGraph,
    vars: &[Symbol],
    trigger: &Trigger,
    head: Sym,
    from: usize,
    base: &mut Vec<Binding>,
) {
    let holes = Holes { vars };
    let bucket = eg.nodes_with_sym(&head);
    if from >= bucket.len() {
        return;
    }
    let mut fresh = Vec::new();
    let binding = Binding::default();
    match &trigger.0[0] {
        Pattern::Term(term) => {
            let TermNode::App(_, args) = term.node() else {
                return;
            };
            for &node in &bucket[from..] {
                match_children(eg, &holes, args, node, &binding, &mut fresh);
            }
        }
        Pattern::Atom(atom) => {
            let Some((_, args)) = atom_shape(atom) else {
                return;
            };
            for &node in &bucket[from..] {
                match_children(eg, &holes, &args, node, &binding, &mut fresh);
            }
        }
    }
    fresh.retain(|b| b.len() == vars.len());
    // Keep-first dedup across the prefix (already deduped) and the suffix,
    // exactly as a full rescan's final dedup would.
    let mut seen: HashSet<Vec<(u16, NodeId)>> = base.iter().map(|b| canon_key(eg, b)).collect();
    for b in fresh {
        if seen.insert(canon_key(eg, &b)) {
            base.push(b);
        }
    }
}

/// Every E-graph symbol a full match of `trigger` consults: pattern heads,
/// nested function symbols, free constants, and literals — everything but
/// the quantified holes in `vars`. If none of these symbols has been
/// touched (see `EGraph::syms_unchanged_since`), the trigger's full match
/// set is unchanged.
pub(crate) fn trigger_syms(vars: &[Symbol], trigger: &Trigger) -> Vec<Sym> {
    fn walk_term(vars: &[Symbol], t: &Term, out: &mut Vec<Sym>) {
        match t.node() {
            TermNode::Var(v) => {
                if !vars.contains(v) {
                    out.push(Sym::Var(*v));
                }
            }
            TermNode::Const(c) => out.push(Sym::Lit(*c)),
            TermNode::App(f, args) => {
                out.push(fn_sym(f));
                for a in args {
                    walk_term(vars, a, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    for pattern in &trigger.0 {
        match pattern {
            Pattern::Term(t) => walk_term(vars, t, &mut out),
            Pattern::Atom(atom) => {
                if let Some((sym, args)) = atom_shape(atom) {
                    out.push(sym);
                    for a in args {
                        walk_term(vars, a, &mut out);
                    }
                }
            }
        }
    }
    // Tiny lists: dedup by scan rather than requiring Ord on Sym.
    let mut uniq: Vec<Sym> = Vec::with_capacity(out.len());
    for s in out {
        if !uniq.contains(&s) {
            uniq.push(s);
        }
    }
    uniq
}

/// Matches one pattern against one specific node.
fn match_pattern_at(
    eg: &EGraph,
    holes: &Holes,
    pattern: &Pattern,
    node: NodeId,
    binding: &Binding,
    out: &mut Vec<Binding>,
) {
    match pattern {
        Pattern::Term(t) => {
            if let TermNode::App(_, args) = t.node() {
                match_children(eg, holes, args, node, binding, out);
            }
        }
        Pattern::Atom(atom) => {
            if let Some((_, args)) = atom_shape(atom) {
                match_children(eg, holes, &args, node, binding, out);
            }
        }
    }
}

fn canon_key(eg: &EGraph, b: &Binding) -> Vec<(u16, NodeId)> {
    b.0.iter().map(|&(h, id)| (h, eg.find(id))).collect()
}

fn dedup_bindings(eg: &EGraph, bindings: Vec<Binding>) -> Vec<Binding> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for b in bindings {
        if seen.insert(canon_key(eg, &b)) {
            out.push(b);
        }
    }
    out
}

fn match_pattern_top(
    eg: &EGraph,
    holes: &Holes,
    pattern: &Pattern,
    binding: &Binding,
    out: &mut Vec<Binding>,
) {
    // One working clone serves the whole bucket sweep: `match_args`
    // restores it between candidates.
    let mut work = binding.clone();
    let mut emit = |b: &mut Binding| out.push(b.clone());
    match pattern {
        Pattern::Term(term) => {
            let TermNode::App(f, args) = term.node() else {
                // Bare variables/constants make useless patterns.
                return;
            };
            let sym = fn_sym(f);
            for &node in eg.nodes_with_sym(&sym) {
                let children = &eg.node(node).children;
                if children.len() == args.len() {
                    match_args(eg, holes, args, children, 0, &mut work, &mut emit);
                }
            }
        }
        Pattern::Atom(atom) => {
            let Some((sym, args)) = atom_shape(atom) else {
                return;
            };
            for &node in eg.nodes_with_sym(&sym) {
                let children = &eg.node(node).children;
                if children.len() == args.len() {
                    match_args(eg, holes, &args, children, 0, &mut work, &mut emit);
                }
            }
        }
    }
}

fn fn_sym(f: &FnSym) -> Sym {
    Sym::from_fn(f)
}

/// The E-graph symbol and argument terms of an atom pattern, or `None` for
/// atoms with no node representation (equality) or no matchable shape.
fn atom_shape(atom: &Atom) -> Option<(Sym, Vec<&Term>)> {
    match atom {
        Atom::Eq(..) => None,
        Atom::Alive(s, x) => Some((Sym::PAlive, vec![s, x])),
        Atom::LocalInc(a, b) => Some((Sym::PLocalInc, vec![a, b])),
        Atom::RepInc {
            group,
            pivot,
            mapped,
        } => Some((Sym::PRepInc, vec![group, pivot, mapped])),
        Atom::Inc {
            store,
            obj,
            attr,
            obj2,
            attr2,
        } => Some((Sym::PInc, vec![store, obj, attr, obj2, attr2])),
        Atom::Lt(a, b) => Some((Sym::PLt, vec![a, b])),
        Atom::Le(a, b) => Some((Sym::PLe, vec![a, b])),
        Atom::IsObj(t) => Some((Sym::PIsObj, vec![t])),
        Atom::IsInt(t) => Some((Sym::PIsInt, vec![t])),
        Atom::RepIncElem {
            group,
            pivot,
            mapped,
        } => Some((Sym::PRepIncElem, vec![group, pivot, mapped])),
        Atom::BoolTerm(_) => None,
    }
}

/// Matches a pattern's argument list against a node's children, extending
/// `binding`. Generic over owned (`Term`) and borrowed (`&Term`) argument
/// slices so neither the term nor the atom path allocates a shim vector.
fn match_children<B: Borrow<Term>>(
    eg: &EGraph,
    holes: &Holes,
    args: &[B],
    node: NodeId,
    binding: &Binding,
    out: &mut Vec<Binding>,
) {
    let children = &eg.node(node).children;
    if children.len() != args.len() {
        return;
    }
    let mut work = binding.clone();
    match_args(eg, holes, args, children, 0, &mut work, &mut |b| {
        out.push(b.clone())
    });
}

/// Matches `args[i..]` against `children[i..]` by backtracking depth-first
/// search over one working binding, calling `k` once per complete match.
/// Every alternative is explored with its hole assignments undone on the
/// way out, so `b` is restored to its entry state on return — the search
/// allocates only when a completed binding is emitted, where the old
/// breadth-first join materialised a `Vec<Binding>` frontier (clone per
/// candidate per level) on the prover's hottest path. Enumeration order is
/// the frontier order: alternatives of an earlier argument are outer,
/// in-class members in registration order, so downstream instantiation
/// order (and with it verdicts and statistics) is unchanged.
fn match_args<B: Borrow<Term>>(
    eg: &EGraph,
    holes: &Holes,
    args: &[B],
    children: &[NodeId],
    i: usize,
    b: &mut Binding,
    k: &mut dyn FnMut(&mut Binding),
) {
    match args.get(i) {
        None => k(b),
        Some(pat) => match_term_at(eg, holes, pat.borrow(), children[i], b, &mut |b| {
            match_args(eg, holes, args, children, i + 1, b, k)
        }),
    }
}

/// Matches `pattern` against the class of `class_node`, calling `k` under
/// each extension of the working binding (undone before returning).
fn match_term_at(
    eg: &EGraph,
    holes: &Holes,
    pattern: &Term,
    class_node: NodeId,
    b: &mut Binding,
    k: &mut dyn FnMut(&mut Binding),
) {
    let class = eg.find(class_node);
    match pattern.node() {
        TermNode::Var(v) => match holes.index(*v) {
            Some(hole) => match b.node(hole) {
                Some(bound) => {
                    if eg.find(bound) == class {
                        k(b);
                    }
                }
                None => {
                    b.insert(hole, class);
                    k(b);
                    b.remove(hole);
                }
            },
            None => {
                // A free constant: must already exist and be in this class.
                for &leaf in eg.nodes_with_sym(&Sym::Var(*v)) {
                    if eg.find(leaf) == class {
                        k(b);
                        return;
                    }
                }
            }
        },
        TermNode::Const(c) => {
            for &leaf in eg.nodes_with_sym(&Sym::Lit(*c)) {
                if eg.find(leaf) == class {
                    k(b);
                    return;
                }
            }
        }
        TermNode::App(f, args) => {
            let sym = fn_sym(f);
            for &member in eg.class_nodes(class) {
                if eg.node(member).sym == sym {
                    let children = &eg.node(member).children;
                    if children.len() == args.len() {
                        match_args(eg, holes, args, children, 0, b, k);
                    }
                }
            }
        }
    }
}

/// Reconstructs a concrete term denoting the class of `id`.
///
/// Prefers leaves (variables / constants), then the earliest-constructed
/// member. For pathological cyclic classes with no leaf, a definitional
/// alias `@class<root>` is returned and reported in `aliases` so the caller
/// can merge the alias with the class, keeping instantiation sound.
pub fn term_of(eg: &EGraph, id: NodeId, aliases: &mut Vec<(Term, NodeId)>) -> Term {
    let mut visiting = HashSet::new();
    term_of_rec(eg, id, &mut visiting, aliases)
}

fn term_of_rec(
    eg: &EGraph,
    id: NodeId,
    visiting: &mut HashSet<NodeId>,
    aliases: &mut Vec<(Term, NodeId)>,
) -> Term {
    let root = eg.find(id);
    // Prefer a leaf member.
    let members = eg.class_nodes(root);
    let mut best: Option<NodeId> = None;
    for &m in members {
        let node = eg.node(m);
        match node.sym {
            Sym::Var(_) | Sym::Lit(_) => return leaf_term(eg, m),
            _ => {
                if best.is_none_or(|b| m < b) && !is_pred(&node.sym) {
                    best = Some(m);
                }
            }
        }
    }
    let Some(m) = best else {
        let name = format!("@class{root}");
        let t = Term::var(name);
        aliases.push((t, root));
        return t;
    };
    if !visiting.insert(root) {
        // Cycle: introduce a definitional alias for this class.
        let name = format!("@class{root}");
        let t = Term::var(name);
        aliases.push((t, root));
        return t;
    }
    let node = eg.node(m).clone();
    let args: Vec<Term> = node
        .children
        .iter()
        .map(|&c| term_of_rec(eg, c, visiting, aliases))
        .collect();
    visiting.remove(&root);
    let f = match node.sym {
        Sym::Select => FnSym::Select,
        Sym::Update => FnSym::Update,
        Sym::New => FnSym::New,
        Sym::Succ => FnSym::Succ,
        Sym::Add => FnSym::Add,
        Sym::Sub => FnSym::Sub,
        Sym::Mul => FnSym::Mul,
        Sym::Neg => FnSym::Neg,
        Sym::Uninterp(name) => FnSym::Uninterp(name),
        _ => unreachable!("predicates filtered above"),
    };
    Term::app(f, args)
}

fn is_pred(sym: &Sym) -> bool {
    matches!(
        sym,
        Sym::PAlive
            | Sym::PLocalInc
            | Sym::PRepInc
            | Sym::PRepIncElem
            | Sym::PInc
            | Sym::PLt
            | Sym::PLe
            | Sym::PIsObj
            | Sym::PIsInt
    )
}

fn leaf_term(eg: &EGraph, id: NodeId) -> Term {
    match &eg.node(id).sym {
        Sym::Var(v) => Term::var(*v),
        Sym::Lit(c) => Term::lit(*c),
        other => unreachable!("not a leaf: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::Term as T;

    #[test]
    fn matches_simple_select_pattern() {
        let mut eg = EGraph::new();
        eg.intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        // Pattern: select($, X, #f) with hole X.
        let trigger = Trigger(vec![Pattern::Term(T::select(
            T::store(),
            T::var("X"),
            T::attr("f"),
        ))]);
        let bindings = match_trigger(&eg, &["X".into()], &trigger);
        assert_eq!(bindings.len(), 1);
        let t_leaf = eg.intern(&T::var("t")).unwrap();
        assert_eq!(
            eg.find(bindings[0].node(0).expect("X bound")),
            eg.find(t_leaf)
        );
    }

    #[test]
    fn matches_modulo_equality() {
        // After u = t, the pattern select($, u, #f) matches select($, t, #f).
        let mut eg = EGraph::new();
        eg.intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        let t = eg.intern(&T::var("t")).unwrap();
        let u = eg.intern(&T::var("u")).unwrap();
        eg.merge(t, u).unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::select(
            T::store(),
            T::var("u"),
            T::attr("f"),
        ))]);
        let bindings = match_trigger(&eg, &[], &trigger);
        assert_eq!(bindings.len(), 1, "constant u matches via its class");
    }

    #[test]
    fn no_match_for_absent_attr() {
        let mut eg = EGraph::new();
        eg.intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::select(
            T::store(),
            T::var("X"),
            T::attr("g"),
        ))]);
        assert!(match_trigger(&eg, &["X".into()], &trigger).is_empty());
    }

    #[test]
    fn multi_pattern_requires_consistent_binding() {
        // Trigger {f(X), g(X)}: only objects appearing under both match.
        let mut eg = EGraph::new();
        eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        eg.intern(&T::uninterp("g", vec![T::var("b")])).unwrap();
        let trigger = Trigger(vec![
            Pattern::Term(T::uninterp("f", vec![T::var("X")])),
            Pattern::Term(T::uninterp("g", vec![T::var("X")])),
        ]);
        let bindings = match_trigger(&eg, &["X".into()], &trigger);
        assert_eq!(bindings.len(), 1);
        let b_leaf = eg.intern(&T::var("b")).unwrap();
        assert_eq!(
            eg.find(bindings[0].node(0).expect("X bound")),
            eg.find(b_leaf)
        );
    }

    #[test]
    fn repeated_hole_must_agree() {
        let mut eg = EGraph::new();
        eg.intern(&T::uninterp("h", vec![T::var("a"), T::var("a")]))
            .unwrap();
        eg.intern(&T::uninterp("h", vec![T::var("a"), T::var("b")]))
            .unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::uninterp(
            "h",
            vec![T::var("X"), T::var("X")],
        ))]);
        let bindings = match_trigger(&eg, &["X".into()], &trigger);
        assert_eq!(bindings.len(), 1, "only h(a, a) matches h(X, X)");
    }

    #[test]
    fn atom_patterns_match_predicate_nodes() {
        let mut eg = EGraph::new();
        eg.intern_atom(&Atom::RepInc {
            group: T::attr("contents"),
            pivot: T::attr("vec"),
            mapped: T::attr("elems"),
        })
        .unwrap();
        let trigger = Trigger(vec![Pattern::Atom(Atom::RepInc {
            group: T::var("G"),
            pivot: T::attr("vec"),
            mapped: T::var("B"),
        })]);
        let bindings = match_trigger(&eg, &["G".into(), "B".into()], &trigger);
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn nested_patterns_match() {
        // Pattern select(succ(S), X, #f).
        let mut eg = EGraph::new();
        eg.intern(&T::select(T::succ(T::store()), T::var("t"), T::attr("f")))
            .unwrap();
        eg.intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::select(
            T::succ(T::var("S")),
            T::var("X"),
            T::attr("f"),
        ))]);
        let bindings = match_trigger(&eg, &["S".into(), "X".into()], &trigger);
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn bindings_deduplicate_by_class() {
        let mut eg = EGraph::new();
        eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        eg.merge(a, b).unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        let bindings = match_trigger(&eg, &["X".into()], &trigger);
        assert_eq!(bindings.len(), 1, "equal classes yield one binding");
    }

    #[test]
    fn anchored_matching_restricts_to_the_anchor() {
        let mut eg = EGraph::new();
        let fa = eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let _fb = eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        // Anchored at f(a): only the a-binding.
        let bindings = match_trigger_anchored(&eg, &["X".into()], &trigger, fa);
        assert_eq!(bindings.len(), 1);
        let a = eg.intern(&T::var("a")).unwrap();
        assert_eq!(eg.find(bindings[0].node(0).expect("X bound")), eg.find(a));
        // Unanchored: both.
        assert_eq!(match_trigger(&eg, &["X".into()], &trigger).len(), 2);
    }

    #[test]
    fn anchored_matching_with_wrong_symbol_is_empty() {
        let mut eg = EGraph::new();
        let ga = eg.intern(&T::uninterp("g", vec![T::var("a")])).unwrap();
        eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let trigger = Trigger(vec![Pattern::Term(T::uninterp("f", vec![T::var("X")]))]);
        assert!(match_trigger_anchored(&eg, &["X".into()], &trigger, ga).is_empty());
    }

    #[test]
    fn anchored_multipattern_pins_one_position() {
        // Trigger {f(X), g(X)}: anchoring at a new g(b) node must still
        // find the f(b) partner from the old graph.
        let mut eg = EGraph::new();
        eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        let gb = eg.intern(&T::uninterp("g", vec![T::var("b")])).unwrap();
        let trigger = Trigger(vec![
            Pattern::Term(T::uninterp("f", vec![T::var("X")])),
            Pattern::Term(T::uninterp("g", vec![T::var("X")])),
        ]);
        let bindings = match_trigger_anchored(&eg, &["X".into()], &trigger, gb);
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn anchored_multipattern_matches_pinned_pattern_first() {
        // Trigger {f(X), g(X, Y), h(Y)} anchored at the middle pattern:
        // pinning g(a, b) first must bind both holes before f and h scan,
        // and the resulting binding set must equal the unanchored join
        // restricted to the anchor.
        let mut eg = EGraph::new();
        eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        eg.intern(&T::uninterp("f", vec![T::var("c")])).unwrap();
        let gab = eg
            .intern(&T::uninterp("g", vec![T::var("a"), T::var("b")]))
            .unwrap();
        eg.intern(&T::uninterp("g", vec![T::var("c"), T::var("d")]))
            .unwrap();
        eg.intern(&T::uninterp("h", vec![T::var("b")])).unwrap();
        let trigger = Trigger(vec![
            Pattern::Term(T::uninterp("f", vec![T::var("X")])),
            Pattern::Term(T::uninterp("g", vec![T::var("X"), T::var("Y")])),
            Pattern::Term(T::uninterp("h", vec![T::var("Y")])),
        ]);
        let vars: Vec<Symbol> = vec!["X".into(), "Y".into()];
        let anchored = match_trigger_anchored(&eg, &vars, &trigger, gab);
        assert_eq!(anchored.len(), 1, "only the a/b binding survives h(Y)");
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        assert_eq!(eg.find(anchored[0].node(0).unwrap()), eg.find(a));
        assert_eq!(eg.find(anchored[0].node(1).unwrap()), eg.find(b));
        // The unanchored join finds the same (single) binding.
        assert_eq!(match_trigger(&eg, &vars, &trigger), anchored);
    }

    #[test]
    fn term_of_prefers_leaves() {
        let mut eg = EGraph::new();
        let app = eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let x = eg.intern(&T::var("x")).unwrap();
        eg.merge(app, x).unwrap();
        let mut aliases = Vec::new();
        assert_eq!(term_of(&eg, app, &mut aliases), T::var("x"));
        assert!(aliases.is_empty());
    }

    #[test]
    fn term_of_reconstructs_apps() {
        let mut eg = EGraph::new();
        let sel = eg
            .intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        let mut aliases = Vec::new();
        let t = term_of(&eg, sel, &mut aliases);
        assert_eq!(t, T::select(T::store(), T::var("t"), T::attr("f")));
    }

    #[test]
    fn term_of_handles_cycles_with_alias() {
        // x = f(x): class of x has leaf x, fine. Force a leafless cycle:
        // f(g(c)) merged with g(c)'s class? Simpler: merge f(y) with y where
        // y's class loses its leaf — impossible since leaves persist. So
        // exercise the alias path via a class whose only members are apps
        // that reference each other: f(a) = a is impossible to build without
        // the leaf a. We settle for checking leaf preference again under a
        // merged chain.
        let mut eg = EGraph::new();
        let fa = eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let a = eg.intern(&T::var("a")).unwrap();
        eg.merge(fa, a).unwrap();
        let ffa = eg
            .intern(&T::uninterp("f", vec![T::uninterp("f", vec![T::var("a")])]))
            .unwrap();
        let mut aliases = Vec::new();
        let t = term_of(&eg, ffa, &mut aliases);
        assert_eq!(t, T::var("a"), "f(f(a)) = f(a) = a by congruence");
    }
}
