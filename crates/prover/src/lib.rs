//! A Simplify-style automatic theorem prover for the object-store logic.
//!
//! The paper's checker discharges verification conditions with Simplify,
//! "the automatic theorem prover that powers the program checkers
//! ESC/Modula-3 and ESC/Java". This crate is a from-scratch substitute in
//! the same architecture class:
//!
//! * a congruence-closure **E-graph** over ground terms with interpreted
//!   constants and eager arithmetic evaluation ([`egraph`]);
//! * DPLL-style **case splitting** with unit propagation over a tableau of
//!   disjunctions ([`prover`]);
//! * **E-matching** of quantifier triggers against the E-graph, with
//!   automatic trigger inference when axioms carry none ([`matcher`],
//!   [`triggers`]);
//! * explicit **fuel accounting** ([`Budget`]) so that matching loops —
//!   like the divergence the paper reports for cyclic rep inclusions —
//!   surface as a measurable [`Outcome::Unknown`] with statistics instead
//!   of a hang.
//!
//! # Example
//!
//! ```
//! use oolong_logic::{Formula, Term};
//! use oolong_prover::{prove, Budget};
//!
//! let hyps = [Formula::eq(Term::var("a"), Term::var("b"))];
//! let goal = Formula::eq(
//!     Term::uninterp("f", vec![Term::var("a")]),
//!     Term::uninterp("f", vec![Term::var("b")]),
//! );
//! assert!(prove(&hyps, &goal, &Budget::default()).is_proved());
//! ```

pub mod egraph;
pub mod matcher;
pub mod prover;
pub mod triggers;

pub use egraph::{Conflict, EGraph, EgMark, NodeId, Sym};
pub use prover::{
    prove, prove_with_strategy, refute, refute_with_strategy, Budget, CandidateModel, Divergence,
    ModelClass, ModelRelation, ModelSelect, Outcome, Proof, QuantProfile, ScopeContext,
    SearchStrategy, Stats, UnknownReason,
};
pub use triggers::QuantKind;
