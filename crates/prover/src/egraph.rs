//! Congruence-closure E-graph with interpreted constants.
//!
//! The E-graph stores ground terms of the object-store logic hash-consed
//! into numbered nodes, maintains equivalence classes under a union-find,
//! and closes them under congruence. Interpreted constants (integers,
//! booleans, `null`, attribute constants) carry semantic values: merging
//! two classes with different values is a contradiction, which is how the
//! prover refutes, e.g., `#cnt = #vec` or `true = false`. Arithmetic
//! applications and integer comparisons are evaluated eagerly whenever all
//! arguments have known integer values.
//!
//! Atoms are represented as boolean-valued nodes (predicate applications)
//! that are merged with the distinguished `true`/`false` nodes when
//! asserted; equality atoms act directly on the union-find.

use oolong_logic::{Atom, Cst, FnSym, Symbol, Term, TermNode};
use std::collections::HashMap;
use std::fmt;

/// Dense node identifier.
pub type NodeId = u32;

/// Sentinel for "term not yet interned" in the term memo.
const NO_NODE: NodeId = u32::MAX;
/// Term-memo page size (terms are hash-consed globally, so the memo is a
/// sparse paged map from arena id to node id).
const MEMO_PAGE: usize = 1024;
type MemoPage = [NodeId; MEMO_PAGE];

/// Function and predicate symbols of E-graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// A free variable / constant leaf.
    Var(Symbol),
    /// An interpreted constant leaf.
    Lit(Cst),
    /// `select(S, X, A)`.
    Select,
    /// `update(S, X, A, V)`.
    Update,
    /// `new(S)`.
    New,
    /// `succ(S)` — `S⁺`.
    Succ,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer negation.
    Neg,
    /// Uninterpreted function (Skolem functions).
    Uninterp(Symbol),
    /// Predicate `alive(S, X)`.
    PAlive,
    /// Predicate `A ⊒ B`.
    PLocalInc,
    /// Predicate `A →F B`.
    PRepInc,
    /// Predicate `S ⊨ X·A ≽ Y·B`.
    PInc,
    /// Predicate `a < b`.
    PLt,
    /// Predicate `a ≤ b`.
    PLe,
    /// Predicate `isObj(t)`.
    PIsObj,
    /// Predicate `isInt(t)`.
    PIsInt,
    /// Predicate `A ⇉F B` (elementwise rep inclusion).
    PRepIncElem,
}

impl Sym {
    /// The E-graph symbol of a logic-level function symbol.
    pub fn from_fn(f: &FnSym) -> Sym {
        match f {
            FnSym::Select => Sym::Select,
            FnSym::Update => Sym::Update,
            FnSym::New => Sym::New,
            FnSym::Succ => Sym::Succ,
            FnSym::Add => Sym::Add,
            FnSym::Sub => Sym::Sub,
            FnSym::Mul => Sym::Mul,
            FnSym::Neg => Sym::Neg,
            FnSym::Uninterp(name) => Sym::Uninterp(*name),
        }
    }
}

/// A hash-consed node: a symbol applied to child classes.
#[derive(Debug, Clone)]
pub struct Node {
    /// The head symbol.
    pub sym: Sym,
    /// Children as originally constructed (not canonicalized).
    pub children: Vec<NodeId>,
}

#[derive(Debug, Clone, Default)]
struct ClassData {
    /// Semantic value, if the class contains an interpreted constant.
    value: Option<Cst>,
    /// Matching generation: 0 for terms of the original problem, `n + 1`
    /// for terms first created while asserting a generation-`n` quantifier
    /// instance. The minimum over merged classes (a cheap way to reach a
    /// term keeps it cheap).
    gen: u32,
    /// Member node ids.
    nodes: Vec<NodeId>,
    /// Nodes that have a member of this class as a child.
    parents: Vec<NodeId>,
    /// Node ids this class is asserted disequal to (canonicalize on use).
    diseqs: Vec<NodeId>,
}

/// A contradiction discovered while asserting facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict(pub String);

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflict: {}", self.0)
    }
}

impl std::error::Error for Conflict {}

/// One recorded inverse of a primitive E-graph mutation, kept on the undo
/// trail while at least one [`EGraph::push`] checkpoint is active. Popping
/// a checkpoint replays these in LIFO order, which restores the exact
/// pre-checkpoint state: every entry's undo is computed against the state
/// the graph is in once all *later* entries have already been unwound.
#[derive(Debug, Clone)]
enum Undo {
    /// The most recently created node (always `nodes.len() - 1` at undo
    /// time): remove it and every index entry `add` installed for it.
    NewNode,
    /// `small`'s class was absorbed into `big`'s: detach it again.
    Union {
        small: NodeId,
        big: NodeId,
        /// The absorbed class, moved out of the class map intact.
        small_data: ClassData,
        /// `big`'s generation before taking the minimum.
        big_gen: u32,
        /// Whether `big` took its value from `small`.
        value_taken: bool,
        /// Lengths of `big`'s member lists before the merge appended
        /// `small`'s (truncating restores them — appends only).
        big_nodes_len: usize,
        big_parents_len: usize,
        big_diseqs_len: usize,
    },
    /// Congruence repair installed a re-canonicalized signature for `node`.
    SigInsert { node: NodeId },
    /// A disequality was pushed onto roots `a` and `b`.
    Diseq { a: NodeId, b: NodeId },
    /// A term→node memo entry was installed inside a frame. Frame-local
    /// entries must be cleared on pop: the mapped node may itself be
    /// undone, or may only coincide with the term under merges that the
    /// pop unwinds (a signature hit through a frame-local union).
    MemoInsert { term: u32 },
}

/// A checkpoint returned by [`EGraph::push`] and consumed by
/// [`EGraph::pop`]. Checkpoints must be popped in LIFO order.
#[derive(Debug, Clone, Copy)]
pub struct EgMark {
    trail_len: usize,
    merges: u64,
    current_gen: u32,
}

/// The E-graph.
#[derive(Debug, Clone)]
pub struct EGraph {
    nodes: Vec<Node>,
    parent: Vec<NodeId>,
    classes: HashMap<NodeId, ClassData>,
    /// Canonical signature (sym, canonical children) → node.
    sig_table: HashMap<(Sym, Vec<NodeId>), NodeId>,
    /// Hash-consed term arena id → node, paged and sparse. Turns repeat
    /// interning of a term (the prover re-asserts shared hypotheses and
    /// instantiations constantly) into one array load instead of a
    /// recursive walk with a hash per node.
    term_memo: Vec<Option<Box<MemoPage>>>,
    /// All nodes by symbol, for pattern matching.
    by_sym: HashMap<Sym, Vec<NodeId>>,
    /// Distinguished boolean leaves.
    true_id: NodeId,
    false_id: NodeId,
    /// Count of merges currently in effect. Restored by [`EGraph::pop`],
    /// so saturation checks keyed on it behave identically whether a
    /// branch state was reached by cloning or by push/assert/pop.
    merges: u64,
    /// Generation assigned to newly created classes (see `ClassData::gen`).
    current_gen: u32,
    /// Undo entries recorded since the oldest active checkpoint.
    trail: Vec<Undo>,
    /// Number of active checkpoints; mutations record onto the trail only
    /// when this is non-zero (top-level asserts need no undo).
    frames: usize,
    /// Monotonic count of merges ever performed, across pops.
    merges_performed: u64,
    /// Checkpoints popped (telemetry).
    pops: u64,
    /// Merges unwound by pops (telemetry).
    undone_merges: u64,
    /// High-water mark of trail length (telemetry).
    trail_high_water: usize,
    /// Per-symbol stamp of the last mutation that could change what a
    /// trigger mentioning that symbol matches (see [`EGraph::touch_stamp`]).
    /// Monotonic across pops: undoing a mutation *re*-stamps its symbols,
    /// so staleness checks stay conservative in both directions.
    touch: HashMap<Sym, u64>,
    /// Like `touch`, but stamped only by *structural* mutations — class
    /// unions and node removals/restorations — never by plain node
    /// creation. A trigger whose symbols pass this weaker check kept every
    /// match it had; only matches anchored at nodes appended since can be
    /// new, so a cached match set extends by scanning the bucket suffix.
    touch_struct: HashMap<Sym, u64>,
    /// Clock issuing touch stamps.
    touch_clock: u64,
}

impl Default for EGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl EGraph {
    /// Creates an E-graph containing only `true` and `false`.
    pub fn new() -> Self {
        let mut eg = EGraph {
            nodes: Vec::new(),
            parent: Vec::new(),
            classes: HashMap::new(),
            sig_table: HashMap::new(),
            term_memo: Vec::new(),
            by_sym: HashMap::new(),
            true_id: 0,
            false_id: 0,
            merges: 0,
            current_gen: 0,
            trail: Vec::new(),
            frames: 0,
            merges_performed: 0,
            pops: 0,
            undone_merges: 0,
            trail_high_water: 0,
            touch: HashMap::new(),
            touch_struct: HashMap::new(),
            touch_clock: 0,
        };
        eg.true_id = eg
            .add(Sym::Lit(Cst::Bool(true)), vec![])
            .expect("no conflict on init");
        eg.false_id = eg
            .add(Sym::Lit(Cst::Bool(false)), vec![])
            .expect("no conflict on init");
        eg
    }

    /// The node representing `true`.
    pub fn true_id(&self) -> NodeId {
        self.true_id
    }

    /// The node representing `false`.
    pub fn false_id(&self) -> NodeId {
        self.false_id
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of class merges currently in effect. Unlike
    /// [`EGraph::merges_performed`] this is rolled back by [`EGraph::pop`],
    /// so it describes the *state*, not the work done.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Total merges ever performed, including ones later unwound by
    /// [`EGraph::pop`] — the work counter for statistics.
    pub fn merges_performed(&self) -> u64 {
        self.merges_performed
    }

    /// Checkpoints unwound so far (telemetry).
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Merges unwound by [`EGraph::pop`] so far (telemetry).
    pub fn undone_merges(&self) -> u64 {
        self.undone_merges
    }

    /// High-water mark of the undo trail's length (telemetry).
    pub fn trail_high_water(&self) -> usize {
        self.trail_high_water
    }

    /// Rebases the trail high-water mark to the current trail length, so a
    /// long-lived E-graph (a shared scope context) can report the trail
    /// depth of each proof individually instead of the lifetime maximum.
    pub fn reset_trail_high_water(&mut self) {
        self.trail_high_water = self.trail.len();
    }

    // ------------------------------------------------------------ touch stamps

    /// The current value of the matching-relevance clock. A full trigger
    /// match performed now stays valid while
    /// [`EGraph::syms_unchanged_since`] holds for the trigger's symbols.
    pub fn touch_stamp(&self) -> u64 {
        self.touch_clock
    }

    /// Whether no mutation since `stamp` could have changed what a trigger
    /// mentioning exactly `syms` matches. Sound over-approximation: node
    /// creation/removal stamps the node's symbol, and a class union stamps
    /// the symbols of the absorbed class's members and parents (any pair
    /// of terms made newly equal has one side in the absorbed class, so
    /// every equality a match could newly exploit — bound-hole agreement,
    /// ground-argument identity, member descent — stamps a symbol the
    /// trigger mentions).
    pub fn syms_unchanged_since(&self, syms: &[Sym], stamp: u64) -> bool {
        syms.iter()
            .all(|s| self.touch.get(s).is_none_or(|&t| t <= stamp))
    }

    /// Whether no *union or node removal* since `stamp` touched `syms`.
    /// Weaker than [`EGraph::syms_unchanged_since`]: node creation is
    /// allowed, so matches present at `stamp` are still present (with the
    /// same canonical dedup keys) and any new match involves an appended
    /// node.
    pub fn syms_struct_unchanged_since(&self, syms: &[Sym], stamp: u64) -> bool {
        syms.iter()
            .all(|s| self.touch_struct.get(s).is_none_or(|&t| t <= stamp))
    }

    fn bump_add_sym(&mut self, sym: Sym) {
        self.touch.insert(sym, self.touch_clock);
    }

    fn bump_sym(&mut self, sym: Sym) {
        self.touch.insert(sym, self.touch_clock);
        self.touch_struct.insert(sym, self.touch_clock);
    }

    /// Stamps every symbol whose match sets a union of `absorbed` into
    /// another class can affect: the absorbed members' own symbols and the
    /// head symbols of their parent nodes.
    fn bump_class_syms(&mut self, absorbed: &ClassData) {
        for i in 0..absorbed.nodes.len() {
            self.bump_sym(self.nodes[absorbed.nodes[i] as usize].sym);
        }
        for i in 0..absorbed.parents.len() {
            self.bump_sym(self.nodes[absorbed.parents[i] as usize].sym);
        }
    }

    // ------------------------------------------------------------ backtracking

    /// Opens a checkpoint: mutations from here on are recorded on the undo
    /// trail, and [`EGraph::pop`] with the returned mark restores the
    /// current state exactly, in time proportional to the work done since.
    /// Checkpoints nest and must be popped in LIFO order.
    pub fn push(&mut self) -> EgMark {
        self.frames += 1;
        EgMark {
            trail_len: self.trail.len(),
            merges: self.merges,
            current_gen: self.current_gen,
        }
    }

    /// Unwinds all mutations made since the matching [`EGraph::push`].
    pub fn pop(&mut self, mark: EgMark) {
        debug_assert!(self.frames > 0, "pop without a matching push");
        debug_assert!(mark.trail_len <= self.trail.len(), "pops out of order");
        self.pops += 1;
        while self.trail.len() > mark.trail_len {
            let entry = self.trail.pop().expect("length checked");
            self.undo(entry);
        }
        self.frames -= 1;
        self.merges = mark.merges;
        self.current_gen = mark.current_gen;
    }

    fn record(&mut self, entry: Undo) {
        if self.frames > 0 {
            self.trail.push(entry);
            self.trail_high_water = self.trail_high_water.max(self.trail.len());
        }
    }

    fn undo(&mut self, entry: Undo) {
        match entry {
            Undo::NewNode => {
                let id = (self.nodes.len() - 1) as NodeId;
                let node = self.nodes.pop().expect("node to undo");
                self.touch_clock += 1;
                self.bump_sym(node.sym);
                self.parent.pop();
                self.classes.remove(&id);
                // Merges recorded after this node's creation are already
                // unwound, so the children canonicalize to the same
                // representatives as when `add` built the signature.
                let canon: Vec<NodeId> = node.children.iter().map(|&c| self.find(c)).collect();
                let removed = self.sig_table.remove(&(node.sym, canon));
                debug_assert_eq!(removed, Some(id));
                if let Some(ids) = self.by_sym.get_mut(&node.sym) {
                    ids.pop();
                    if ids.is_empty() {
                        self.by_sym.remove(&node.sym);
                    }
                }
                // `add` pushed one parent entry per child occurrence
                // (duplicates included).
                for &c in &node.children {
                    let root = self.find(c);
                    self.classes
                        .get_mut(&root)
                        .expect("child class exists")
                        .parents
                        .pop();
                }
            }
            Undo::Union {
                small,
                big,
                small_data,
                big_gen,
                value_taken,
                big_nodes_len,
                big_parents_len,
                big_diseqs_len,
            } => {
                let big_data = self.classes.get_mut(&big).expect("big class exists");
                let gen_restored = big_data.gen != big_gen;
                big_data.nodes.truncate(big_nodes_len);
                big_data.parents.truncate(big_parents_len);
                big_data.diseqs.truncate(big_diseqs_len);
                big_data.gen = big_gen;
                if value_taken {
                    big_data.value = None;
                }
                self.parent[small as usize] = small;
                self.touch_clock += 1;
                self.bump_class_syms(&small_data);
                if gen_restored {
                    let n = self.classes[&big].parents.len();
                    for i in 0..n {
                        let sym = self.nodes[self.classes[&big].parents[i] as usize].sym;
                        self.bump_sym(sym);
                    }
                }
                self.classes.insert(small, small_data);
                self.undone_merges += 1;
            }
            Undo::SigInsert { node } => {
                // The union this repair belongs to is still applied (its
                // Union entry is older on the trail), so recomputing the
                // canonical signature reproduces the inserted key.
                let n = &self.nodes[node as usize];
                let key = (
                    n.sym,
                    n.children.iter().map(|&c| self.find(c)).collect::<Vec<_>>(),
                );
                let removed = self.sig_table.remove(&key);
                debug_assert_eq!(removed, Some(node));
            }
            Undo::Diseq { a, b } => {
                self.classes.get_mut(&a).expect("class exists").diseqs.pop();
                self.classes.get_mut(&b).expect("class exists").diseqs.pop();
            }
            Undo::MemoInsert { term } => {
                self.term_memo[term as usize / MEMO_PAGE]
                    .as_mut()
                    .expect("memo page exists")[term as usize % MEMO_PAGE] = NO_NODE;
            }
        }
    }

    fn memo_get(&self, term: Term) -> Option<NodeId> {
        let idx = term.id() as usize;
        match self.term_memo.get(idx / MEMO_PAGE)? {
            Some(page) => match page[idx % MEMO_PAGE] {
                NO_NODE => None,
                id => Some(id),
            },
            None => None,
        }
    }

    fn memo_insert(&mut self, term: Term, id: NodeId) {
        let idx = term.id() as usize;
        let page_idx = idx / MEMO_PAGE;
        if self.term_memo.len() <= page_idx {
            self.term_memo.resize(page_idx + 1, None);
        }
        let page = self.term_memo[page_idx].get_or_insert_with(|| Box::new([NO_NODE; MEMO_PAGE]));
        page[idx % MEMO_PAGE] = id;
        self.record(Undo::MemoInsert { term: term.id() });
    }

    /// Sets the generation stamped onto classes created from now on.
    pub fn set_generation(&mut self, gen: u32) {
        self.current_gen = gen;
    }

    /// The matching generation of a class (see `set_generation`).
    pub fn class_gen(&self, id: NodeId) -> u32 {
        self.classes[&self.find(id)].gen
    }

    /// The node record for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Canonical representative of `id`'s class.
    pub fn find(&self, id: NodeId) -> NodeId {
        // Without path compression (keeps &self); the trees stay shallow
        // because merge always attaches the smaller class.
        let mut x = id;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Whether two nodes are known equal.
    pub fn same_class(&self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether two nodes are known disequal (by disequality assertion or
    /// distinct interpreted values).
    pub fn known_disequal(&self, a: NodeId, b: NodeId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        if let (Some(va), Some(vb)) = (self.class_value(ra), self.class_value(rb)) {
            if va != vb {
                return true;
            }
        }
        self.classes[&ra].diseqs.iter().any(|&d| self.find(d) == rb)
    }

    /// The interpreted value of a class, if any.
    pub fn class_value(&self, id: NodeId) -> Option<&Cst> {
        self.classes[&self.find(id)].value.as_ref()
    }

    /// Member nodes of `id`'s class.
    pub fn class_nodes(&self, id: NodeId) -> &[NodeId] {
        &self.classes[&self.find(id)].nodes
    }

    /// All nodes with the given head symbol (across all classes).
    pub fn nodes_with_sym(&self, sym: &Sym) -> &[NodeId] {
        self.by_sym.get(sym).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All symbols present in the graph (used by the matcher for
    /// wildcard-ish passes and by statistics).
    pub fn symbols(&self) -> impl Iterator<Item = &Sym> {
        self.by_sym.keys()
    }

    // ------------------------------------------------------------ interning

    /// Interns a ground term, returning its node.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] if eager evaluation of the new node contradicts
    /// existing facts (possible via congruence with evaluated arithmetic).
    pub fn intern(&mut self, term: &Term) -> Result<NodeId, Conflict> {
        if let Some(hit) = self.memo_get(*term) {
            return Ok(hit);
        }
        let id = match term.node() {
            TermNode::Var(v) => self.add(Sym::Var(*v), vec![])?,
            TermNode::Const(c) => self.add(Sym::Lit(*c), vec![])?,
            TermNode::App(f, args) => {
                let mut children = Vec::with_capacity(args.len());
                for a in args {
                    children.push(self.intern(a)?);
                }
                self.add(Sym::from_fn(f), children)?
            }
        };
        self.memo_insert(*term, id);
        Ok(id)
    }

    /// Interns an atom as a boolean-valued node.
    ///
    /// Equality atoms have no node representation; this returns `None` for
    /// them (callers handle equality through [`EGraph::merge`] /
    /// [`EGraph::assert_diseq`]).
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] if interning triggers an evaluation conflict.
    pub fn intern_atom(&mut self, atom: &Atom) -> Result<Option<NodeId>, Conflict> {
        let id = match atom {
            Atom::Eq(..) => return Ok(None),
            Atom::Alive(s, x) => {
                let s = self.intern(s)?;
                let x = self.intern(x)?;
                self.add(Sym::PAlive, vec![s, x])?
            }
            Atom::LocalInc(a, b) => {
                let a = self.intern(a)?;
                let b = self.intern(b)?;
                self.add(Sym::PLocalInc, vec![a, b])?
            }
            Atom::RepInc {
                group,
                pivot,
                mapped,
            } => {
                let g = self.intern(group)?;
                let f = self.intern(pivot)?;
                let m = self.intern(mapped)?;
                self.add(Sym::PRepInc, vec![g, f, m])?
            }
            Atom::Inc {
                store,
                obj,
                attr,
                obj2,
                attr2,
            } => {
                let s = self.intern(store)?;
                let x = self.intern(obj)?;
                let a = self.intern(attr)?;
                let y = self.intern(obj2)?;
                let b = self.intern(attr2)?;
                self.add(Sym::PInc, vec![s, x, a, y, b])?
            }
            Atom::Lt(a, b) => {
                let a = self.intern(a)?;
                let b = self.intern(b)?;
                self.add(Sym::PLt, vec![a, b])?
            }
            Atom::Le(a, b) => {
                let a = self.intern(a)?;
                let b = self.intern(b)?;
                self.add(Sym::PLe, vec![a, b])?
            }
            Atom::IsObj(t) => {
                let t = self.intern(t)?;
                self.add(Sym::PIsObj, vec![t])?
            }
            Atom::IsInt(t) => {
                let t = self.intern(t)?;
                self.add(Sym::PIsInt, vec![t])?
            }
            Atom::RepIncElem {
                group,
                pivot,
                mapped,
            } => {
                let g = self.intern(group)?;
                let f = self.intern(pivot)?;
                let m = self.intern(mapped)?;
                self.add(Sym::PRepIncElem, vec![g, f, m])?
            }
            Atom::BoolTerm(t) => self.intern(t)?,
        };
        Ok(Some(id))
    }

    fn add(&mut self, sym: Sym, children: Vec<NodeId>) -> Result<NodeId, Conflict> {
        let canon: Vec<NodeId> = children.iter().map(|&c| self.find(c)).collect();
        let key = (sym, canon);
        if let Some(&existing) = self.sig_table.get(&key) {
            return Ok(existing);
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            sym,
            children: children.clone(),
        });
        self.parent.push(id);
        let mut data = ClassData {
            gen: self.current_gen,
            ..ClassData::default()
        };
        // Interpreted constants are always generation 0: reaching `3` via a
        // deep instantiation does not make `3` expensive.
        if let Sym::Lit(c) = &sym {
            data.value = Some(*c);
            data.gen = 0;
        }
        data.nodes.push(id);
        self.classes.insert(id, data);
        self.sig_table.insert(key, id);
        self.by_sym.entry(sym).or_default().push(id);
        self.touch_clock += 1;
        self.bump_add_sym(sym);
        for &c in &children {
            let root = self.find(c);
            self.classes
                .get_mut(&root)
                .expect("child class exists")
                .parents
                .push(id);
        }
        self.record(Undo::NewNode);
        self.try_eval(id)?;
        Ok(id)
    }

    // -------------------------------------------------------------- merging

    /// Asserts `a = b`, closing under congruence.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] on contradiction (distinct interpreted values,
    /// violated disequality, or `true = false`).
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> Result<(), Conflict> {
        let mut queue = vec![(a, b)];
        while let Some((a, b)) = queue.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            // Conflict checks.
            let va = self.classes[&ra].value;
            let vb = self.classes[&rb].value;
            if let (Some(x), Some(y)) = (&va, &vb) {
                if x != y {
                    return Err(Conflict(format!(
                        "cannot identify distinct constants {x} and {y}"
                    )));
                }
            }
            if self.classes[&ra].diseqs.iter().any(|&d| self.find(d) == rb)
                || self.classes[&rb].diseqs.iter().any(|&d| self.find(d) == ra)
            {
                return Err(Conflict(
                    "merge violates an asserted disequality".to_string(),
                ));
            }

            // Union: attach the smaller class under the larger.
            let (big, small) = if self.classes[&ra].nodes.len() >= self.classes[&rb].nodes.len() {
                (ra, rb)
            } else {
                (rb, ra)
            };
            self.merges += 1;
            self.merges_performed += 1;
            self.parent[small as usize] = big;
            let small_data = self.classes.remove(&small).expect("small class exists");
            self.touch_clock += 1;
            self.bump_class_syms(&small_data);
            // A generation drop on the surviving class re-prices bindings
            // bound to it, which only its parents' triggers can observe.
            if small_data.gen < self.classes[&big].gen {
                let n = self.classes[&big].parents.len();
                for i in 0..n {
                    let sym = self.nodes[self.classes[&big].parents[i] as usize].sym;
                    self.bump_sym(sym);
                }
            }
            let big_parents_len;
            let small_parent_count = small_data.parents.len();
            {
                let big_data = self.classes.get_mut(&big).expect("big class exists");
                let big_gen = big_data.gen;
                let big_nodes_len = big_data.nodes.len();
                let big_diseqs_len = big_data.diseqs.len();
                big_parents_len = big_data.parents.len();
                let value_taken = big_data.value.is_none() && small_data.value.is_some();
                if big_data.value.is_none() {
                    big_data.value = small_data.value;
                }
                big_data.gen = big_data.gen.min(small_data.gen);
                big_data.nodes.extend_from_slice(&small_data.nodes);
                big_data.diseqs.extend_from_slice(&small_data.diseqs);
                big_data.parents.extend_from_slice(&small_data.parents);
                let entry = Undo::Union {
                    small,
                    big,
                    small_data,
                    big_gen,
                    value_taken,
                    big_nodes_len,
                    big_parents_len,
                    big_diseqs_len,
                };
                self.record(entry);
            }

            // Congruence repair: re-canonicalize signatures of parents of
            // the merged class. They sit at the tail of `big`'s parent
            // list (indices stay valid: the list only grows from here).
            for k in 0..small_parent_count {
                let p = self.classes[&big].parents[big_parents_len + k];
                let node = &self.nodes[p as usize];
                let key = (
                    node.sym,
                    node.children
                        .iter()
                        .map(|&c| self.find(c))
                        .collect::<Vec<_>>(),
                );
                match self.sig_table.get(&key) {
                    Some(&other) if self.find(other) != self.find(p) => {
                        queue.push((other, p));
                    }
                    Some(_) => {}
                    None => {
                        self.sig_table.insert(key, p);
                        self.record(Undo::SigInsert { node: p });
                    }
                }
                self.try_eval_queued(p, &mut queue)?;
            }
            // New value may enable evaluating parents of the big class too.
            let parents: Vec<NodeId> = self.classes[&big].parents.clone();
            for p in parents {
                self.try_eval_queued(p, &mut queue)?;
            }
        }
        Ok(())
    }

    /// Asserts `a ≠ b`.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] if `a` and `b` are already known equal.
    pub fn assert_diseq(&mut self, a: NodeId, b: NodeId) -> Result<(), Conflict> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Err(Conflict("disequality between equal terms".to_string()));
        }
        self.classes.get_mut(&ra).expect("class").diseqs.push(rb);
        self.classes.get_mut(&rb).expect("class").diseqs.push(ra);
        self.record(Undo::Diseq { a: ra, b: rb });
        Ok(())
    }

    /// Evaluates arithmetic and comparisons when all children have integer
    /// values; merges the node with the resulting constant.
    fn try_eval(&mut self, id: NodeId) -> Result<(), Conflict> {
        let mut queue = Vec::new();
        self.try_eval_queued(id, &mut queue)?;
        for (a, b) in queue {
            self.merge(a, b)?;
        }
        Ok(())
    }

    fn try_eval_queued(
        &mut self,
        id: NodeId,
        queue: &mut Vec<(NodeId, NodeId)>,
    ) -> Result<(), Conflict> {
        let node = self.nodes[id as usize].clone();
        let int_of = |eg: &EGraph, c: NodeId| -> Option<i64> {
            match eg.class_value(c) {
                Some(Cst::Int(n)) => Some(*n),
                _ => None,
            }
        };
        let binary = |eg: &EGraph| -> Option<(i64, i64)> {
            Some((
                int_of(eg, node.children[0])?,
                int_of(eg, *node.children.get(1)?)?,
            ))
        };
        let result: Option<Cst> = match node.sym {
            Sym::Add => binary(self)
                .and_then(|(a, b)| a.checked_add(b))
                .map(Cst::Int),
            Sym::Sub => binary(self)
                .and_then(|(a, b)| a.checked_sub(b))
                .map(Cst::Int),
            Sym::Mul => binary(self)
                .and_then(|(a, b)| a.checked_mul(b))
                .map(Cst::Int),
            Sym::Neg => int_of(self, node.children[0])
                .and_then(i64::checked_neg)
                .map(Cst::Int),
            Sym::PLt => binary(self).map(|(a, b)| Cst::Bool(a < b)),
            Sym::PLe => binary(self).map(|(a, b)| Cst::Bool(a <= b)),
            // Interpreted constants are never object references.
            Sym::PIsObj => self.class_value(node.children[0]).map(|_| Cst::Bool(false)),
            // Integers satisfy isInt; other interpreted constants do not.
            Sym::PIsInt => self
                .class_value(node.children[0])
                .map(|c| Cst::Bool(matches!(c, Cst::Int(_)))),
            _ => return Ok(()),
        };
        if let Some(value) = result {
            let lit = self.add(Sym::Lit(value), vec![])?;
            if !self.same_class(id, lit) {
                queue.push((id, lit));
            }
        }
        Ok(())
    }

    // -------------------------------------------------------------- queries

    /// A canonical rendering of the complete logical state (nodes,
    /// union-find, class data, signature table, symbol index, merge count,
    /// generation). Two E-graphs with equal `debug_state` are
    /// indistinguishable to every query; push/pop round-trip tests compare
    /// these. Telemetry counters (pops, performed merges, high-water
    /// marks) are deliberately excluded — they describe work, not state.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "merges={} gen={}", self.merges, self.current_gen);
        for (id, node) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "node {id}: {:?}{:?} -> {}",
                node.sym,
                node.children,
                self.find(id as NodeId)
            );
        }
        let mut classes: Vec<_> = self.classes.iter().collect();
        classes.sort_by_key(|(id, _)| **id);
        for (id, data) in classes {
            let _ = writeln!(
                out,
                "class {id}: value={:?} gen={} nodes={:?} parents={:?} diseqs={:?}",
                data.value, data.gen, data.nodes, data.parents, data.diseqs
            );
        }
        let mut sigs: Vec<String> = self
            .sig_table
            .iter()
            .map(|((sym, children), id)| format!("sig {sym:?}{children:?} -> {id}"))
            .collect();
        sigs.sort();
        for s in sigs {
            let _ = writeln!(out, "{s}");
        }
        let mut syms: Vec<String> = self
            .by_sym
            .iter()
            .map(|(sym, ids)| format!("sym {sym:?}: {ids:?}"))
            .collect();
        syms.sort();
        for s in syms {
            let _ = writeln!(out, "{s}");
        }
        out
    }

    /// Truth value of an interned boolean node, if determined.
    pub fn bool_value(&self, id: NodeId) -> Option<bool> {
        match self.class_value(id) {
            Some(Cst::Bool(b)) => Some(*b),
            _ => {
                if self.same_class(id, self.true_id) {
                    Some(true)
                } else if self.same_class(id, self.false_id)
                    || self.known_disequal(id, self.true_id)
                {
                    // Boolean-valued predicates are two-valued, so ≠ true
                    // determines false (and ≠ false below determines true).
                    Some(false)
                } else if self.known_disequal(id, self.false_id) {
                    Some(true)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::Term as T;

    #[test]
    fn congruence_closure_basic() {
        // a = b implies f(a) = f(b).
        let mut eg = EGraph::new();
        let fa = eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let fb = eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        assert!(!eg.same_class(fa, fb));
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        eg.merge(a, b).unwrap();
        assert!(eg.same_class(fa, fb));
    }

    #[test]
    fn congruence_is_transitive_and_nested() {
        // a = b, b = c implies g(f(a)) = g(f(c)).
        let mut eg = EGraph::new();
        let gfa = eg
            .intern(&T::uninterp("g", vec![T::uninterp("f", vec![T::var("a")])]))
            .unwrap();
        let gfc = eg
            .intern(&T::uninterp("g", vec![T::uninterp("f", vec![T::var("c")])]))
            .unwrap();
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        let c = eg.intern(&T::var("c")).unwrap();
        eg.merge(a, b).unwrap();
        eg.merge(b, c).unwrap();
        assert!(eg.same_class(gfa, gfc));
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut eg = EGraph::new();
        let one = eg.intern(&T::int(1)).unwrap();
        let two = eg.intern(&T::int(2)).unwrap();
        assert!(eg.known_disequal(one, two));
        assert!(eg.merge(one, two).is_err());
    }

    #[test]
    fn attr_constants_are_distinct() {
        let mut eg = EGraph::new();
        let cnt = eg.intern(&T::attr("cnt")).unwrap();
        let vec = eg.intern(&T::attr("vec")).unwrap();
        let null = eg.intern(&T::null()).unwrap();
        assert!(eg.known_disequal(cnt, vec));
        assert!(eg.known_disequal(cnt, null));
        assert!(eg.merge(cnt, vec).is_err());
    }

    #[test]
    fn diseq_then_merge_conflicts() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        eg.assert_diseq(x, y).unwrap();
        assert!(eg.known_disequal(x, y));
        assert!(eg.merge(x, y).is_err());
    }

    #[test]
    fn diseq_propagates_through_congruence() {
        // x = y, f(x) ≠ f(y) is contradictory.
        let mut eg = EGraph::new();
        let fx = eg.intern(&T::uninterp("f", vec![T::var("x")])).unwrap();
        let fy = eg.intern(&T::uninterp("f", vec![T::var("y")])).unwrap();
        eg.assert_diseq(fx, fy).unwrap();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        assert!(eg.merge(x, y).is_err());
    }

    #[test]
    fn arithmetic_evaluates() {
        let mut eg = EGraph::new();
        let sum = eg.intern(&T::add(T::int(2), T::int(3))).unwrap();
        let five = eg.intern(&T::int(5)).unwrap();
        assert!(eg.same_class(sum, five));
    }

    #[test]
    fn arithmetic_evaluates_after_merge() {
        // x = 2 makes x + 3 equal 5.
        let mut eg = EGraph::new();
        let sum = eg.intern(&T::add(T::var("x"), T::int(3))).unwrap();
        let five = eg.intern(&T::int(5)).unwrap();
        assert!(!eg.same_class(sum, five));
        let x = eg.intern(&T::var("x")).unwrap();
        let two = eg.intern(&T::int(2)).unwrap();
        eg.merge(x, two).unwrap();
        assert!(eg.same_class(sum, five));
    }

    #[test]
    fn comparison_predicates_evaluate() {
        let mut eg = EGraph::new();
        let lt = eg
            .intern_atom(&Atom::Lt(T::int(1), T::int(2)))
            .unwrap()
            .unwrap();
        assert_eq!(eg.bool_value(lt), Some(true));
        let le = eg
            .intern_atom(&Atom::Le(T::int(3), T::int(2)))
            .unwrap()
            .unwrap();
        assert_eq!(eg.bool_value(le), Some(false));
    }

    #[test]
    fn predicate_nodes_share_by_congruence() {
        // alive(s, x) = alive(s, y) once x = y.
        let mut eg = EGraph::new();
        let p1 = eg
            .intern_atom(&Atom::Alive(T::var("s"), T::var("x")))
            .unwrap()
            .unwrap();
        let p2 = eg
            .intern_atom(&Atom::Alive(T::var("s"), T::var("y")))
            .unwrap()
            .unwrap();
        let t = eg.true_id();
        eg.merge(p1, t).unwrap();
        assert_eq!(eg.bool_value(p2), None);
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        eg.merge(x, y).unwrap();
        assert_eq!(eg.bool_value(p2), Some(true));
    }

    #[test]
    fn hash_consing_deduplicates() {
        let mut eg = EGraph::new();
        let t1 = eg
            .intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        let t2 = eg
            .intern(&T::select(T::store(), T::var("t"), T::attr("f")))
            .unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn true_false_disequal() {
        let eg = EGraph::new();
        assert!(eg.known_disequal(eg.true_id(), eg.false_id()));
    }

    #[test]
    fn nodes_with_sym_indexes_all() {
        let mut eg = EGraph::new();
        eg.intern(&T::select(T::store(), T::var("a"), T::attr("f")))
            .unwrap();
        eg.intern(&T::select(T::store(), T::var("b"), T::attr("f")))
            .unwrap();
        assert_eq!(eg.nodes_with_sym(&Sym::Select).len(), 2);
    }

    #[test]
    fn clone_preserves_state_for_backtracking() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        let snapshot = eg.clone();
        eg.merge(x, y).unwrap();
        assert!(eg.same_class(x, y));
        assert!(!snapshot.same_class(x, y));
    }

    #[test]
    fn push_pop_undoes_a_merge() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        let before = eg.debug_state();
        let mark = eg.push();
        eg.merge(x, y).unwrap();
        assert!(eg.same_class(x, y));
        eg.pop(mark);
        assert!(!eg.same_class(x, y));
        assert_eq!(eg.debug_state(), before);
        assert_eq!(eg.pops(), 1);
        assert_eq!(eg.undone_merges(), 1);
    }

    #[test]
    fn push_pop_undoes_node_creation_and_congruence() {
        // Merging a = b repairs f(a)/f(b) signatures and interning new
        // terms inside the frame must disappear on pop.
        let mut eg = EGraph::new();
        let fa = eg.intern(&T::uninterp("f", vec![T::var("a")])).unwrap();
        let fb = eg.intern(&T::uninterp("f", vec![T::var("b")])).unwrap();
        let before = eg.debug_state();
        let nodes_before = eg.node_count();
        let mark = eg.push();
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        eg.merge(a, b).unwrap();
        assert!(eg.same_class(fa, fb));
        eg.intern(&T::uninterp("g", vec![T::uninterp("f", vec![T::var("a")])]))
            .unwrap();
        eg.pop(mark);
        assert_eq!(eg.node_count(), nodes_before);
        assert!(!eg.same_class(fa, fb));
        assert_eq!(eg.debug_state(), before);
        // The graph is fully usable after the pop: re-assert and re-check.
        let a = eg.intern(&T::var("a")).unwrap();
        let b = eg.intern(&T::var("b")).unwrap();
        eg.merge(a, b).unwrap();
        assert!(eg.same_class(fa, fb));
    }

    #[test]
    fn push_pop_undoes_diseqs_and_arithmetic() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        let sum = eg.intern(&T::add(T::var("x"), T::int(3))).unwrap();
        let before = eg.debug_state();
        let mark = eg.push();
        eg.assert_diseq(x, y).unwrap();
        let two = eg.intern(&T::int(2)).unwrap();
        eg.merge(x, two).unwrap();
        let five = eg.intern(&T::int(5)).unwrap();
        assert!(eg.same_class(sum, five));
        eg.pop(mark);
        assert!(!eg.known_disequal(x, y));
        assert_eq!(eg.debug_state(), before);
    }

    #[test]
    fn nested_push_pop_unwinds_in_lifo_order() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        let z = eg.intern(&T::var("z")).unwrap();
        let outer_state = eg.debug_state();
        let outer = eg.push();
        eg.merge(x, y).unwrap();
        let inner_state = eg.debug_state();
        let inner = eg.push();
        eg.merge(y, z).unwrap();
        assert!(eg.same_class(x, z));
        eg.pop(inner);
        assert_eq!(eg.debug_state(), inner_state);
        assert!(eg.same_class(x, y));
        assert!(!eg.same_class(x, z));
        eg.pop(outer);
        assert_eq!(eg.debug_state(), outer_state);
        assert!(!eg.same_class(x, y));
    }

    #[test]
    fn pop_restores_merge_count_but_not_performed() {
        let mut eg = EGraph::new();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        let count = eg.merge_count();
        let mark = eg.push();
        eg.merge(x, y).unwrap();
        let performed = eg.merges_performed();
        eg.pop(mark);
        assert_eq!(eg.merge_count(), count);
        assert_eq!(eg.merges_performed(), performed);
        assert!(performed > count);
    }

    #[test]
    fn pop_after_conflict_restores_state() {
        // A merge that fails mid-way (after some queued unions applied)
        // leaves partial state; popping the frame must clear all of it.
        let mut eg = EGraph::new();
        let fx = eg.intern(&T::uninterp("f", vec![T::var("x")])).unwrap();
        let fy = eg.intern(&T::uninterp("f", vec![T::var("y")])).unwrap();
        let one = eg.intern(&T::int(1)).unwrap();
        let two = eg.intern(&T::int(2)).unwrap();
        eg.merge(fx, one).unwrap();
        eg.merge(fy, two).unwrap();
        let before = eg.debug_state();
        let mark = eg.push();
        let x = eg.intern(&T::var("x")).unwrap();
        let y = eg.intern(&T::var("y")).unwrap();
        // x = y forces f(x) = f(y), i.e. 1 = 2: conflict.
        assert!(eg.merge(x, y).is_err());
        eg.pop(mark);
        assert_eq!(eg.debug_state(), before);
    }
}
