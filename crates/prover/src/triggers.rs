//! Automatic trigger inference for quantifiers that carry none.
//!
//! Mirrors Simplify's behaviour: select the smallest sub-patterns that
//! contain all quantified variables and are headed by a matchable symbol
//! (not equality, not arithmetic). Falls back to a greedy multi-pattern
//! when no single pattern covers every variable.
//!
//! Inference is a *user-level fallback only*: every background axiom in
//! `crates/core/src/background.rs` carries a declared
//! [`PatternPolicy`](oolong_logic::PatternPolicy) with explicit PATS/MPAT
//! triggers and a scheduling phase (enforced by the `policy_gate` test), so
//! [`infer_triggers`] only runs for quantifiers written in user
//! specifications — hypotheses, procedure contracts, seeded violations —
//! that omit their own triggers.

use oolong_logic::transform::Nnf;
use oolong_logic::{Atom, FnSym, Pattern, Symbol, Term, TermNode, Trigger};
use std::fmt;

/// Coarse classification of a quantified axiom by the theory vocabulary it
/// mentions. The prover's telemetry uses this to attribute divergence to a
/// *family* of axioms: the paper's §5 diagnosis hinges on distinguishing
/// the rep-inclusion axioms (whose cyclic instances make Simplify "loop
/// irrevocably") from ordinary store/allocation reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// Mentions the rep inclusion relation (`→F` / `⇉F`): the axioms whose
    /// instances chain along `maps … into` declarations.
    RepInclusion,
    /// Mentions the inclusion relation on locations (`≽`) or local
    /// inclusion on attributes (`⊒`), but no rep inclusions.
    Inclusion,
    /// Mentions store or allocation vocabulary
    /// (`select`/`update`/`new`/`succ`/`alive`) only.
    Store,
    /// Anything else: arithmetic, program-specific facts, Skolem axioms.
    Other,
}

impl QuantKind {
    /// Stable lower-case name, used in cache entries and event logs.
    pub fn as_str(self) -> &'static str {
        match self {
            QuantKind::RepInclusion => "rep-inclusion",
            QuantKind::Inclusion => "inclusion",
            QuantKind::Store => "store",
            QuantKind::Other => "other",
        }
    }

    /// Inverse of [`QuantKind::as_str`]; unknown names map to `Other`.
    pub fn from_name(name: &str) -> QuantKind {
        match name {
            "rep-inclusion" => QuantKind::RepInclusion,
            "inclusion" => QuantKind::Inclusion,
            "store" => QuantKind::Store,
            _ => QuantKind::Other,
        }
    }
}

impl fmt::Display for QuantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Classifies `∀ vars [triggers] :: body` by the strongest theory
/// vocabulary appearing in its body or trigger patterns: rep inclusion
/// dominates inclusion, which dominates store reasoning.
pub fn classify_quant(triggers: &[Trigger], body: &Nnf) -> QuantKind {
    #[derive(Default)]
    struct Vocab {
        rep: bool,
        inc: bool,
        store: bool,
    }
    fn check_term(t: &Term, vocab: &mut Vocab) {
        let mut store = vocab.store;
        t.walk(&mut |sub| {
            if let TermNode::App(f, _) = sub.node() {
                if matches!(f, FnSym::Select | FnSym::Update | FnSym::New | FnSym::Succ) {
                    store = true;
                }
            }
        });
        vocab.store = store;
    }
    fn check_atom(atom: &Atom, vocab: &mut Vocab) {
        match atom {
            Atom::RepInc { .. } | Atom::RepIncElem { .. } => vocab.rep = true,
            Atom::Inc { .. } | Atom::LocalInc(..) => vocab.inc = true,
            Atom::Alive(..) => vocab.store = true,
            _ => {}
        }
        let mut store = vocab.store;
        atom.for_each_term(&mut |t| {
            t.walk(&mut |sub| {
                if let TermNode::App(f, _) = sub.node() {
                    if matches!(f, FnSym::Select | FnSym::Update | FnSym::New | FnSym::Succ) {
                        store = true;
                    }
                }
            });
        });
        vocab.store = store;
    }
    let mut vocab = Vocab::default();
    visit_atoms(body, &mut |atom| check_atom(atom, &mut vocab));
    for trigger in triggers {
        for pattern in &trigger.0 {
            match pattern {
                Pattern::Atom(atom) => check_atom(atom, &mut vocab),
                Pattern::Term(term) => check_term(term, &mut vocab),
            }
        }
    }
    if vocab.rep {
        QuantKind::RepInclusion
    } else if vocab.inc {
        QuantKind::Inclusion
    } else if vocab.store {
        QuantKind::Store
    } else {
        QuantKind::Other
    }
}

/// Applies `f` to every atom of an NNF body, including under nested
/// quantifiers.
fn visit_atoms(body: &Nnf, f: &mut impl FnMut(&Atom)) {
    match body {
        Nnf::True | Nnf::False => {}
        Nnf::Lit { atom, .. } => f(atom),
        Nnf::And(parts) | Nnf::Or(parts) => {
            for p in parts {
                visit_atoms(p, f);
            }
        }
        Nnf::Forall { body, .. } => visit_atoms(body, f),
    }
}

/// Infers triggers for `∀ vars :: body`. Returns an empty vector when no
/// usable trigger exists (the quantifier is then inert).
pub fn infer_triggers(vars: &[Symbol], body: &Nnf) -> Vec<Trigger> {
    let mut candidates: Vec<(Pattern, Vec<Symbol>, usize)> = Vec::new();
    collect(body, vars, &mut Vec::new(), &mut candidates);

    // Deduplicate.
    candidates.sort_by_key(|a| a.2);
    candidates.dedup_by(|a, b| a.0 == b.0);

    // Single-pattern triggers that cover everything.
    let full: Vec<&(Pattern, Vec<Symbol>, usize)> = candidates
        .iter()
        .filter(|(_, covered, _)| covered.len() == vars.len())
        .collect();
    if !full.is_empty() {
        return full
            .iter()
            .take(2)
            .map(|(p, _, _)| Trigger(vec![*p]))
            .collect();
    }

    // Greedy multi-pattern cover.
    let mut remaining: Vec<Symbol> = vars.to_vec();
    let mut chosen = Vec::new();
    let mut pool: Vec<&(Pattern, Vec<Symbol>, usize)> = candidates.iter().collect();
    pool.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.2.cmp(&b.2)));
    for (pattern, covered, _) in pool {
        if covered.iter().any(|v| remaining.contains(v)) {
            remaining.retain(|v| !covered.contains(v));
            chosen.push(*pattern);
            if remaining.is_empty() {
                break;
            }
        }
    }
    if remaining.is_empty() && !chosen.is_empty() {
        vec![Trigger(chosen)]
    } else {
        Vec::new()
    }
}

/// Collects candidate patterns from `body`, skipping any that mention
/// variables bound by nested quantifiers (`illegal`).
fn collect(
    body: &Nnf,
    vars: &[Symbol],
    illegal: &mut Vec<Symbol>,
    out: &mut Vec<(Pattern, Vec<Symbol>, usize)>,
) {
    match body {
        Nnf::True | Nnf::False => {}
        Nnf::Lit { atom, .. } => collect_atom(atom, vars, illegal, out),
        Nnf::And(ps) | Nnf::Or(ps) => {
            for p in ps {
                collect(p, vars, illegal, out);
            }
        }
        Nnf::Forall {
            vars: inner, body, ..
        } => {
            let mark = illegal.len();
            for v in inner {
                if !illegal.contains(v) {
                    illegal.push(*v);
                }
            }
            collect(body, vars, illegal, out);
            illegal.truncate(mark);
        }
    }
}

fn collect_atom(
    atom: &Atom,
    vars: &[Symbol],
    illegal: &[Symbol],
    out: &mut Vec<(Pattern, Vec<Symbol>, usize)>,
) {
    // The atom itself is a candidate (except equality / bare booleans).
    if !matches!(atom, Atom::Eq(..) | Atom::BoolTerm(_)) {
        let (covered, clean) = coverage_atom(atom, vars, illegal);
        if !covered.is_empty() && clean {
            let mut size = 0;
            atom.for_each_term(&mut |t| size += t.size());
            out.push((Pattern::Atom(*atom), covered, size + 1));
        }
    }
    // Every application subterm is a candidate.
    atom.for_each_term(&mut |t| collect_term(t, vars, illegal, out));
}

fn collect_term(
    term: &Term,
    vars: &[Symbol],
    illegal: &[Symbol],
    out: &mut Vec<(Pattern, Vec<Symbol>, usize)>,
) {
    term.walk(&mut |sub| {
        let TermNode::App(f, _) = sub.node() else {
            return;
        };
        if matches!(f, FnSym::Add | FnSym::Sub | FnSym::Mul | FnSym::Neg) {
            return; // arithmetic heads make poor triggers
        }
        let (covered, clean) = coverage_term(sub, vars, illegal);
        if !covered.is_empty() && clean {
            out.push((Pattern::Term(*sub), covered, sub.size()));
        }
    });
}

/// Returns the quantified variables covered by the term and whether it is
/// free of illegal (nested-bound) variables.
fn coverage_term(term: &Term, vars: &[Symbol], illegal: &[Symbol]) -> (Vec<Symbol>, bool) {
    let mut free = Vec::new();
    term.free_vars(&mut free);
    let clean = free.iter().all(|v| !illegal.contains(v));
    let covered = free.into_iter().filter(|v| vars.contains(v)).collect();
    (covered, clean)
}

fn coverage_atom(atom: &Atom, vars: &[Symbol], illegal: &[Symbol]) -> (Vec<Symbol>, bool) {
    let mut free = Vec::new();
    atom.free_vars(&mut free);
    let clean = free.iter().all(|v| !illegal.contains(v));
    let covered = free.into_iter().filter(|v| vars.contains(v)).collect();
    (covered, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oolong_logic::Term as T;

    fn lit(atom: Atom) -> Nnf {
        Nnf::Lit {
            atom,
            positive: true,
            label: None,
        }
    }

    #[test]
    fn single_pattern_covering_all_vars() {
        // ∀X :: f(X) = 0 — trigger should be f(X).
        let body = lit(Atom::Eq(T::uninterp("f", vec![T::var("X")]), T::int(0)));
        let trigs = infer_triggers(&["X".into()], &body);
        assert!(!trigs.is_empty());
        assert_eq!(trigs[0].0.len(), 1);
        assert!(matches!(
            &trigs[0].0[0],
            Pattern::Term(t) if matches!(t.node(), TermNode::App(..))
        ));
    }

    #[test]
    fn prefers_smaller_patterns() {
        // ∀X :: g(f(X)) = 0 — f(X) is smaller than g(f(X)).
        let body = lit(Atom::Eq(
            T::uninterp("g", vec![T::uninterp("f", vec![T::var("X")])]),
            T::int(0),
        ));
        let trigs = infer_triggers(&["X".into()], &body);
        match &trigs[0].0[0] {
            Pattern::Term(t) => match t.node() {
                TermNode::App(FnSym::Uninterp(name), _) => assert_eq!(name.as_str(), "f"),
                other => panic!("unexpected pattern {other:?}"),
            },
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn multi_pattern_when_no_single_covers() {
        // ∀X,Y :: f(X) = g(Y) — needs {f(X), g(Y)}.
        let body = lit(Atom::Eq(
            T::uninterp("f", vec![T::var("X")]),
            T::uninterp("g", vec![T::var("Y")]),
        ));
        let trigs = infer_triggers(&["X".into(), "Y".into()], &body);
        assert_eq!(trigs.len(), 1);
        assert_eq!(trigs[0].0.len(), 2);
    }

    #[test]
    fn atom_pattern_for_relations() {
        // ∀A,B :: A ⊒ B ⇒ false — only the LocalInc atom covers both vars.
        let body = Nnf::Or(vec![
            Nnf::Lit {
                atom: Atom::LocalInc(T::var("A"), T::var("B")),
                positive: false,
                label: None,
            },
            Nnf::False,
        ]);
        let trigs = infer_triggers(&["A".into(), "B".into()], &body);
        assert!(!trigs.is_empty());
        assert!(matches!(&trigs[0].0[0], Pattern::Atom(Atom::LocalInc(..))));
    }

    #[test]
    fn no_trigger_for_uncoverable_var() {
        // ∀X :: X = 0 — bare variable, no application to match on.
        let body = lit(Atom::Eq(T::var("X"), T::int(0)));
        assert!(infer_triggers(&["X".into()], &body).is_empty());
    }

    #[test]
    fn nested_quantifier_vars_are_excluded() {
        // ∀X :: (∀Y :: f(X, Y) = 0) — f(X, Y) mentions Y which is nested;
        // no usable trigger for the outer X.
        let inner = Nnf::Forall {
            vars: vec!["Y".into()],
            triggers: vec![],
            body: Box::new(lit(Atom::Eq(
                T::uninterp("f", vec![T::var("X"), T::var("Y")]),
                T::int(0),
            ))),
        };
        assert!(infer_triggers(&["X".into()], &inner).is_empty());
    }

    #[test]
    fn arithmetic_heads_are_skipped() {
        // ∀X :: X + 1 = f(X) — f(X) is the only candidate.
        let body = lit(Atom::Eq(
            T::add(T::var("X"), T::int(1)),
            T::uninterp("f", vec![T::var("X")]),
        ));
        let trigs = infer_triggers(&["X".into()], &body);
        assert_eq!(trigs.len(), 1);
        match &trigs[0].0[0] {
            Pattern::Term(t) => match t.node() {
                TermNode::App(FnSym::Uninterp(name), _) => assert_eq!(name.as_str(), "f"),
                other => panic!("unexpected pattern {other:?}"),
            },
            other => panic!("unexpected pattern {other:?}"),
        }
    }
}
