//! Offline, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace: the `proptest!` test macro, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, `Just`, `any`, integer-range and
//! tuple strategies, `prop_oneof!`, `proptest::collection::vec`, the
//! `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! The container this workspace builds in has no crates.io access. This
//! stand-in keeps the property tests' structure and input distributions but
//! drops shrinking and persistence: a failing case panics with the
//! generating seed so it can be replayed by rerunning the test.

use std::fmt;

/// Test-runner types: configuration, failure values, and the deterministic
/// RNG driving strategies.
pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases — unless the
        /// `PROPTEST_CASES` environment variable overrides it, as in the
        /// real `proptest`. CI pins the variable so property suites run a
        /// fixed, reproducible number of cases on every machine.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: env_cases().unwrap_or(64),
            }
        }
    }

    /// The `PROPTEST_CASES` override, when set and parseable.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// A failed property case (the `Err` of a property body).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic SplitMix64 stream driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test name and case index, so every
        /// test gets an independent, reproducible stream.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A value in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// `true` with probability `p`.
        pub fn gen_bool(&mut self, p: f64) -> bool {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
        }
    }
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type. Unlike real proptest
    /// there is no shrinking: a strategy is just a deterministic function
    /// of the RNG stream.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| s.gen_value(rng)))
        }

        /// Builds recursive values: `f` receives the strategy for the
        /// previous recursion level and returns the strategy for the next.
        /// `depth` bounds the nesting; the `_desired_size` and
        /// `_expected_branch_size` tuning knobs of real proptest are
        /// accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let branch = f(current).boxed();
                current = BoxedStrategy(Rc::new(move |rng| {
                    // Lean toward branches so deep cases actually occur;
                    // the leaf arm guarantees termination.
                    if rng.gen_bool(0.35) {
                        leaf.gen_value(rng)
                    } else {
                        branch.gen_value(rng)
                    }
                }));
            }
            current
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `choices`.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                choices: self.choices.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

use strategy::Strategy;

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// The canonical strategy for a type (result of [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty length range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest property `{}` failed at case {}: {}",
                        stringify!($name),
                        __case,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0i64..10, y in 5u8..7) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((5..7).contains(&y));
        }

        #[test]
        fn mapped_values(v in (0u64..4).prop_map(|n| n * 2)) {
            prop_assert!(v % 2 == 0 && v < 8);
        }

        #[test]
        fn vectors_have_requested_len(v in crate::collection::vec(0usize..3, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x < 3);
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(n) => u32::from(*n < 0),
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        })
    }

    proptest! {
        #[test]
        fn recursion_depth_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "tree too deep: {:?}", t);
        }
    }

    proptest! {
        #[test]
        fn early_return_is_ok(b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!(!b);
        }
    }
}
