//! Frontend for **oolong**, the primitive object-oriented language of
//!
//! > K. R. M. Leino, A. Poetzsch-Heffter, Y. Zhou.
//! > *Using Data Groups to Specify and Check Side Effects.* PLDI 2002.
//!
//! The crate provides the lexer, abstract syntax trees, a recursive-descent
//! parser, a canonical pretty-printer, and span-carrying diagnostics. The
//! grammar follows Figures 0 and 1 of the paper, with ASCII spellings
//! (`[]` for the choice operator) and two pieces of sugar the paper
//! describes in prose: `skip` and `if … then … else … end`.
//!
//! # Example
//!
//! ```
//! use oolong_syntax::{parse_program, pretty::print_program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "group contents
//!      field vec maps elems into contents
//!      proc push(s, o) modifies s.contents",
//! )?;
//! assert_eq!(program.decls.len(), 3);
//! let canonical = print_program(&program);
//! assert!(canonical.contains("maps elems into contents"));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, Cmd, Const, Decl, Expr, FieldDecl, GroupDecl, Ident, ImplDecl, InvariantDecl,
    MapsClause, ModuleDecl, ProcDecl, Program, UnaryOp,
};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use parser::{parse_command, parse_expr, parse_program};
pub use span::{LineCol, LineMap, Span};
