//! Abstract syntax trees for oolong programs.
//!
//! The shapes follow Figures 0 and 1 of the paper directly: a program is a
//! set of declarations (data groups, object fields, procedures, and
//! procedure implementations); commands are guarded commands with
//! nondeterministic choice; expressions are constants, identifiers,
//! designator expressions `e.x`, and operator applications.
//!
//! Two pieces of surface sugar are represented explicitly and desugared on
//! demand (see [`Cmd::desugared`]): `skip` (equivalent to `assert true`) and
//! `if B then C else D end`, which the paper encodes as
//! `(assume !B ; D) [] (assume B ; C)`.

use crate::span::Span;
use std::fmt;

/// An identifier occurrence with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Where it occurred.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesised nodes).
    pub fn synthetic(text: impl Into<String>) -> Self {
        Ident {
            text: text.into(),
            span: Span::DUMMY,
        }
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// A complete oolong program: a set of declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The declarations, in source order.
    pub decls: Vec<Decl>,
}

impl Program {
    /// Iterates over the group declarations.
    pub fn groups(&self) -> impl Iterator<Item = &GroupDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Group(g) => Some(g),
            _ => None,
        })
    }

    /// Iterates over the field declarations.
    pub fn fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Field(fd) => Some(fd),
            _ => None,
        })
    }

    /// Iterates over the procedure declarations.
    pub fn procs(&self) -> impl Iterator<Item = &ProcDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Proc(p) => Some(p),
            _ => None,
        })
    }

    /// Iterates over the procedure implementations.
    pub fn impls(&self) -> impl Iterator<Item = &ImplDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Impl(i) => Some(i),
            _ => None,
        })
    }

    /// Iterates over the object-invariant declarations.
    pub fn invariants(&self) -> impl Iterator<Item = &InvariantDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Invariant(v) => Some(v),
            _ => None,
        })
    }
}

/// A top-level declaration (Figure 0 of the paper, plus the `module`
/// extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `group g in h, k, ...`
    Group(GroupDecl),
    /// `field f in h, ... maps x into g, ... `
    Field(FieldDecl),
    /// `proc p(t, u, ...) modifies E, F, ...`
    Proc(ProcDecl),
    /// `impl p(t, u, ...) { C }`
    Impl(ImplDecl),
    /// `invariant E` (extension) — an object invariant over the receiver
    /// `this`, constrained by sema to depend only on locations reachable
    /// through the object's declared data groups.
    Invariant(InvariantDecl),
    /// `module M imports N, ... { decls }` — an extension making the
    /// paper's prose notion of interface/implementation modules explicit
    /// ("a module is just a set of declarations"; the scope of a module is
    /// its own declarations plus those of the modules it transitively
    /// imports). Names remain globally unique, as in the paper.
    Module(ModuleDecl),
}

impl Decl {
    /// The declared name (procedure name for `impl`); `None` for the
    /// anonymous `invariant` declaration.
    pub fn name(&self) -> Option<&Ident> {
        match self {
            Decl::Group(g) => Some(&g.name),
            Decl::Field(f) => Some(&f.name),
            Decl::Proc(p) => Some(&p.name),
            Decl::Impl(i) => Some(&i.name),
            Decl::Invariant(_) => None,
            Decl::Module(m) => Some(&m.name),
        }
    }

    /// The full source span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::Group(g) => g.span,
            Decl::Field(f) => f.span,
            Decl::Proc(p) => p.span,
            Decl::Impl(i) => i.span,
            Decl::Invariant(v) => v.span,
            Decl::Module(m) => m.span,
        }
    }
}

/// `module M imports N, ... { decls }` — see [`Decl::Module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleDecl {
    /// The module's name.
    pub name: Ident,
    /// Names of imported modules.
    pub imports: Vec<Ident>,
    /// The declarations the module contributes.
    pub decls: Vec<Decl>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// `group g in h, k, ...` — declares a data group `g`, included in the
/// listed enclosing groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDecl {
    /// The group's name.
    pub name: Ident,
    /// Groups this group is declared to be `in` (may be empty).
    pub includes: Vec<Ident>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// One `maps x into g, h, ...` clause on a field declaration.
///
/// Declaring `field f maps x into g` makes `f` a *pivot field* and records
/// the rep inclusions `g →f x` (for every listed target group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapsClause {
    /// The attribute of the referenced object being mapped (`x`).
    pub mapped: Ident,
    /// The enclosing groups it is mapped into (`g, h, ...`).
    pub into: Vec<Ident>,
    /// `maps elem x into g` (extension): the field references an *array*
    /// whose every integer slot, and attribute `x` of every element stored
    /// in those slots, is included in `g` — the array dependencies of the
    /// paper's §6 future work.
    pub elementwise: bool,
    /// Source span of the clause.
    pub span: Span,
}

/// `field f in h, ... maps x into g ...` — declares an object field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// The field's name.
    pub name: Ident,
    /// Groups this field is declared to be `in` (local inclusions).
    pub includes: Vec<Ident>,
    /// `maps ... into ...` clauses (rep inclusions); non-empty iff the
    /// field is a pivot field.
    pub maps: Vec<MapsClause>,
    /// Source span of the whole declaration.
    pub span: Span,
}

impl FieldDecl {
    /// Whether this field is a pivot field (has at least one `maps into`
    /// clause), per Section 2 of the paper.
    pub fn is_pivot(&self) -> bool {
        !self.maps.is_empty()
    }
}

/// `proc p(t, u, ...) modifies E, F, ... reads G, H, ...` — a procedure
/// declaration with its modifies list and optional read frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcDecl {
    /// The procedure's name.
    pub name: Ident,
    /// Formal parameter names.
    pub params: Vec<Ident>,
    /// Designator expressions the procedure is licensed to modify.
    pub modifies: Vec<Expr>,
    /// Designator expressions the procedure is licensed to read
    /// (extension). `None` means no `reads` clause was written: the
    /// procedure's reads are unconstrained, which is the paper's original
    /// language. `Some` — even with a single entry — arms read-frame
    /// checking for every implementation of the procedure.
    pub reads: Option<Vec<Expr>>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// `invariant E` (extension) — declares an object invariant. The
/// expression may mention the distinguished receiver `this`; sema rejects
/// invariants that dereference attributes not reachable through the
/// object's declared data groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantDecl {
    /// The invariant body, over the receiver `this`.
    pub expr: Expr,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// `impl p(t, u, ...) { C }` — an implementation of procedure `p`.
///
/// The paper requires the parameter list to repeat the procedure
/// declaration's parameters verbatim; `oolong-sema` enforces this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplDecl {
    /// Name of the procedure being implemented.
    pub name: Ident,
    /// Formal parameter names (must match the `proc` declaration).
    pub params: Vec<Ident>,
    /// The implementation body.
    pub body: Cmd,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A command (Figure 1 of the paper, plus `skip` and `if` sugar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// `assert E` — goes *wrong* if `E` is false.
    Assert(Expr, Span),
    /// `assume E` — *blocks* if `E` is false.
    Assume(Expr, Span),
    /// `var x in C end` — local variable with arbitrary initial value.
    Var(Ident, Box<Cmd>, Span),
    /// `E0 := E1` — assignment to a local variable or an object field.
    Assign { lhs: Expr, rhs: Expr, span: Span },
    /// `E := new()` — allocation.
    AssignNew { lhs: Expr, span: Span },
    /// `C ; D` — sequential composition.
    Seq(Box<Cmd>, Box<Cmd>),
    /// `C [] D` — nondeterministic choice.
    Choice(Box<Cmd>, Box<Cmd>),
    /// `p(E1, ..., En)` — procedure call, dispatched to an arbitrary
    /// implementation of `p`.
    Call {
        proc: Ident,
        args: Vec<Expr>,
        span: Span,
    },
    /// `skip` — sugar for `assert true`.
    Skip(Span),
    /// `if B then C else D end` — sugar for `(assume !B ; D) [] (assume B ; C)`.
    If {
        cond: Expr,
        then_branch: Box<Cmd>,
        else_branch: Box<Cmd>,
        span: Span,
    },
}

impl Cmd {
    /// The source span of the command.
    pub fn span(&self) -> Span {
        match self {
            Cmd::Assert(_, s)
            | Cmd::Assume(_, s)
            | Cmd::Var(_, _, s)
            | Cmd::Assign { span: s, .. }
            | Cmd::AssignNew { span: s, .. }
            | Cmd::Call { span: s, .. }
            | Cmd::Skip(s)
            | Cmd::If { span: s, .. } => *s,
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => a.span().to(b.span()),
        }
    }

    /// Removes the `skip` and `if` sugar, producing a command built only
    /// from the primitive forms of Figure 1.
    ///
    /// `skip` becomes `assert true`; `if B then C else D end` becomes
    /// `(assume !B ; D') [] (assume B ; C')` exactly as in Section 2 of
    /// the paper, where the primed commands are recursively desugared.
    #[must_use]
    pub fn desugared(&self) -> Cmd {
        match self {
            Cmd::Skip(s) => Cmd::Assert(Expr::Const(Const::Bool(true), *s), *s),
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span: _,
            } => {
                let neg = Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(cond.clone()),
                    span: cond.span(),
                };
                // The synthesised assumes carry the *condition's* span, not
                // the whole `if` command's, so downstream diagnostics point
                // at the guard rather than the entire statement.
                let else_arm = Cmd::Seq(
                    Box::new(Cmd::Assume(neg, cond.span())),
                    Box::new(else_branch.desugared()),
                );
                let then_arm = Cmd::Seq(
                    Box::new(Cmd::Assume(cond.clone(), cond.span())),
                    Box::new(then_branch.desugared()),
                );
                Cmd::Choice(Box::new(else_arm), Box::new(then_arm))
            }
            Cmd::Assert(e, s) => Cmd::Assert(e.clone(), *s),
            Cmd::Assume(e, s) => Cmd::Assume(e.clone(), *s),
            Cmd::Var(x, c, s) => Cmd::Var(x.clone(), Box::new(c.desugared()), *s),
            Cmd::Assign { lhs, rhs, span } => Cmd::Assign {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                span: *span,
            },
            Cmd::AssignNew { lhs, span } => Cmd::AssignNew {
                lhs: lhs.clone(),
                span: *span,
            },
            Cmd::Seq(a, b) => Cmd::Seq(Box::new(a.desugared()), Box::new(b.desugared())),
            Cmd::Choice(a, b) => Cmd::Choice(Box::new(a.desugared()), Box::new(b.desugared())),
            Cmd::Call { proc, args, span } => Cmd::Call {
                proc: proc.clone(),
                args: args.clone(),
                span: *span,
            },
        }
    }

    /// Visits every sub-command, including `self`, in pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Cmd)) {
        visit(self);
        match self {
            Cmd::Var(_, c, _) => c.walk(visit),
            Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Cmd::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(visit);
                else_branch.walk(visit);
            }
            _ => {}
        }
    }
}

/// A constant (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer literal.
    Int(i64),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Null => write!(f, "null"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Int(n) => write!(f, "{n}"),
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=` — equality on values.
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Whether the operator could return an object reference.
    ///
    /// The pivot-uniqueness restriction (Section 3.0) requires that the
    /// right operand of an assignment never be an operator expression whose
    /// operator "may return an object"; none of oolong's pre-defined
    /// operators do, so this is uniformly `false`. It is kept as a method
    /// so a hypothetical object-returning operator extension would flow
    /// through the restriction checker automatically.
    pub fn may_return_object(&self) -> bool {
        false
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `!` — boolean negation.
    Not,
    /// `-` — arithmetic negation.
    Neg,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Not => write!(f, "!"),
            UnaryOp::Neg => write!(f, "-"),
        }
    }
}

/// An expression (Figure 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(Const, Span),
    /// A local variable or formal parameter.
    Id(Ident),
    /// A designator expression `E.x` selecting attribute `x`.
    Select {
        base: Box<Expr>,
        attr: Ident,
        span: Span,
    },
    /// An array slot `E[I]` (extension): the value stored at integer key
    /// `I` of the array object `E`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// A binary operator application.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// A unary operator application.
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Const(_, s) => *s,
            Expr::Id(id) => id.span,
            Expr::Select { span, .. }
            | Expr::Index { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }

    /// If this expression is a designator chain `x.a1.a2...an` rooted at an
    /// identifier, returns the root and the attribute path (possibly empty).
    pub fn as_designator_chain(&self) -> Option<(&Ident, Vec<&Ident>)> {
        match self {
            Expr::Id(id) => Some((id, Vec::new())),
            Expr::Select { base, attr, .. } => {
                let (root, mut path) = base.as_designator_chain()?;
                path.push(attr);
                Some((root, path))
            }
            _ => None,
        }
    }

    /// Visits every sub-expression, including `self`, in pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Select { base, .. } => base.walk(visit),
            Expr::Index { base, index, .. } => {
                base.walk(visit);
                index.walk(visit);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Unary { operand, .. } => operand.walk(visit),
            Expr::Const(..) | Expr::Id(_) => {}
        }
    }

    /// Convenience constructor for an identifier expression.
    pub fn ident(text: impl Into<String>) -> Expr {
        Expr::Id(Ident::synthetic(text))
    }

    /// Convenience constructor for `base.attr` with dummy spans.
    pub fn select(base: Expr, attr: impl Into<String>) -> Expr {
        Expr::Select {
            base: Box::new(base),
            attr: Ident::synthetic(attr),
            span: Span::DUMMY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::synthetic(s)
    }

    #[test]
    fn designator_chain_extraction() {
        // t.c.d.g
        let e = Expr::select(Expr::select(Expr::select(Expr::ident("t"), "c"), "d"), "g");
        let (root, path) = e.as_designator_chain().expect("is a chain");
        assert_eq!(root.text, "t");
        let names: Vec<_> = path.iter().map(|i| i.text.as_str()).collect();
        assert_eq!(names, vec!["c", "d", "g"]);

        let not_chain = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::ident("a")),
            rhs: Box::new(Expr::ident("b")),
            span: Span::DUMMY,
        };
        assert!(not_chain.as_designator_chain().is_none());
    }

    #[test]
    fn if_desugars_to_guarded_choice() {
        let cond = Expr::ident("b");
        let cmd = Cmd::If {
            cond: cond.clone(),
            then_branch: Box::new(Cmd::Skip(Span::DUMMY)),
            else_branch: Box::new(Cmd::Assert(
                Expr::Const(Const::Bool(false), Span::DUMMY),
                Span::DUMMY,
            )),
            span: Span::DUMMY,
        };
        let de = cmd.desugared();
        // (assume !b ; assert false) [] (assume b ; assert true)
        match de {
            Cmd::Choice(else_arm, then_arm) => {
                match *else_arm {
                    Cmd::Seq(first, _) => match *first {
                        Cmd::Assume(
                            Expr::Unary {
                                op: UnaryOp::Not, ..
                            },
                            _,
                        ) => {}
                        other => panic!("expected assume !b, got {other:?}"),
                    },
                    other => panic!("expected seq, got {other:?}"),
                }
                match *then_arm {
                    Cmd::Seq(first, second) => {
                        assert!(matches!(*first, Cmd::Assume(Expr::Id(_), _)));
                        // skip desugars to assert true
                        assert!(matches!(
                            *second,
                            Cmd::Assert(Expr::Const(Const::Bool(true), _), _)
                        ));
                    }
                    other => panic!("expected seq, got {other:?}"),
                }
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn pivot_detection() {
        let plain = FieldDecl {
            name: id("cnt"),
            includes: vec![],
            maps: vec![],
            span: Span::DUMMY,
        };
        assert!(!plain.is_pivot());
        let pivot = FieldDecl {
            name: id("vec"),
            includes: vec![],
            maps: vec![MapsClause {
                mapped: id("elems"),
                into: vec![id("contents")],
                elementwise: false,
                span: Span::DUMMY,
            }],
            span: Span::DUMMY,
        };
        assert!(pivot.is_pivot());
    }

    #[test]
    fn walk_visits_all_subcommands() {
        let body = Cmd::Seq(
            Box::new(Cmd::Skip(Span::DUMMY)),
            Box::new(Cmd::Choice(
                Box::new(Cmd::Assert(Expr::ident("x"), Span::DUMMY)),
                Box::new(Cmd::Var(
                    id("y"),
                    Box::new(Cmd::Skip(Span::DUMMY)),
                    Span::DUMMY,
                )),
            )),
        );
        let mut count = 0;
        body.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn program_accessors_filter_by_kind() {
        let prog = Program {
            decls: vec![
                Decl::Group(GroupDecl {
                    name: id("g"),
                    includes: vec![],
                    span: Span::DUMMY,
                }),
                Decl::Field(FieldDecl {
                    name: id("f"),
                    includes: vec![],
                    maps: vec![],
                    span: Span::DUMMY,
                }),
                Decl::Proc(ProcDecl {
                    name: id("p"),
                    params: vec![],
                    modifies: vec![],
                    reads: None,
                    span: Span::DUMMY,
                }),
                Decl::Impl(ImplDecl {
                    name: id("p"),
                    params: vec![],
                    body: Cmd::Skip(Span::DUMMY),
                    span: Span::DUMMY,
                }),
            ],
        };
        assert_eq!(prog.groups().count(), 1);
        assert_eq!(prog.fields().count(), 1);
        assert_eq!(prog.procs().count(), 1);
        assert_eq!(prog.impls().count(), 1);
    }
}
