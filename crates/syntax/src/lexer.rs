//! Hand-written lexer for oolong source text.

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenises `source`, returning the token stream (always terminated by an
/// [`TokenKind::Eof`] token) and any lexical diagnostics.
///
/// Unknown characters are reported and skipped so that parsing can continue
/// and surface further errors.
pub fn lex(source: &str) -> (Vec<Token>, Diagnostics) {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    source: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            source,
            bytes: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diags: Diagnostics::new(),
        }
    }

    fn run(mut self) -> (Vec<Token>, Diagnostics) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semi),
                b'.' => self.single(TokenKind::Dot),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b':' => {
                    if self.peek(1) == Some(b'=') {
                        self.multi(TokenKind::Assign, 2);
                    } else {
                        self.error_char(start, "expected `:=`");
                    }
                }
                b'[' => {
                    if self.peek(1) == Some(b']') {
                        self.multi(TokenKind::Choice, 2);
                    } else {
                        self.single(TokenKind::LBracket);
                    }
                }
                b']' => self.single(TokenKind::RBracket),
                b'=' => {
                    if self.peek(1) == Some(b'=') {
                        self.multi(TokenKind::Eq, 2);
                    } else {
                        self.single(TokenKind::Eq);
                    }
                }
                b'!' => {
                    if self.peek(1) == Some(b'=') {
                        self.multi(TokenKind::Ne, 2);
                    } else {
                        self.single(TokenKind::Bang);
                    }
                }
                b'<' => {
                    if self.peek(1) == Some(b'=') {
                        self.multi(TokenKind::Le, 2);
                    } else {
                        self.single(TokenKind::Lt);
                    }
                }
                b'>' => {
                    if self.peek(1) == Some(b'=') {
                        self.multi(TokenKind::Ge, 2);
                    } else {
                        self.single(TokenKind::Gt);
                    }
                }
                b'&' => {
                    if self.peek(1) == Some(b'&') {
                        self.multi(TokenKind::AndAnd, 2);
                    } else {
                        self.error_char(start, "expected `&&`");
                    }
                }
                b'|' => {
                    if self.peek(1) == Some(b'|') {
                        self.multi(TokenKind::OrOr, 2);
                    } else {
                        self.error_char(start, "expected `||`");
                    }
                }
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => {
                    // Advance past one UTF-8 scalar, not one byte.
                    let ch_len = self.source[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.pos += ch_len;
                    self.diags.push(Diagnostic::error(
                        format!("unexpected character `{}`", &self.source[start..self.pos]),
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
            }
        }
        let eof = Span::new(self.pos as u32, self.pos as u32);
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: eof,
        });
        (self.tokens, self.diags)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn single(&mut self, kind: TokenKind) {
        self.multi(kind, 1);
    }

    fn multi(&mut self, kind: TokenKind, len: usize) {
        let span = Span::new(self.pos as u32, (self.pos + len) as u32);
        self.pos += len;
        self.tokens.push(Token { kind, span });
    }

    fn error_char(&mut self, start: usize, msg: &str) {
        self.pos += 1;
        self.diags.push(Diagnostic::error(
            msg,
            Span::new(start as u32, self.pos as u32),
        ));
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = &self.source[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        match text.parse::<i64>() {
            Ok(n) => self.tokens.push(Token {
                kind: TokenKind::Int(n),
                span,
            }),
            Err(_) => {
                self.diags
                    .push(Diagnostic::error("integer literal too large", span));
                self.tokens.push(Token {
                    kind: TokenKind::Int(0),
                    span,
                });
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let text = &self.source[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.tokens.push(Token { kind, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex(src);
        assert!(!diags.has_errors(), "unexpected lex errors: {diags}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration_keywords() {
        assert_eq!(
            kinds("group contents in g"),
            vec![
                T::Group,
                T::Ident("contents".into()),
                T::In,
                T::Ident("g".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_maps_into_clause() {
        assert_eq!(
            kinds("field vec maps elems into contents"),
            vec![
                T::Field,
                T::Ident("vec".into()),
                T::Maps,
                T::Ident("elems".into()),
                T::Into,
                T::Ident("contents".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_commands_and_operators() {
        assert_eq!(
            kinds("x := new() ; assert n = v.cnt [] skip"),
            vec![
                T::Ident("x".into()),
                T::Assign,
                T::New,
                T::LParen,
                T::RParen,
                T::Semi,
                T::Assert,
                T::Ident("n".into()),
                T::Eq,
                T::Ident("v".into()),
                T::Dot,
                T::Ident("cnt".into()),
                T::Choice,
                T::Skip,
                T::Eof
            ]
        );
    }

    #[test]
    fn double_equals_is_equality() {
        assert_eq!(kinds("a == b"), kinds("a = b"));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("group g // trailing words := ;\nfield f"),
            kinds("group g field f")
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= != !"),
            vec![T::Lt, T::Le, T::Gt, T::Ge, T::Ne, T::Bang, T::Eof]
        );
    }

    #[test]
    fn reports_unknown_characters_but_continues() {
        let (toks, diags) = lex("group § g");
        assert!(diags.has_errors());
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![T::Group, T::Ident("g".into()), T::Eof]);
    }

    #[test]
    fn stray_ampersand_reported() {
        let (_, diags) = lex("a & b");
        assert!(diags.has_errors());
    }

    #[test]
    fn spans_point_at_source() {
        let src = "assert n = v.cnt";
        let (toks, _) = lex(src);
        assert_eq!(toks[0].span.snippet(src), "assert");
        assert_eq!(toks[3].span.snippet(src), "v");
        assert_eq!(toks[5].span.snippet(src), "cnt");
    }

    #[test]
    fn numbers_lex_with_value() {
        assert_eq!(kinds("push(st, 3)")[4], T::Int(3));
        let (_, diags) = lex("99999999999999999999999999");
        assert!(diags.has_errors());
    }
}
