//! Byte-offset source spans and line/column mapping.

use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
///
/// Spans are attached to every token and AST node so that diagnostics can
/// point back at the offending source. The special [`Span::DUMMY`] value is
/// used for synthesised nodes (e.g. desugared `if` commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span for synthesised nodes that have no source location.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end >= start, "span end before start: {start}..{end}");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// A [`Span::DUMMY`] operand is treated as absorbing: joining with it
    /// returns the other span unchanged.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The slice of `source` this span denotes, or `""` when out of range.
    pub fn snippet<'s>(&self, source: &'s str) -> &'s str {
        source
            .get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// One-based line number.
    pub line: u32,
    /// One-based column number (in bytes, not grapheme clusters).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Precomputed line-start table for converting byte offsets to [`LineCol`].
#[derive(Debug, Clone)]
pub struct LineMap {
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds the map by scanning `source` once.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset to a one-based line/column pair.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
        assert_eq!(a.to(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.to(b), b);
    }

    #[test]
    fn snippet_extracts_text() {
        let src = "group value";
        assert_eq!(Span::new(6, 11).snippet(src), "value");
        assert_eq!(Span::new(6, 99).snippet(src), "");
    }

    #[test]
    fn line_map_positions() {
        let src = "ab\ncd\n\nefg";
        let map = LineMap::new(src);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(9), LineCol { line: 4, col: 3 });
    }

    #[test]
    #[should_panic(expected = "span end before start")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 3);
    }
}
