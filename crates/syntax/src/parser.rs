//! Recursive-descent parser for oolong.
//!
//! Grammar (Figures 0 and 1 of the paper, in ASCII concrete syntax):
//!
//! ```text
//! program  ::= decl*
//! decl     ::= "group" ID ("in" idlist)?
//!            | "field" ID ("in" idlist)? ("maps" ID "into" idlist)*
//!            | "proc" ID "(" idlist? ")" ("modifies" exprlist)? ("reads" exprlist)?
//!            | "impl" ID "(" idlist? ")" "{" cmd "}"
//!            | "invariant" expr                                 -- extension
//!            | "module" ID ("imports" idlist)? "{" decl* "}"    -- extension
//! cmd      ::= seq ("[]" seq)*                      -- choice, lowest
//! seq      ::= atom (";" atom)*
//! atom     ::= "assert" expr | "assume" expr | "skip"
//!            | "var" ID ("," ID)* "in" cmd "end"
//!            | "if" expr "then" cmd ("else" cmd)? "end"
//!            | "{" cmd "}"
//!            | ID "(" exprlist? ")"                 -- call
//!            | expr ":=" ("new" "(" ")" | expr)
//! expr     ::= or-expr with usual precedence; postfix ".x" selection
//! ```
//!
//! `var x, y in C end` is sugar for nested `var` commands; an omitted
//! `else` branch defaults to `skip`.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete oolong program.
///
/// # Errors
///
/// Returns the accumulated [`Diagnostics`] if lexing or parsing failed.
pub fn parse_program(source: &str) -> Result<Program, Diagnostics> {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
    };
    let program = parser.program();
    diags.extend(parser.diags);
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(program)
    }
}

/// Parses a single command, for tests and tooling.
///
/// # Errors
///
/// Returns diagnostics if the source is not exactly one command.
pub fn parse_command(source: &str) -> Result<Cmd, Diagnostics> {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
    };
    let cmd = parser.command();
    parser.expect_eof();
    diags.extend(parser.diags);
    match (cmd, diags.has_errors()) {
        (Some(c), false) => Ok(c),
        _ => Err(diags),
    }
}

/// Parses a single expression, for tests and tooling.
///
/// # Errors
///
/// Returns diagnostics if the source is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr, Diagnostics> {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
    };
    let expr = parser.expr();
    parser.expect_eof();
    diags.extend(parser.diags);
    match (expr, diags.has_errors()) {
        (Some(e), false) => Ok(e),
        _ => Err(diags),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> bool {
        if self.eat(kind) {
            true
        } else {
            let found = self.peek().describe();
            self.diags.push(Diagnostic::error(
                format!("expected `{kind}`, found {found}"),
                self.span(),
            ));
            false
        }
    }

    fn expect_eof(&mut self) {
        if !matches!(self.peek(), TokenKind::Eof) {
            let found = self.peek().describe();
            self.diags.push(Diagnostic::error(
                format!("expected end of input, found {found}"),
                self.span(),
            ));
        }
    }

    fn ident(&mut self) -> Option<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(text) => {
                let span = self.span();
                self.bump();
                Some(Ident { text, span })
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected identifier, found {}", other.describe()),
                    self.span(),
                ));
                None
            }
        }
    }

    fn ident_list(&mut self) -> Vec<Ident> {
        let mut ids = Vec::new();
        if let Some(id) = self.ident() {
            ids.push(id);
        }
        while self.eat(&TokenKind::Comma) {
            if let Some(id) = self.ident() {
                ids.push(id);
            }
        }
        ids
    }

    // ---------------------------------------------------------------- decls

    fn program(&mut self) -> Program {
        Program {
            decls: self.decl_list(true),
        }
    }

    /// Parses declarations until EOF (`top_level`) or a closing brace.
    fn decl_list(&mut self, top_level: bool) -> Vec<Decl> {
        let mut decls = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::RBrace if !top_level => break,
                TokenKind::Group => {
                    if let Some(d) = self.group_decl() {
                        decls.push(Decl::Group(d));
                    }
                }
                TokenKind::Field => {
                    if let Some(d) = self.field_decl() {
                        decls.push(Decl::Field(d));
                    }
                }
                TokenKind::Proc => {
                    if let Some(d) = self.proc_decl() {
                        decls.push(Decl::Proc(d));
                    }
                }
                TokenKind::Impl => {
                    if let Some(d) = self.impl_decl() {
                        decls.push(Decl::Impl(d));
                    }
                }
                TokenKind::Invariant => {
                    if let Some(d) = self.invariant_decl() {
                        decls.push(Decl::Invariant(d));
                    }
                }
                TokenKind::Module => {
                    if let Some(d) = self.module_decl() {
                        decls.push(Decl::Module(d));
                    }
                }
                other => {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "expected a declaration (`group`, `field`, `proc`, `impl`, `invariant`, or `module`), found {}",
                            other.describe()
                        ),
                        self.span(),
                    ));
                    self.bump();
                    self.recover_to_decl();
                }
            }
        }
        decls
    }

    fn module_decl(&mut self) -> Option<ModuleDecl> {
        let start = self.span();
        self.expect(&TokenKind::Module);
        let name = self.ident()?;
        let imports = if self.eat(&TokenKind::Imports) {
            self.ident_list()
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::LBrace);
        let decls = self.decl_list(false);
        self.expect(&TokenKind::RBrace);
        Some(ModuleDecl {
            name,
            imports,
            decls,
            span: start.to(self.prev_span()),
        })
    }

    /// Skips tokens until the next declaration keyword or EOF, for error
    /// recovery.
    fn recover_to_decl(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof
                | TokenKind::Group
                | TokenKind::Field
                | TokenKind::Proc
                | TokenKind::Impl
                | TokenKind::Invariant
                | TokenKind::Module
                | TokenKind::RBrace => break,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn group_decl(&mut self) -> Option<GroupDecl> {
        let start = self.span();
        self.expect(&TokenKind::Group);
        let name = self.ident()?;
        let includes = if self.eat(&TokenKind::In) {
            self.ident_list()
        } else {
            Vec::new()
        };
        Some(GroupDecl {
            name,
            includes,
            span: start.to(self.prev_span()),
        })
    }

    fn field_decl(&mut self) -> Option<FieldDecl> {
        let start = self.span();
        self.expect(&TokenKind::Field);
        let name = self.ident()?;
        let includes = if self.eat(&TokenKind::In) {
            self.ident_list()
        } else {
            Vec::new()
        };
        let mut maps = Vec::new();
        while self.peek() == &TokenKind::Maps {
            let clause_start = self.span();
            self.bump();
            let elementwise = self.eat(&TokenKind::Elem);
            let mapped = self.ident()?;
            self.expect(&TokenKind::Into);
            let into = self.ident_list();
            maps.push(MapsClause {
                mapped,
                into,
                elementwise,
                span: clause_start.to(self.prev_span()),
            });
        }
        Some(FieldDecl {
            name,
            includes,
            maps,
            span: start.to(self.prev_span()),
        })
    }

    fn param_list(&mut self) -> Vec<Ident> {
        let mut params = Vec::new();
        self.expect(&TokenKind::LParen);
        if self.peek() != &TokenKind::RParen {
            params = self.ident_list();
        }
        self.expect(&TokenKind::RParen);
        params
    }

    fn proc_decl(&mut self) -> Option<ProcDecl> {
        let start = self.span();
        self.expect(&TokenKind::Proc);
        let name = self.ident()?;
        let params = self.param_list();
        let mut modifies = Vec::new();
        if self.eat(&TokenKind::Modifies) {
            if let Some(e) = self.expr() {
                modifies.push(e);
            }
            while self.eat(&TokenKind::Comma) {
                if let Some(e) = self.expr() {
                    modifies.push(e);
                }
            }
        }
        let reads = if self.eat(&TokenKind::Reads) {
            let mut entries = Vec::new();
            if let Some(e) = self.expr() {
                entries.push(e);
            }
            while self.eat(&TokenKind::Comma) {
                if let Some(e) = self.expr() {
                    entries.push(e);
                }
            }
            Some(entries)
        } else {
            None
        };
        Some(ProcDecl {
            name,
            params,
            modifies,
            reads,
            span: start.to(self.prev_span()),
        })
    }

    fn invariant_decl(&mut self) -> Option<InvariantDecl> {
        let start = self.span();
        self.expect(&TokenKind::Invariant);
        let expr = self.expr()?;
        Some(InvariantDecl {
            expr,
            span: start.to(self.prev_span()),
        })
    }

    fn impl_decl(&mut self) -> Option<ImplDecl> {
        let start = self.span();
        self.expect(&TokenKind::Impl);
        let name = self.ident()?;
        let params = self.param_list();
        self.expect(&TokenKind::LBrace);
        let body = self.command().unwrap_or(Cmd::Skip(self.span()));
        self.expect(&TokenKind::RBrace);
        Some(ImplDecl {
            name,
            params,
            body,
            span: start.to(self.prev_span()),
        })
    }

    // ------------------------------------------------------------- commands

    fn command(&mut self) -> Option<Cmd> {
        let mut lhs = self.seq_command()?;
        while self.eat(&TokenKind::Choice) {
            let rhs = self.seq_command()?;
            lhs = Cmd::Choice(Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn seq_command(&mut self) -> Option<Cmd> {
        let mut lhs = self.atom_command()?;
        while self.eat(&TokenKind::Semi) {
            let rhs = self.atom_command()?;
            lhs = Cmd::Seq(Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn atom_command(&mut self) -> Option<Cmd> {
        let start = self.span();
        match self.peek() {
            TokenKind::Assert => {
                self.bump();
                let e = self.expr()?;
                Some(Cmd::Assert(e, start.to(self.prev_span())))
            }
            TokenKind::Assume => {
                self.bump();
                let e = self.expr()?;
                Some(Cmd::Assume(e, start.to(self.prev_span())))
            }
            TokenKind::Skip => {
                self.bump();
                Some(Cmd::Skip(start))
            }
            TokenKind::Var => {
                self.bump();
                let names = self.ident_list();
                self.expect(&TokenKind::In);
                let body = self.command()?;
                self.expect(&TokenKind::End);
                let span = start.to(self.prev_span());
                // var x, y in C end  ==>  var x in var y in C end end
                let mut cmd = body;
                for name in names.into_iter().rev() {
                    cmd = Cmd::Var(name, Box::new(cmd), span);
                }
                Some(cmd)
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Then);
                let then_branch = self.command()?;
                let else_branch = if self.eat(&TokenKind::Else) {
                    self.command()?
                } else {
                    Cmd::Skip(self.span())
                };
                self.expect(&TokenKind::End);
                Some(Cmd::If {
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::LBrace => {
                self.bump();
                let inner = self.command()?;
                self.expect(&TokenKind::RBrace);
                Some(inner)
            }
            TokenKind::Ident(_) if self.peek2() == &TokenKind::LParen => {
                // Procedure call.
                let proc = self.ident()?;
                self.expect(&TokenKind::LParen);
                let mut args = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    if let Some(e) = self.expr() {
                        args.push(e);
                    }
                    while self.eat(&TokenKind::Comma) {
                        if let Some(e) = self.expr() {
                            args.push(e);
                        }
                    }
                }
                self.expect(&TokenKind::RParen);
                Some(Cmd::Call {
                    proc,
                    args,
                    span: start.to(self.prev_span()),
                })
            }
            _ => {
                // Assignment: expr := (new() | expr)
                let lhs = self.expr()?;
                self.expect(&TokenKind::Assign);
                if self.peek() == &TokenKind::New {
                    self.bump();
                    self.expect(&TokenKind::LParen);
                    self.expect(&TokenKind::RParen);
                    Some(Cmd::AssignNew {
                        lhs,
                        span: start.to(self.prev_span()),
                    })
                } else {
                    let rhs = self.expr()?;
                    Some(Cmd::Assign {
                        lhs,
                        rhs,
                        span: start.to(self.prev_span()),
                    })
                }
            }
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Option<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn cmp_expr(&mut self) -> Option<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Some(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        Some(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        while self.eat(&TokenKind::Star) {
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        let start = self.span();
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span());
                Some(Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span());
                Some(Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let attr = self.ident()?;
                let span = e.span().to(attr.span);
                e = Expr::Select {
                    base: Box::new(e),
                    attr,
                    span,
                };
            } else if self.eat(&TokenKind::LBracket) {
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket);
                let span = e.span().to(self.prev_span());
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    span,
                };
            } else {
                break;
            }
        }
        Some(e)
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Null => {
                self.bump();
                Some(Expr::Const(Const::Null, span))
            }
            TokenKind::True => {
                self.bump();
                Some(Expr::Const(Const::Bool(true), span))
            }
            TokenKind::False => {
                self.bump();
                Some(Expr::Const(Const::Bool(false), span))
            }
            TokenKind::Int(n) => {
                self.bump();
                Some(Expr::Const(Const::Int(n), span))
            }
            TokenKind::Ident(text) => {
                self.bump();
                Some(Expr::Id(Ident { text, span }))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen);
                Some(inner)
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected an expression, found {}", other.describe()),
                    span,
                ));
                self.bump();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rational_library_interface() {
        let prog = parse_program(
            "group value
             proc normalize(r) modifies r.value
             field num in value
             field den in value",
        )
        .expect("parses");
        assert_eq!(prog.decls.len(), 4);
        let p = prog.procs().next().unwrap();
        assert_eq!(p.name.text, "normalize");
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.modifies.len(), 1);
        let (root, path) = p.modifies[0].as_designator_chain().unwrap();
        assert_eq!(root.text, "r");
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].text, "value");
    }

    #[test]
    fn parses_pivot_field_declaration() {
        let prog = parse_program("field vec maps elems into contents").expect("parses");
        let f = prog.fields().next().unwrap();
        assert!(f.is_pivot());
        assert_eq!(f.maps[0].mapped.text, "elems");
        assert_eq!(f.maps[0].into[0].text, "contents");
    }

    #[test]
    fn parses_field_with_in_and_multiple_maps() {
        let prog = parse_program("field f in a, b maps x into g maps y into h, k").expect("parses");
        let f = prog.fields().next().unwrap();
        assert_eq!(f.includes.len(), 2);
        assert_eq!(f.maps.len(), 2);
        assert_eq!(f.maps[1].into.len(), 2);
    }

    #[test]
    fn parses_section3_q_implementation() {
        let prog = parse_program(
            "group contents
             field cnt
             field obj
             proc push(st, o) modifies st.contents
             proc m(st, r) modifies r.obj
             proc q()
             impl q() {
               var st, result, v, n in
                 st := new() ;
                 result := new() ;
                 m(st, result) ;
                 v := result.obj ;
                 n := v.cnt ;
                 push(st, 3) ;
                 assert n = v.cnt
               end
             }",
        )
        .expect("parses");
        let q = prog.impls().next().unwrap();
        assert_eq!(q.name.text, "q");
        // Four nested vars from the multi-var sugar.
        let mut vars = 0;
        q.body.walk(&mut |c| {
            if matches!(c, Cmd::Var(..)) {
                vars += 1;
            }
        });
        assert_eq!(vars, 4);
    }

    #[test]
    fn seq_binds_tighter_than_choice() {
        let cmd = parse_command("skip ; skip [] skip").expect("parses");
        assert!(matches!(cmd, Cmd::Choice(a, _) if matches!(*a, Cmd::Seq(..))));
    }

    #[test]
    fn choice_and_seq_are_left_associative() {
        let c = parse_command("skip [] skip [] skip").expect("parses");
        assert!(matches!(c, Cmd::Choice(a, _) if matches!(*a, Cmd::Choice(..))));
        let s = parse_command("skip ; skip ; skip").expect("parses");
        assert!(matches!(s, Cmd::Seq(a, _) if matches!(*a, Cmd::Seq(..))));
    }

    #[test]
    fn braces_group_commands() {
        let cmd = parse_command("skip ; { skip [] skip }").expect("parses");
        assert!(matches!(cmd, Cmd::Seq(_, b) if matches!(*b, Cmd::Choice(..))));
    }

    #[test]
    fn parses_if_with_and_without_else() {
        let c = parse_command("if x = null then skip else assert false end").expect("parses");
        assert!(matches!(c, Cmd::If { .. }));
        let c2 = parse_command("if x = null then skip end").expect("parses");
        match c2 {
            Cmd::If { else_branch, .. } => assert!(matches!(*else_branch, Cmd::Skip(_))),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_allocation_and_field_update() {
        let c = parse_command("st.vec := new()").expect("parses");
        assert!(matches!(c, Cmd::AssignNew { .. }));
        let c2 = parse_command("t.value := t.value + 1").expect("parses");
        match c2 {
            Cmd::Assign { rhs, .. } => assert!(matches!(rhs, Expr::Binary { op: BinOp::Add, .. })),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn call_versus_assignment_disambiguation() {
        assert!(matches!(
            parse_command("push(st, 3)").unwrap(),
            Cmd::Call { .. }
        ));
        assert!(matches!(
            parse_command("x := y").unwrap(),
            Cmd::Assign { .. }
        ));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * c = d && e != f || g").expect("parses");
        // ((a + (b*c)) = d) && (e != f) || g  with || lowest
        match e {
            Expr::Binary {
                op: BinOp::Or, lhs, ..
            } => match *lhs {
                Expr::Binary {
                    op: BinOp::And,
                    lhs: l2,
                    ..
                } => match *l2 {
                    Expr::Binary {
                        op: BinOp::Eq,
                        lhs: l3,
                        ..
                    } => {
                        assert!(matches!(*l3, Expr::Binary { op: BinOp::Add, .. }));
                    }
                    other => panic!("expected =, got {other:?}"),
                },
                other => panic!("expected &&, got {other:?}"),
            },
            other => panic!("expected ||, got {other:?}"),
        }
    }

    #[test]
    fn selection_chains_left_to_right() {
        let e = parse_expr("t.c.d.g").expect("parses");
        let (root, path) = e.as_designator_chain().unwrap();
        assert_eq!(root.text, "t");
        let names: Vec<_> = path.iter().map(|i| i.text.as_str()).collect();
        assert_eq!(names, vec!["c", "d", "g"]);
    }

    #[test]
    fn unary_operators_nest() {
        let e = parse_expr("!!x").expect("parses");
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        let e2 = parse_expr("-x.f").expect("parses");
        match e2 {
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
                ..
            } => {
                assert!(matches!(*operand, Expr::Select { .. }));
            }
            other => panic!("expected neg, got {other:?}"),
        }
    }

    #[test]
    fn parses_index_expressions() {
        let e = parse_expr("t.buckets[i + 1]").expect("parses");
        match e {
            Expr::Index { base, index, .. } => {
                assert!(matches!(*base, Expr::Select { .. }));
                assert!(matches!(*index, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("expected index, got {other:?}"),
        }
        // Chained postfix: a[0].f[1]
        let e2 = parse_expr("a[0].f[1]").expect("parses");
        assert!(matches!(e2, Expr::Index { .. }));
    }

    #[test]
    fn parses_slot_assignment_and_allocation() {
        assert!(matches!(
            parse_command("a[0] := null").unwrap(),
            Cmd::Assign { .. }
        ));
        assert!(matches!(
            parse_command("t.buckets[i] := new()").unwrap(),
            Cmd::AssignNew { .. }
        ));
    }

    #[test]
    fn parses_elementwise_maps_clause() {
        let prog = parse_program("group g field buckets maps elem g into g").expect("parses");
        let f = prog.fields().next().unwrap();
        assert!(f.maps[0].elementwise);
        assert!(f.is_pivot());
    }

    #[test]
    fn choice_still_lexes_next_to_brackets() {
        // `[]` must stay the choice token; `[ ]` with content is indexing.
        assert!(matches!(
            parse_command("skip [] skip").unwrap(),
            Cmd::Choice(..)
        ));
        assert!(
            parse_expr("a[]").is_err(),
            "empty index is not an expression"
        );
    }

    #[test]
    fn error_on_missing_assign_target() {
        assert!(parse_command("x :=").is_err());
        assert!(parse_command(":= x").is_err());
    }

    #[test]
    fn error_on_garbage_declaration_recovers() {
        let err = parse_program("banana split group g").unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn empty_program_is_valid() {
        let prog = parse_program("").expect("parses");
        assert!(prog.decls.is_empty());
    }

    #[test]
    fn proc_with_empty_modifies_and_params() {
        let prog = parse_program("proc q()").expect("parses");
        let p = prog.procs().next().unwrap();
        assert!(p.params.is_empty());
        assert!(p.modifies.is_empty());
        assert!(p.reads.is_none());
    }

    #[test]
    fn parses_reads_clause() {
        let prog = parse_program(
            "group value
             proc peek(r) reads r.value
             proc both(r, s) modifies r.value reads r.value, s.value",
        )
        .expect("parses");
        let procs: Vec<_> = prog.procs().collect();
        assert_eq!(procs[0].modifies.len(), 0);
        let reads = procs[0].reads.as_ref().expect("reads clause present");
        assert_eq!(reads.len(), 1);
        let (root, path) = reads[0].as_designator_chain().unwrap();
        assert_eq!(root.text, "r");
        assert_eq!(path[0].text, "value");
        let both = procs[1].reads.as_ref().expect("reads clause present");
        assert_eq!(both.len(), 2);
        assert_eq!(procs[1].modifies.len(), 1);
    }

    #[test]
    fn parses_invariant_declaration() {
        let prog = parse_program(
            "group value
             field num in value
             invariant this.num >= 0",
        )
        .expect("parses");
        let inv = prog.invariants().next().expect("invariant present");
        assert!(matches!(inv.expr, Expr::Binary { op: BinOp::Ge, .. }));
    }

    #[test]
    fn malformed_invariant_reports_span_and_recovers() {
        // `invariant` with no expression: the error points at the
        // offending token, and parsing recovers at the next declaration.
        let src = "invariant ; group g";
        let err = parse_program(src).unwrap_err();
        let diag = err.iter().next().expect("has a diagnostic");
        assert!(
            diag.message.contains("expected an expression"),
            "message: {}",
            diag.message
        );
        assert_eq!(diag.span.snippet(src), ";");
    }

    #[test]
    fn malformed_reads_clause_reports_span() {
        let src = "proc p(t) reads , t.g";
        let err = parse_program(src).unwrap_err();
        let diag = err.iter().next().expect("has a diagnostic");
        assert!(diag.message.contains("expected an expression"));
        assert_eq!(diag.span.snippet(src), ",");
    }
}
