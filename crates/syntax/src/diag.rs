//! Diagnostics: structured errors and warnings with source spans.

use crate::span::{LineMap, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// The input is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message anchored at a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the message.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary notes, e.g. "previous declaration here".
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note, returning `self` for chaining.
    #[must_use]
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic against `source` with line/column positions.
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let mut out = format!(
            "{}: {} at {}",
            self.severity,
            self.message,
            map.line_col(self.span.start)
        );
        let snip = self.span.snippet(source);
        if !snip.is_empty() {
            out.push_str(&format!(" `{}`", snip.trim()));
        }
        for (msg, span) in &self.notes {
            out.push_str(&format!(
                "\n  note: {} at {}",
                msg,
                map.line_col(span.start)
            ));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {}", self.severity, self.message, self.span)
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics produced by a compiler phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.items.push(diag);
    }

    /// Appends an error with the given message and span.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Appends a warning with the given message and span.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the recorded diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Consumes the collection, yielding the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Renders all diagnostics against `source`, one per line.
    pub fn render(&self, source: &str) -> String {
        self.items
            .iter()
            .map(|d| d.render(source))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return write!(f, "no diagnostics");
        }
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_detection() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.warning("odd spacing", Span::new(0, 1));
        assert!(!ds.has_errors());
        ds.error("undeclared attribute", Span::new(2, 5));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_includes_position_and_snippet() {
        let src = "group g\nfield f in zzz";
        let d = Diagnostic::error("undeclared group", Span::new(19, 22))
            .with_note("field declared here", Span::new(8, 13));
        let rendered = d.render(src);
        assert!(
            rendered.contains("error: undeclared group at 2:12"),
            "{rendered}"
        );
        assert!(rendered.contains("`zzz`"), "{rendered}");
        assert!(
            rendered.contains("note: field declared here at 2:1"),
            "{rendered}"
        );
    }

    #[test]
    fn display_is_never_empty() {
        let ds = Diagnostics::new();
        assert_eq!(ds.to_string(), "no diagnostics");
    }
}
