//! Token definitions for the oolong lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    // Literals and identifiers
    /// An identifier such as `contents` or `push`.
    Ident(String),
    /// An unsigned integer literal.
    Int(i64),

    // Keywords
    /// `group`
    Group,
    /// `field`
    Field,
    /// `proc`
    Proc,
    /// `impl`
    Impl,
    /// `module` (extension: explicit information-hiding modules)
    Module,
    /// `imports` (extension)
    Imports,
    /// `in`
    In,
    /// `maps`
    Maps,
    /// `into`
    Into,
    /// `elem` (extension: elementwise/array rep inclusions)
    Elem,
    /// `modifies`
    Modifies,
    /// `reads` (extension: declared read frames)
    Reads,
    /// `invariant` (extension: object invariants over data groups)
    Invariant,
    /// `assert`
    Assert,
    /// `assume`
    Assume,
    /// `var`
    Var,
    /// `end`
    End,
    /// `skip`
    Skip,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `new`
    New,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `[]` — nondeterministic choice
    Choice,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=` or `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Looks up a keyword, returning `None` for ordinary identifiers.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "group" => TokenKind::Group,
            "field" => TokenKind::Field,
            "proc" => TokenKind::Proc,
            "impl" => TokenKind::Impl,
            "module" => TokenKind::Module,
            "imports" => TokenKind::Imports,
            "in" => TokenKind::In,
            "maps" => TokenKind::Maps,
            "into" => TokenKind::Into,
            "elem" => TokenKind::Elem,
            "modifies" => TokenKind::Modifies,
            "reads" => TokenKind::Reads,
            "invariant" => TokenKind::Invariant,
            "assert" => TokenKind::Assert,
            "assume" => TokenKind::Assume,
            "var" => TokenKind::Var,
            "end" => TokenKind::End,
            "skip" => TokenKind::Skip,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "new" => TokenKind::New,
            "null" => TokenKind::Null,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            _ => return None,
        })
    }

    /// A short human-readable description, used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Group => "group",
            TokenKind::Field => "field",
            TokenKind::Proc => "proc",
            TokenKind::Impl => "impl",
            TokenKind::Module => "module",
            TokenKind::Imports => "imports",
            TokenKind::In => "in",
            TokenKind::Maps => "maps",
            TokenKind::Into => "into",
            TokenKind::Elem => "elem",
            TokenKind::Modifies => "modifies",
            TokenKind::Reads => "reads",
            TokenKind::Invariant => "invariant",
            TokenKind::Assert => "assert",
            TokenKind::Assume => "assume",
            TokenKind::Var => "var",
            TokenKind::End => "end",
            TokenKind::Skip => "skip",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::New => "new",
            TokenKind::Null => "null",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Dot => ".",
            TokenKind::Assign => ":=",
            TokenKind::Choice => "[]",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Eq => "=",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it occurred in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip_through_display() {
        for kw in ["group", "field", "proc", "impl", "modifies", "maps", "into"] {
            let tok = TokenKind::keyword(kw).expect("is a keyword");
            assert_eq!(tok.to_string(), kw);
        }
        assert_eq!(TokenKind::keyword("stack"), None);
    }

    #[test]
    fn describe_quotes_symbols() {
        assert_eq!(TokenKind::Assign.describe(), "`:=`");
        assert_eq!(
            TokenKind::Ident("vec".into()).describe(),
            "identifier `vec`"
        );
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
