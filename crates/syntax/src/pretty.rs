//! Pretty-printer producing canonical oolong concrete syntax.
//!
//! The output of [`print_program`] re-parses to an equal AST (modulo spans);
//! this round-trip property is exercised both by unit tests here and by
//! property tests in the workspace test suite.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, decl) in program.decls.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_decl(decl));
    }
    out
}

/// Pretty-prints a single declaration.
pub fn print_decl(decl: &Decl) -> String {
    let mut out = String::new();
    match decl {
        Decl::Group(g) => {
            let _ = write!(out, "group {}", g.name);
            if !g.includes.is_empty() {
                let _ = write!(out, " in {}", comma(&g.includes));
            }
        }
        Decl::Field(f) => {
            let _ = write!(out, "field {}", f.name);
            if !f.includes.is_empty() {
                let _ = write!(out, " in {}", comma(&f.includes));
            }
            for m in &f.maps {
                let kw = if m.elementwise { "maps elem" } else { "maps" };
                let _ = write!(out, " {kw} {} into {}", m.mapped, comma(&m.into));
            }
        }
        Decl::Proc(p) => {
            let _ = write!(out, "proc {}({})", p.name, comma(&p.params));
            if !p.modifies.is_empty() {
                let targets: Vec<String> = p.modifies.iter().map(print_expr).collect();
                let _ = write!(out, " modifies {}", targets.join(", "));
            }
            if let Some(reads) = &p.reads {
                let targets: Vec<String> = reads.iter().map(print_expr).collect();
                let _ = write!(out, " reads {}", targets.join(", "));
            }
        }
        Decl::Invariant(v) => {
            let _ = write!(out, "invariant {}", print_expr(&v.expr));
        }
        Decl::Impl(i) => {
            let _ = writeln!(out, "impl {}({}) {{", i.name, comma(&i.params));
            print_cmd_indented(&i.body, 1, &mut out);
            out.push_str("\n}");
        }
        Decl::Module(m) => {
            let _ = write!(out, "module {}", m.name);
            if !m.imports.is_empty() {
                let _ = write!(out, " imports {}", comma(&m.imports));
            }
            out.push_str(" {\n");
            for (i, d) in m.decls.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&print_decl(d));
            }
            out.push_str("\n}");
        }
    }
    out
}

fn comma(ids: &[Ident]) -> String {
    ids.iter()
        .map(|i| i.text.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_cmd_indented(cmd: &Cmd, level: usize, out: &mut String) {
    match cmd {
        Cmd::Seq(a, b) => {
            print_cmd_indented(a, level, out);
            out.push_str(" ;\n");
            print_cmd_indented(b, level, out);
        }
        Cmd::Choice(a, b) => {
            // The whole choice is wrapped in braces: `[]` binds looser
            // than `;`, so an unbraced choice inside a sequence would
            // re-associate on reparse.
            indent(level, out);
            out.push_str("{\n");
            indent(level + 1, out);
            out.push_str("{\n");
            print_cmd_indented(a, level + 2, out);
            out.push('\n');
            indent(level + 1, out);
            out.push_str("} [] {\n");
            print_cmd_indented(b, level + 2, out);
            out.push('\n');
            indent(level + 1, out);
            out.push_str("}\n");
            indent(level, out);
            out.push('}');
        }
        Cmd::Var(x, body, _) => {
            indent(level, out);
            let _ = writeln!(out, "var {x} in");
            print_cmd_indented(body, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push_str("end");
        }
        Cmd::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(level, out);
            let _ = writeln!(out, "if {} then", print_expr(cond));
            print_cmd_indented(then_branch, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push_str("else\n");
            print_cmd_indented(else_branch, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push_str("end");
        }
        Cmd::Assert(e, _) => {
            indent(level, out);
            let _ = write!(out, "assert {}", print_expr(e));
        }
        Cmd::Assume(e, _) => {
            indent(level, out);
            let _ = write!(out, "assume {}", print_expr(e));
        }
        Cmd::Assign { lhs, rhs, .. } => {
            indent(level, out);
            let _ = write!(out, "{} := {}", print_expr(lhs), print_expr(rhs));
        }
        Cmd::AssignNew { lhs, .. } => {
            indent(level, out);
            let _ = write!(out, "{} := new()", print_expr(lhs));
        }
        Cmd::Call { proc, args, .. } => {
            indent(level, out);
            let args: Vec<String> = args.iter().map(print_expr).collect();
            let _ = write!(out, "{}({})", proc, args.join(", "));
        }
        Cmd::Skip(_) => {
            indent(level, out);
            out.push_str("skip");
        }
    }
}

/// Pretty-prints a command (single line indentation starts at zero).
pub fn print_cmd(cmd: &Cmd) -> String {
    let mut out = String::new();
    print_cmd_indented(cmd, 0, &mut out);
    out
}

/// Binding strength for parenthesisation decisions.
fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul => 5,
    }
}

/// Pretty-prints an expression with minimal parentheses.
pub fn print_expr(expr: &Expr) -> String {
    print_expr_prec(expr, 0)
}

fn print_expr_prec(expr: &Expr, min_prec: u8) -> String {
    match expr {
        Expr::Const(c, _) => c.to_string(),
        Expr::Id(id) => id.text.clone(),
        Expr::Select { base, attr, .. } => {
            format!("{}.{}", print_expr_prec(base, 7), attr)
        }
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", print_expr_prec(base, 7), print_expr(index))
        }
        Expr::Unary { op, operand, .. } => {
            format!("{}{}", op, print_expr_prec(operand, 6))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = bin_prec(*op);
            // Comparisons are non-associative; arithmetic and logical
            // operators are printed left-associatively.
            let (lmin, rmin) = if prec == 3 {
                (prec + 1, prec + 1)
            } else {
                (prec, prec + 1)
            };
            let s = format!(
                "{} {} {}",
                print_expr_prec(lhs, lmin),
                op,
                print_expr_prec(rhs, rmin)
            );
            if prec < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_command, parse_expr, parse_program};

    /// Spans differ after a round-trip; compare via a second print instead.
    fn roundtrip_program(src: &str) {
        let p1 = parse_program(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 =
            parse_program(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(print_program(&p2), printed, "printing is not a fixpoint");
    }

    #[test]
    fn roundtrips_declarations() {
        roundtrip_program(
            "group contents
             group value in contents
             field cnt in value
             field vec in value maps cnt into contents maps value into contents
             proc push(st, o) modifies st.contents
             proc q()",
        );
    }

    #[test]
    fn roundtrips_implementation() {
        roundtrip_program(
            "proc w(st, v) modifies st.contents
             group contents
             field cnt
             proc push(st, o) modifies st.contents
             impl w(st, v) {
               var n in n := v.cnt ; push(st, 3) ; assert n = v.cnt end
             }",
        );
    }

    #[test]
    fn expression_printing_minimises_parens() {
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e2 = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e2), "a + b * c");
        let e3 = parse_expr("a = b && c = d").unwrap();
        assert_eq!(print_expr(&e3), "a = b && c = d");
    }

    #[test]
    fn printed_choice_preserves_structure() {
        let c = parse_command("skip ; skip [] assert true").unwrap();
        let printed = print_cmd(&c);
        let c2 = parse_command(&printed).expect("reparse");
        assert_eq!(print_cmd(&c2), printed);
        assert!(matches!(c2, Cmd::Choice(..)));
    }

    #[test]
    fn if_prints_and_reparses() {
        let c = parse_command("if x = null then skip else x.f := 1 end").unwrap();
        let printed = print_cmd(&c);
        assert!(printed.contains("if x = null then"));
        let c2 = parse_command(&printed).expect("reparse");
        assert!(matches!(c2, Cmd::If { .. }));
    }

    #[test]
    fn arrays_roundtrip() {
        roundtrip_program(
            "group state
             field buckets in state maps elem state into state
             proc p(t) modifies t.state
             impl p(t) { t.buckets := new() ; t.buckets[0] := new() ; t.buckets[1] := null }",
        );
        let e = parse_expr("a[i + 1].f").unwrap();
        assert_eq!(print_expr(&e), "a[i + 1].f");
    }

    #[test]
    fn invariants_and_reads_roundtrip() {
        roundtrip_program(
            "group value
             field num in value
             invariant this.num >= 0
             proc peek(r) reads r.value
             proc bump(r) modifies r.value reads r.value",
        );
        // `reads` with a single entry survives the trip distinctly from no
        // clause at all.
        let p = parse_program("proc peek(r) reads r.value").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("reads r.value"), "{printed}");
        let p2 = parse_program(&printed).unwrap();
        assert!(p2.procs().next().unwrap().reads.is_some());
    }

    #[test]
    fn modules_roundtrip() {
        roundtrip_program(
            "module a { group g field f in g }
             module b imports a {
               proc p(t) modifies t.g
               impl p(t) { t.f := 1 }
             }
             group top",
        );
    }

    #[test]
    fn selection_binds_tightest() {
        let e = parse_expr("t.value + 1").unwrap();
        assert_eq!(print_expr(&e), "t.value + 1");
        let neg = parse_expr("!x.f").unwrap();
        assert_eq!(print_expr(&neg), "!x.f");
    }
}
