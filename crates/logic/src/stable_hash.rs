//! A stable structural hasher for fingerprinting logical content.
//!
//! The incremental engine keys its verdict cache by a *content address*: a
//! structural hash over a verification condition's clausified formulas, the
//! background-axiom set of its scope, and the prover budget. That hash must
//! be reproducible across processes and machines, so neither
//! `DefaultHasher` (randomly keyed SipHash in other std configurations)
//! nor anything endianness-dependent will do.
//!
//! [`StableHasher`] implements [`std::hash::Hasher`] as a pair of
//! independent FNV-1a streams with distinct offset bases, giving a 128-bit
//! digest with negligible collision probability at cache scale. Every
//! integer write is routed through little-endian byte encoding so the
//! digest is identical on every platform.

use std::hash::{Hash, Hasher};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// A second, unrelated offset basis (digits of π) decorrelates the streams.
const OFFSET_B: u64 = 0x2436_a4b1_0a3d_70a3;

/// A deterministic, platform-stable 128-bit structural hasher.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> StableHasher {
        StableHasher {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    /// The full 128-bit digest.
    pub fn finish128(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.a
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
    }

    // Route every integer write through little-endian bytes: the default
    // implementations use native endianness, which would make digests
    // differ between platforms.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        // Fixed width regardless of the platform's pointer size.
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// The stable 128-bit structural hash of any `Hash` value (terms, formulas,
/// budgets, or tuples/slices thereof).
pub fn stable_hash128<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Formula, Term};

    #[test]
    fn equal_formulas_hash_equal() {
        let f = || Formula::eq(Term::var("a"), Term::uninterp("f", vec![Term::var("b")]));
        assert_eq!(stable_hash128(&f()), stable_hash128(&f()));
    }

    #[test]
    fn distinct_structure_hashes_distinct() {
        let f = Formula::eq(Term::var("a"), Term::var("b"));
        let g = Formula::eq(Term::var("b"), Term::var("a"));
        assert_ne!(stable_hash128(&f), stable_hash128(&g));
        assert_ne!(
            stable_hash128(&Term::var("x")),
            stable_hash128(&Term::attr("x"))
        );
    }

    /// Digest of `42u64`, locked in when the algorithm was written.
    const KNOWN_42_U64: u128 = {
        // Reimplementation of the two FNV-1a streams over the 8
        // little-endian bytes of 42u64, evaluated at compile time.
        let bytes = 42u64.to_le_bytes();
        let mut a = OFFSET_A;
        let mut b = OFFSET_B;
        let mut i = 0;
        while i < 8 {
            a = (a ^ bytes[i] as u64).wrapping_mul(FNV_PRIME);
            b = (b ^ (bytes[i] as u64).rotate_left(17)).wrapping_mul(FNV_PRIME);
            i += 1;
        }
        ((a as u128) << 64) | b as u128
    };

    #[test]
    fn digest_matches_independent_reimplementation() {
        // Guards against accidental algorithm changes: a changed digest
        // silently invalidates every on-disk cache in the wild.
        assert_eq!(stable_hash128(&42u64), KNOWN_42_U64);
    }
}
