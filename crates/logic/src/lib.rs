//! The object-store logic of Section 4 of
//!
//! > K. R. M. Leino, A. Poetzsch-Heffter, Y. Zhou.
//! > *Using Data Groups to Specify and Check Side Effects.* PLDI 2002.
//!
//! Terms ([`Term`]) cover the store operations `S(X·A)` (select),
//! `S(X·A := V)` (update), `new(S)`, and `S⁺`, plus integers and attribute
//! constants. Atoms ([`Atom`]) cover equality, `alive`, the local
//! inclusion relation `⊒`, the rep inclusion relation `→f`, and the main
//! location-inclusion relation `≽`. Formulas ([`Formula`]) add the usual
//! connectives and quantifiers with Simplify-style matching triggers.
//!
//! [`transform::to_nnf`] converts formulas to the skolemized negation
//! normal form ([`transform::Nnf`]) consumed by the `oolong-prover` crate.
//!
//! # Example
//!
//! ```
//! use oolong_logic::{Atom, Formula, Term};
//!
//! // $ ⊨ st·contents ≽ v·cnt
//! let inc = Formula::Atom(Atom::Inc {
//!     store: Term::store(),
//!     obj: Term::var("st"),
//!     attr: Term::attr("contents"),
//!     obj2: Term::var("v"),
//!     attr2: Term::attr("cnt"),
//! });
//! assert_eq!(inc.to_string(), "$ ⊨ st·#contents ≽ v·#cnt");
//! ```

pub mod formula;
pub mod intern;
pub mod policy;
pub mod stable_hash;
pub mod term;
pub mod transform;

pub use formula::{Atom, Formula, Pattern, Trigger};
pub use intern::Symbol;
pub use policy::{PatternPolicy, Phase};
pub use stable_hash::{stable_hash128, StableHasher};
pub use term::{Cst, FnSym, Term, TermNode, STORE, STORE0};
pub use transform::{to_nnf, FreshGen, Nnf};
