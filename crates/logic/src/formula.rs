//! First-order formulas over the object-store term language.

use crate::intern::Symbol;
use crate::term::{SubstMemo, Term};
use std::fmt;

/// An atomic formula. Atoms hold only hash-consed [`Term`] handles, so
/// they are `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `t = u` — equality on values (also used for stores).
    Eq(Term, Term),
    /// `alive(S, X)` — object `X` has been allocated in store `S`.
    Alive(Term, Term),
    /// `A ⊒ B` — the reflexive-transitive local inclusion relation on
    /// attributes (from `in` clauses).
    LocalInc(Term, Term),
    /// `A →F B` — the rep inclusion relation: some declaration
    /// `field F maps B into A` exists in the eventual program.
    RepInc {
        group: Term,
        pivot: Term,
        mapped: Term,
    },
    /// `A ⇉F B` — the *elementwise* rep inclusion relation (array
    /// dependencies, the paper's §6 future work): some declaration
    /// `field F maps elem B into A` exists in the eventual program, making
    /// every integer slot of the array referenced by `F`, and attribute
    /// `B` of every element stored in those slots, part of `A`.
    RepIncElem {
        group: Term,
        pivot: Term,
        mapped: Term,
    },
    /// `S ⊨ X·A ≽ Y·B` — the main inclusion relation on locations.
    Inc {
        store: Term,
        obj: Term,
        attr: Term,
        obj2: Term,
        attr2: Term,
    },
    /// `t < u` on integers.
    Lt(Term, Term),
    /// `t ≤ u` on integers.
    Le(Term, Term),
    /// `isObj(t)` — `t` is an object reference (not `null`, an integer, or
    /// a boolean). Interpreted: constants evaluate it directly.
    IsObj(Term),
    /// `isInt(t)` — `t` is an integer (an array slot key). Interpreted:
    /// constants evaluate it directly.
    IsInt(Term),
    /// A term of boolean sort used as a proposition (e.g. a program
    /// expression of boolean type).
    BoolTerm(Term),
}

impl Atom {
    /// Simultaneously substitutes variables by terms in all arguments.
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Atom {
        self.subst_memo(map, &mut SubstMemo::new())
    }

    pub(crate) fn subst_memo(&self, map: &[(Symbol, Term)], memo: &mut SubstMemo) -> Atom {
        let mut s = |t: &Term| t.subst_memo(map, memo);
        match self {
            Atom::Eq(a, b) => Atom::Eq(s(a), s(b)),
            Atom::Alive(st, x) => Atom::Alive(s(st), s(x)),
            Atom::LocalInc(a, b) => Atom::LocalInc(s(a), s(b)),
            Atom::RepInc {
                group,
                pivot,
                mapped,
            } => Atom::RepInc {
                group: s(group),
                pivot: s(pivot),
                mapped: s(mapped),
            },
            Atom::RepIncElem {
                group,
                pivot,
                mapped,
            } => Atom::RepIncElem {
                group: s(group),
                pivot: s(pivot),
                mapped: s(mapped),
            },
            Atom::Inc {
                store,
                obj,
                attr,
                obj2,
                attr2,
            } => Atom::Inc {
                store: s(store),
                obj: s(obj),
                attr: s(attr),
                obj2: s(obj2),
                attr2: s(attr2),
            },
            Atom::Lt(a, b) => Atom::Lt(s(a), s(b)),
            Atom::Le(a, b) => Atom::Le(s(a), s(b)),
            Atom::IsObj(t) => Atom::IsObj(s(t)),
            Atom::IsInt(t) => Atom::IsInt(s(t)),
            Atom::BoolTerm(t) => Atom::BoolTerm(s(t)),
        }
    }

    /// Collects free variables of all argument terms (deduplicated,
    /// first-occurrence order).
    pub fn free_vars(&self, out: &mut Vec<Symbol>) {
        self.for_each_term(&mut |t| t.free_vars(out));
    }

    /// Applies `f` to each argument term.
    pub fn for_each_term(&self, f: &mut impl FnMut(&Term)) {
        match self {
            Atom::Eq(a, b)
            | Atom::LocalInc(a, b)
            | Atom::Lt(a, b)
            | Atom::Le(a, b)
            | Atom::Alive(a, b) => {
                f(a);
                f(b);
            }
            Atom::RepInc {
                group,
                pivot,
                mapped,
            }
            | Atom::RepIncElem {
                group,
                pivot,
                mapped,
            } => {
                f(group);
                f(pivot);
                f(mapped);
            }
            Atom::Inc {
                store,
                obj,
                attr,
                obj2,
                attr2,
            } => {
                f(store);
                f(obj);
                f(attr);
                f(obj2);
                f(attr2);
            }
            Atom::BoolTerm(t) | Atom::IsObj(t) | Atom::IsInt(t) => f(t),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Eq(a, b) => write!(f, "{a} = {b}"),
            Atom::Alive(s, x) => write!(f, "alive({s}, {x})"),
            Atom::LocalInc(a, b) => write!(f, "{a} ⊒ {b}"),
            Atom::RepInc {
                group,
                pivot,
                mapped,
            } => write!(f, "{group} →{pivot} {mapped}"),
            Atom::RepIncElem {
                group,
                pivot,
                mapped,
            } => write!(f, "{group} ⇉{pivot} {mapped}"),
            Atom::Inc {
                store,
                obj,
                attr,
                obj2,
                attr2,
            } => {
                write!(f, "{store} ⊨ {obj}·{attr} ≽ {obj2}·{attr2}")
            }
            Atom::Lt(a, b) => write!(f, "{a} < {b}"),
            Atom::Le(a, b) => write!(f, "{a} ≤ {b}"),
            Atom::IsObj(t) => write!(f, "isObj({t})"),
            Atom::IsInt(t) => write!(f, "isInt({t})"),
            Atom::BoolTerm(t) => write!(f, "{t}"),
        }
    }
}

/// One pattern in a matching trigger: either a term shape or an atom shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Match a term in the E-graph.
    Term(Term),
    /// Match an asserted (or denied) atom.
    Atom(Atom),
}

impl Pattern {
    pub(crate) fn subst_memo(&self, map: &[(Symbol, Term)], memo: &mut SubstMemo) -> Pattern {
        match self {
            Pattern::Term(t) => Pattern::Term(t.subst_memo(map, memo)),
            Pattern::Atom(a) => Pattern::Atom(a.subst_memo(map, memo)),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Term(t) => write!(f, "{t}"),
            Pattern::Atom(a) => write!(f, "{a}"),
        }
    }
}

/// A multi-pattern trigger for quantifier instantiation: every pattern must
/// match (with a consistent assignment) for the quantifier to fire.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trigger(pub Vec<Pattern>);

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

fn subst_triggers(
    triggers: &[Trigger],
    map: &[(Symbol, Term)],
    memo: &mut SubstMemo,
) -> Vec<Trigger> {
    triggers
        .iter()
        .map(|t| Trigger(t.0.iter().map(|p| p.subst_memo(map, memo)).collect()))
        .collect()
}

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// An atomic formula.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification with optional matching triggers.
    Forall(Vec<Symbol>, Vec<Trigger>, Box<Formula>),
    /// Existential quantification. The triggers apply when the quantifier
    /// flips to a universal under negation (refutation of a `¬∃` branch).
    Exists(Vec<Symbol>, Vec<Trigger>, Box<Formula>),
    /// A position label (the `lblpos` marker of ESC-lineage checkers):
    /// logically transparent, but literals derived from the wrapped
    /// subformula carry the label id so a refuting prover branch can be
    /// traced back to the proof obligation it violates.
    Labeled(u32, Box<Formula>),
}

impl Formula {
    /// Builds `a = b`.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Atom(Atom::Eq(a, b))
    }

    /// Builds `a ≠ b`.
    pub fn neq(a: Term, b: Term) -> Formula {
        Formula::Not(Box::new(Formula::eq(a, b)))
    }

    /// Builds a conjunction, flattening nested `And`s and dropping `True`.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Builds a disjunction, flattening nested `Or`s and dropping `False`.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Builds `p ⇒ q`, simplifying trivial cases.
    pub fn implies(p: Formula, q: Formula) -> Formula {
        match (&p, &q) {
            (Formula::True, _) => q,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            _ => Formula::Implies(Box::new(p), Box::new(q)),
        }
    }

    /// Builds `¬p`, collapsing double negation and constants.
    // An associated constructor, not an operator method.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Formula) -> Formula {
        match p {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Builds `∀ vars :: body` with explicit triggers (empty `vars` returns
    /// the body unchanged).
    pub fn forall(vars: Vec<Symbol>, triggers: Vec<Trigger>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, triggers, Box::new(body))
        }
    }

    /// Builds `∃ vars :: body` (empty `vars` returns the body unchanged).
    pub fn exists(vars: Vec<Symbol>, body: Formula) -> Formula {
        Formula::exists_with_triggers(vars, vec![], body)
    }

    /// Builds `∃ vars :: body` with triggers for the negated (universal)
    /// reading.
    pub fn exists_with_triggers(
        vars: Vec<Symbol>,
        triggers: Vec<Trigger>,
        body: Formula,
    ) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, triggers, Box::new(body))
        }
    }

    /// Wraps `body` in a position label. Constants are not worth labelling:
    /// they produce no literals for the prover to record.
    pub fn labeled(id: u32, body: Formula) -> Formula {
        match body {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            other => Formula::Labeled(id, Box::new(other)),
        }
    }

    /// Strips every [`Formula::Labeled`] wrapper, returning the logically
    /// identical unlabelled formula.
    #[must_use]
    pub fn strip_labels(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(*a),
            Formula::Not(p) => Formula::Not(Box::new(p.strip_labels())),
            Formula::And(ps) => Formula::And(ps.iter().map(Formula::strip_labels).collect()),
            Formula::Or(ps) => Formula::Or(ps.iter().map(Formula::strip_labels).collect()),
            Formula::Implies(p, q) => {
                Formula::Implies(Box::new(p.strip_labels()), Box::new(q.strip_labels()))
            }
            Formula::Iff(p, q) => {
                Formula::Iff(Box::new(p.strip_labels()), Box::new(q.strip_labels()))
            }
            Formula::Forall(vars, triggers, body) => Formula::Forall(
                vars.clone(),
                triggers.clone(),
                Box::new(body.strip_labels()),
            ),
            Formula::Exists(vars, triggers, body) => Formula::Exists(
                vars.clone(),
                triggers.clone(),
                Box::new(body.strip_labels()),
            ),
            Formula::Labeled(_, body) => body.strip_labels(),
        }
    }

    /// Simultaneously substitutes variables by terms.
    ///
    /// Substitution does **not** rename binders; the workspace generates
    /// globally fresh bound-variable names, so capture cannot occur. The
    /// method enforces this with a debug assertion. Because binders are
    /// fresh, they almost never shadow the domain, so the common path
    /// reuses the map (and its memo) untouched instead of rebuilding a
    /// filtered copy at every quantifier.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if a bound variable occurs in the free
    /// variables of an image (which would capture).
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Formula {
        self.subst_memo(map, &mut SubstMemo::new())
    }

    fn subst_memo(&self, map: &[(Symbol, Term)], memo: &mut SubstMemo) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(a.subst_memo(map, memo)),
            Formula::Not(p) => Formula::Not(Box::new(p.subst_memo(map, memo))),
            Formula::And(ps) => Formula::And(ps.iter().map(|p| p.subst_memo(map, memo)).collect()),
            Formula::Or(ps) => Formula::Or(ps.iter().map(|p| p.subst_memo(map, memo)).collect()),
            Formula::Implies(p, q) => Formula::Implies(
                Box::new(p.subst_memo(map, memo)),
                Box::new(q.subst_memo(map, memo)),
            ),
            Formula::Iff(p, q) => Formula::Iff(
                Box::new(p.subst_memo(map, memo)),
                Box::new(q.subst_memo(map, memo)),
            ),
            Formula::Forall(vars, triggers, body) => {
                debug_assert!(no_capture(vars, map), "bound variable capture in subst");
                if vars.iter().any(|v| map.iter().any(|(d, _)| d == v)) {
                    // Shadowed: filter the domain and start a fresh memo
                    // for the narrowed map.
                    let inner: Vec<(Symbol, Term)> = map
                        .iter()
                        .filter(|(v, _)| !vars.contains(v))
                        .copied()
                        .collect();
                    let mut inner_memo = SubstMemo::new();
                    let triggers = subst_triggers(triggers, &inner, &mut inner_memo);
                    Formula::Forall(
                        vars.clone(),
                        triggers,
                        Box::new(body.subst_memo(&inner, &mut inner_memo)),
                    )
                } else {
                    let triggers = subst_triggers(triggers, map, memo);
                    Formula::Forall(vars.clone(), triggers, Box::new(body.subst_memo(map, memo)))
                }
            }
            Formula::Exists(vars, triggers, body) => {
                debug_assert!(no_capture(vars, map), "bound variable capture in subst");
                if vars.iter().any(|v| map.iter().any(|(d, _)| d == v)) {
                    let inner: Vec<(Symbol, Term)> = map
                        .iter()
                        .filter(|(v, _)| !vars.contains(v))
                        .copied()
                        .collect();
                    let mut inner_memo = SubstMemo::new();
                    let triggers = subst_triggers(triggers, &inner, &mut inner_memo);
                    Formula::Exists(
                        vars.clone(),
                        triggers,
                        Box::new(body.subst_memo(&inner, &mut inner_memo)),
                    )
                } else {
                    let triggers = subst_triggers(triggers, map, memo);
                    Formula::Exists(vars.clone(), triggers, Box::new(body.subst_memo(map, memo)))
                }
            }
            Formula::Labeled(id, body) => {
                Formula::Labeled(*id, Box::new(body.subst_memo(map, memo)))
            }
        }
    }

    /// Collects free variables, sorted by name (deterministic across
    /// runs even though symbol ids are not).
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.free_vars_into(&mut out);
        out.sort_by_key(|s| s.as_str());
        out
    }

    fn free_vars_into(&self, out: &mut Vec<Symbol>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => a.free_vars(out),
            Formula::Not(p) => p.free_vars_into(out),
            Formula::And(ps) | Formula::Or(ps) => {
                for p in ps {
                    p.free_vars_into(out);
                }
            }
            Formula::Implies(p, q) | Formula::Iff(p, q) => {
                p.free_vars_into(out);
                q.free_vars_into(out);
            }
            Formula::Forall(vars, _, body) | Formula::Exists(vars, _, body) => {
                let mut inner = Vec::new();
                body.free_vars_into(&mut inner);
                for v in inner {
                    if !vars.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Formula::Labeled(_, body) => body.free_vars_into(out),
        }
    }

    /// Number of nodes in the formula tree (atoms count their terms).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Atom(a) => {
                let mut n = 1;
                a.for_each_term(&mut |t| n += t.size());
                n
            }
            Formula::Not(p) => 1 + p.size(),
            Formula::And(ps) | Formula::Or(ps) => 1 + ps.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(p, q) | Formula::Iff(p, q) => 1 + p.size() + q.size(),
            Formula::Forall(_, _, body) | Formula::Exists(_, _, body) => 1 + body.size(),
            Formula::Labeled(_, body) => body.size(),
        }
    }
}

fn no_capture(bound: &[Symbol], map: &[(Symbol, Term)]) -> bool {
    for (v, image) in map {
        if bound.contains(v) {
            continue; // shadowed — handled by filtering, not capture
        }
        let mut image_vars = Vec::new();
        image.free_vars(&mut image_vars);
        if bound.iter().any(|b| image_vars.contains(b)) {
            return false;
        }
    }
    true
}

fn write_vars(f: &mut fmt::Formatter<'_>, vars: &[Symbol]) -> fmt::Result {
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(p) => write!(f, "¬({p})"),
            Formula::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(p, q) => write!(f, "({p} ⇒ {q})"),
            Formula::Iff(p, q) => write!(f, "({p} ⇔ {q})"),
            Formula::Forall(vars, triggers, body) => {
                write!(f, "(∀ ")?;
                write_vars(f, vars)?;
                for t in triggers {
                    write!(f, " {t}")?;
                }
                write!(f, " :: {body})")
            }
            Formula::Exists(vars, _, body) => {
                write!(f, "(∃ ")?;
                write_vars(f, vars)?;
                write!(f, " :: {body})")
            }
            Formula::Labeled(id, body) => write!(f, "⟨L{id}: {body}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::STORE;

    #[test]
    fn and_flattens_and_short_circuits() {
        let a = Formula::eq(Term::var("x"), Term::int(1));
        let b = Formula::eq(Term::var("y"), Term::int(2));
        let nested = Formula::and(vec![
            a.clone(),
            Formula::and(vec![b.clone(), Formula::True]),
        ]);
        assert_eq!(nested, Formula::And(vec![a.clone(), b.clone()]));
        assert_eq!(
            Formula::and(vec![a.clone(), Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::and(vec![a.clone()]), a);
    }

    #[test]
    fn or_flattens_and_short_circuits() {
        let a = Formula::eq(Term::var("x"), Term::int(1));
        assert_eq!(Formula::or(vec![a.clone(), Formula::True]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
    }

    #[test]
    fn not_collapses_double_negation() {
        let a = Formula::eq(Term::var("x"), Term::int(1));
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn subst_respects_binders() {
        // (∀ v :: v = x)[x := 3] = ∀ v :: v = 3
        let body = Formula::eq(Term::var("v"), Term::var("x"));
        let q = Formula::forall(vec!["v".into()], vec![], body);
        let subbed = q.subst(&[("x".into(), Term::int(3))]);
        assert_eq!(
            subbed,
            Formula::forall(
                vec!["v".into()],
                vec![],
                Formula::eq(Term::var("v"), Term::int(3))
            )
        );
        // Substituting the bound variable itself is a no-op inside.
        let same = q.subst(&[("v".into(), Term::int(7))]);
        assert_eq!(same, q);
    }

    #[test]
    fn free_vars_excludes_bound() {
        let body = Formula::eq(
            Term::select(Term::store(), Term::var("v"), Term::attr("f")),
            Term::var("x"),
        );
        let q = Formula::forall(vec!["v".into()], vec![], body);
        let fv = q.free_vars();
        assert!(fv.iter().any(|s| *s == "x"));
        assert!(fv.iter().any(|s| *s == STORE));
        assert!(!fv.iter().any(|s| *s == "v"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "capture")]
    fn capture_is_detected() {
        // (∀ v :: x = v)[x := v] would capture v.
        let q = Formula::forall(
            vec!["v".into()],
            vec![],
            Formula::eq(Term::var("x"), Term::var("v")),
        );
        let _ = q.subst(&[("x".into(), Term::var("v"))]);
    }

    #[test]
    fn display_round_trips_structure() {
        let a = Formula::Atom(Atom::Inc {
            store: Term::store(),
            obj: Term::var("st"),
            attr: Term::attr("contents"),
            obj2: Term::var("v"),
            attr2: Term::attr("cnt"),
        });
        assert_eq!(a.to_string(), "$ ⊨ st·#contents ≽ v·#cnt");
    }

    #[test]
    fn labels_are_logically_transparent() {
        let a = Formula::eq(Term::var("x"), Term::int(1));
        let labelled = Formula::labeled(3, a.clone());
        assert_eq!(labelled.strip_labels(), a);
        assert_eq!(labelled.size(), a.size());
        assert_eq!(labelled.free_vars(), a.free_vars());
        // Constants are never labelled.
        assert_eq!(Formula::labeled(0, Formula::True), Formula::True);
        assert_eq!(Formula::labeled(0, Formula::False), Formula::False);
        // Substitution preserves the label.
        let subbed = labelled.subst(&[("x".into(), Term::var("y"))]);
        assert_eq!(
            subbed,
            Formula::labeled(3, Formula::eq(Term::var("y"), Term::int(1)))
        );
        assert_eq!(labelled.to_string(), "⟨L3: x = 1⟩");
    }

    #[test]
    fn size_counts_atoms_and_terms() {
        let f = Formula::and(vec![
            Formula::eq(Term::var("x"), Term::int(1)),
            Formula::eq(Term::var("y"), Term::int(2)),
        ]);
        assert_eq!(f.size(), 7);
    }

    #[test]
    fn shared_subtrees_substitute_once() {
        // A formula with the same big subterm twice: after substitution
        // both occurrences must still be the same hash-consed id.
        let big = Term::select(Term::store(), Term::var("o"), Term::attr("f"));
        let f = Formula::and(vec![
            Formula::eq(big, Term::int(1)),
            Formula::eq(big, Term::var("z")),
        ]);
        let g = f.subst(&[("o".into(), Term::var("p"))]);
        match g {
            Formula::And(parts) => {
                let first = match &parts[0] {
                    Formula::Atom(Atom::Eq(a, _)) => *a,
                    other => panic!("unexpected shape: {other:?}"),
                };
                let second = match &parts[1] {
                    Formula::Atom(Atom::Eq(a, _)) => *a,
                    other => panic!("unexpected shape: {other:?}"),
                };
                assert_eq!(first.id(), second.id());
                assert_eq!(
                    first,
                    Term::select(Term::store(), Term::var("p"), Term::attr("f"))
                );
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}
