//! First-order terms of the object-store logic.
//!
//! The semantic model of Section 4.0 of the paper is a multi-sorted
//! first-order language with stores, object values, and attribute
//! constants. Terms are hash-consed: [`Term`] is a `Copy` `u32` handle
//! into the global arena in [`crate::intern`], so structurally equal
//! terms share one id and term equality is an integer compare.

use crate::intern::{intern_term, Symbol};
use std::fmt;
use std::hash::{Hash, Hasher};

/// The distinguished variable holding the current object store (`$`).
pub const STORE: &str = "$";
/// The distinguished variable holding the store on entry to a method (`$0`).
pub const STORE0: &str = "$0";

/// An interpreted constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cst {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// An attribute constant (declared attribute names are modelled as
    /// distinct constants, Section 4.0).
    Attr(Symbol),
}

impl fmt::Display for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cst::Int(n) => write!(f, "{n}"),
            Cst::Bool(b) => write!(f, "{b}"),
            Cst::Null => write!(f, "null"),
            Cst::Attr(a) => write!(f, "#{a}"),
        }
    }
}

impl fmt::Debug for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cst::Int(n) => f.debug_tuple("Int").field(n).finish(),
            Cst::Bool(b) => f.debug_tuple("Bool").field(b).finish(),
            Cst::Null => f.write_str("Null"),
            Cst::Attr(a) => f.debug_tuple("Attr").field(a).finish(),
        }
    }
}

/// An interpreted or uninterpreted function symbol.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum FnSym {
    /// `select(S, X, A)` — the value `S(X·A)`.
    Select,
    /// `update(S, X, A, V)` — the store `S(X·A := V)`.
    Update,
    /// `new(S)` — the next object to be allocated in `S`.
    New,
    /// `succ(S)` — the store `S⁺` after allocating `new(S)`.
    Succ,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer negation.
    Neg,
    /// An uninterpreted function, e.g. a Skolem function.
    Uninterp(Symbol),
}

impl FnSym {
    /// Fixed arity of the symbol, or `None` for uninterpreted symbols.
    pub fn arity(&self) -> Option<usize> {
        match self {
            FnSym::Select => Some(3),
            FnSym::Update => Some(4),
            FnSym::New | FnSym::Succ | FnSym::Neg => Some(1),
            FnSym::Add | FnSym::Sub | FnSym::Mul => Some(2),
            FnSym::Uninterp(_) => None,
        }
    }
}

impl fmt::Display for FnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnSym::Select => write!(f, "select"),
            FnSym::Update => write!(f, "update"),
            FnSym::New => write!(f, "new"),
            FnSym::Succ => write!(f, "succ"),
            FnSym::Add => write!(f, "+"),
            FnSym::Sub => write!(f, "-"),
            FnSym::Mul => write!(f, "*"),
            FnSym::Neg => write!(f, "neg"),
            FnSym::Uninterp(name) => write!(f, "{name}"),
        }
    }
}

impl fmt::Debug for FnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnSym::Select => f.write_str("Select"),
            FnSym::Update => f.write_str("Update"),
            FnSym::New => f.write_str("New"),
            FnSym::Succ => f.write_str("Succ"),
            FnSym::Add => f.write_str("Add"),
            FnSym::Sub => f.write_str("Sub"),
            FnSym::Mul => f.write_str("Mul"),
            FnSym::Neg => f.write_str("Neg"),
            FnSym::Uninterp(name) => f.debug_tuple("Uninterp").field(name).finish(),
        }
    }
}

/// The shape of a hash-consed term node, obtained from [`Term::node`].
/// Nodes are immutable and live in the global arena for the process
/// lifetime.
#[derive(Debug, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A variable (program variable, store variable, bound variable, or
    /// Skolem constant).
    Var(Symbol),
    /// An interpreted constant.
    Const(Cst),
    /// A function application.
    App(FnSym, Vec<Term>),
}

/// A first-order term: a `Copy` handle into the hash-consed arena.
/// Equality is id equality (≡ structural equality); `Hash` writes the
/// precomputed 128-bit structural digest, so hashes are stable across
/// processes even though ids are not.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Term(u32);

/// Substitution memo keyed by term id: maps a subterm to its image under
/// the *current* map. Callers must discard it whenever the map changes.
pub(crate) type SubstMemo = std::collections::HashMap<u32, Term>;

impl Term {
    pub(crate) fn from_id(id: u32) -> Term {
        Term(id)
    }

    /// The raw arena id (dense, process-local; not stable across runs).
    pub fn id(self) -> u32 {
        self.0
    }

    /// The canonical node for this term.
    pub fn node(self) -> &'static TermNode {
        &crate::intern::term_data(self.0).node
    }

    pub(crate) fn data(self) -> &'static crate::intern::TermData {
        crate::intern::term_data(self.0)
    }

    /// Whether the term contains no variables (invariant under
    /// substitution).
    pub fn is_ground(self) -> bool {
        self.data().ground
    }

    /// Builds a variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        intern_term(TermNode::Var(name.into()))
    }

    /// Builds a constant term.
    pub fn lit(c: Cst) -> Term {
        intern_term(TermNode::Const(c))
    }

    /// General application constructor; arity discipline is the
    /// caller's business (see [`FnSym::arity`]).
    pub fn app(sym: FnSym, args: Vec<Term>) -> Term {
        intern_term(TermNode::App(sym, args))
    }

    /// The current-store variable `$`.
    pub fn store() -> Term {
        Term::var(STORE)
    }

    /// The entry-store variable `$0`.
    pub fn store0() -> Term {
        Term::var(STORE0)
    }

    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::lit(Cst::Int(n))
    }

    /// A boolean constant.
    pub fn boolean(b: bool) -> Term {
        Term::lit(Cst::Bool(b))
    }

    /// The `null` constant.
    pub fn null() -> Term {
        Term::lit(Cst::Null)
    }

    /// An attribute constant.
    pub fn attr(name: impl Into<Symbol>) -> Term {
        Term::lit(Cst::Attr(name.into()))
    }

    /// `select(store, obj, attr)` — the paper's `S(X·A)`.
    pub fn select(store: Term, obj: Term, attr: Term) -> Term {
        Term::app(FnSym::Select, vec![store, obj, attr])
    }

    /// `update(store, obj, attr, val)` — the paper's `S(X·A := V)`.
    pub fn update(store: Term, obj: Term, attr: Term, val: Term) -> Term {
        Term::app(FnSym::Update, vec![store, obj, attr, val])
    }

    /// `new(store)` — the next object to be allocated.
    pub fn new_obj(store: Term) -> Term {
        Term::app(FnSym::New, vec![store])
    }

    /// `succ(store)` — the paper's `S⁺`.
    pub fn succ(store: Term) -> Term {
        Term::app(FnSym::Succ, vec![store])
    }

    /// Integer addition.
    // These are associated constructors, not operator methods; the `ops`
    // trait names are the natural builder vocabulary.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Term {
        Term::app(FnSym::Add, vec![a, b])
    }

    /// Integer subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::app(FnSym::Sub, vec![a, b])
    }

    /// Integer multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::app(FnSym::Mul, vec![a, b])
    }

    /// Integer negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(a: Term) -> Term {
        Term::app(FnSym::Neg, vec![a])
    }

    /// An application of an uninterpreted function symbol.
    pub fn uninterp(name: impl Into<Symbol>, args: Vec<Term>) -> Term {
        Term::app(FnSym::Uninterp(name.into()), args)
    }

    /// `Some(sym)` if the term is a variable.
    pub fn as_var(self) -> Option<Symbol> {
        match self.node() {
            TermNode::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// `Some(c)` if the term is a constant.
    pub fn as_const(self) -> Option<Cst> {
        match self.node() {
            TermNode::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Whether the term is exactly the variable `name`.
    pub fn is_var(&self, name: &str) -> bool {
        matches!(self.node(), TermNode::Var(v) if v.as_str() == name)
    }

    /// Simultaneously substitutes variables by terms.
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Term {
        self.subst_memo(map, &mut SubstMemo::new())
    }

    /// Substitution with a shared memo: hash-consing makes equal
    /// subtrees the same id, so the memo turns the rewrite into one
    /// visit per distinct subterm. The memo is only valid for a fixed
    /// `map`.
    pub(crate) fn subst_memo(&self, map: &[(Symbol, Term)], memo: &mut SubstMemo) -> Term {
        if map.is_empty() || self.is_ground() {
            return *self;
        }
        match self.node() {
            TermNode::Var(v) => {
                for (name, image) in map {
                    if name == v {
                        return *image;
                    }
                }
                *self
            }
            TermNode::Const(_) => *self,
            TermNode::App(sym, args) => {
                if let Some(&hit) = memo.get(&self.0) {
                    return hit;
                }
                let out = Term::app(*sym, args.iter().map(|a| a.subst_memo(map, memo)).collect());
                memo.insert(self.0, out);
                out
            }
        }
    }

    /// Collects the free variables (all variables — terms have no
    /// binders), deduplicated, in first-occurrence order.
    pub fn free_vars(&self, out: &mut Vec<Symbol>) {
        if self.is_ground() {
            return;
        }
        match self.node() {
            TermNode::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            TermNode::Const(_) => {}
            TermNode::App(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// Visits every subterm, including `self`, in pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Term)) {
        visit(self);
        if let TermNode::App(_, args) = self.node() {
            for a in args {
                a.walk(visit);
            }
        }
    }

    /// Number of nodes in the term tree (with sharing expanded).
    pub fn size(&self) -> usize {
        self.data().size as usize
    }
}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Structural digest, not id: derived `Hash` over formulas stays
        // process-stable, which the persisted fingerprint cache needs.
        state.write_u128(self.data().digest);
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the node, not the id, matching the old tree
        // representation (`Var("x")`, `App(Select, [..])`).
        fmt::Debug::fmt(self.node(), f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            TermNode::Var(v) => write!(f, "{v}"),
            TermNode::Const(c) => write!(f, "{c}"),
            TermNode::App(sym, args) => match sym {
                FnSym::Select => write!(f, "{}({}·{})", args[0], args[1], args[2]),
                FnSym::Update => {
                    write!(f, "{}({}·{} := {})", args[0], args[1], args[2], args[3])
                }
                FnSym::Succ => write!(f, "{}⁺", args[0]),
                FnSym::Add => write!(f, "({} + {})", args[0], args[1]),
                FnSym::Sub => write!(f, "({} - {})", args[0], args[1]),
                FnSym::Mul => write!(f, "({} * {})", args[0], args[1]),
                _ => {
                    write!(f, "{sym}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_replaces_all_occurrences() {
        // select($, t, #f) with $ := succ($)
        let t = Term::select(Term::store(), Term::var("t"), Term::attr("f"));
        let subbed = t.subst(&[(STORE.into(), Term::succ(Term::store()))]);
        assert_eq!(
            subbed,
            Term::select(Term::succ(Term::store()), Term::var("t"), Term::attr("f"))
        );
    }

    #[test]
    fn substitution_is_simultaneous() {
        // x := y, y := x swaps.
        let t = Term::add(Term::var("x"), Term::var("y"));
        let swapped = t.subst(&[("x".into(), Term::var("y")), ("y".into(), Term::var("x"))]);
        assert_eq!(swapped, Term::add(Term::var("y"), Term::var("x")));
    }

    #[test]
    fn free_vars_collects_everything() {
        let t = Term::select(Term::store(), Term::var("t"), Term::attr("f"));
        let mut vars = Vec::new();
        t.free_vars(&mut vars);
        assert!(vars.contains(&Symbol::intern(STORE)));
        assert!(vars.contains(&Symbol::intern("t")));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn display_uses_paper_notation() {
        let t = Term::select(Term::store(), Term::var("st"), Term::attr("vec"));
        assert_eq!(t.to_string(), "$(st·#vec)");
        let u = Term::update(Term::store(), Term::var("t"), Term::attr("f"), Term::int(3));
        assert_eq!(u.to_string(), "$(t·#f := 3)");
        assert_eq!(Term::succ(Term::store()).to_string(), "$⁺");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Term::var("x").size(), 1);
        assert_eq!(Term::add(Term::var("x"), Term::int(1)).size(), 3);
    }

    #[test]
    fn arity_of_interpreted_symbols() {
        assert_eq!(FnSym::Select.arity(), Some(3));
        assert_eq!(FnSym::Update.arity(), Some(4));
        assert_eq!(FnSym::Uninterp("sk".into()).arity(), None);
    }

    #[test]
    fn hash_consing_shares_ids() {
        let a = Term::select(Term::store(), Term::var("hc_x"), Term::attr("hc_f"));
        let b = Term::select(Term::store(), Term::var("hc_x"), Term::attr("hc_f"));
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.node(), b.node()));
    }

    #[test]
    fn ground_flag_tracks_variables() {
        assert!(Term::int(7).is_ground());
        assert!(Term::add(Term::int(1), Term::int(2)).is_ground());
        assert!(!Term::add(Term::int(1), Term::var("gv")).is_ground());
        // Substitution short-circuits on ground terms.
        let g = Term::add(Term::int(1), Term::int(2));
        assert_eq!(g.subst(&[("gv".into(), Term::int(9))]), g);
    }

    #[test]
    fn debug_matches_tree_rendering() {
        assert_eq!(format!("{:?}", Term::var("x")), "Var(\"x\")");
        assert_eq!(format!("{:?}", Term::attr("g")), "Const(Attr(\"g\"))");
    }
}
