//! First-order terms of the object-store logic.
//!
//! The semantic model of Section 4.0 of the paper is a multi-sorted
//! first-order language with stores, object values, and attribute
//! constants. Terms are plain trees; the prover hash-conses them
//! internally.

use std::collections::BTreeSet;
use std::fmt;

/// The distinguished variable holding the current object store (`$`).
pub const STORE: &str = "$";
/// The distinguished variable holding the store on entry to a method (`$0`).
pub const STORE0: &str = "$0";

/// An interpreted constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cst {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// An attribute constant (declared attribute names are modelled as
    /// distinct constants, Section 4.0).
    Attr(String),
}

impl fmt::Display for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cst::Int(n) => write!(f, "{n}"),
            Cst::Bool(b) => write!(f, "{b}"),
            Cst::Null => write!(f, "null"),
            Cst::Attr(a) => write!(f, "#{a}"),
        }
    }
}

/// An interpreted or uninterpreted function symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FnSym {
    /// `select(S, X, A)` — the value `S(X·A)`.
    Select,
    /// `update(S, X, A, V)` — the store `S(X·A := V)`.
    Update,
    /// `new(S)` — the next object to be allocated in `S`.
    New,
    /// `succ(S)` — the store `S⁺` after allocating `new(S)`.
    Succ,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer negation.
    Neg,
    /// An uninterpreted function, e.g. a Skolem function.
    Uninterp(String),
}

impl FnSym {
    /// Fixed arity of the symbol, or `None` for uninterpreted symbols.
    pub fn arity(&self) -> Option<usize> {
        match self {
            FnSym::Select => Some(3),
            FnSym::Update => Some(4),
            FnSym::New | FnSym::Succ | FnSym::Neg => Some(1),
            FnSym::Add | FnSym::Sub | FnSym::Mul => Some(2),
            FnSym::Uninterp(_) => None,
        }
    }
}

impl fmt::Display for FnSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnSym::Select => write!(f, "select"),
            FnSym::Update => write!(f, "update"),
            FnSym::New => write!(f, "new"),
            FnSym::Succ => write!(f, "succ"),
            FnSym::Add => write!(f, "+"),
            FnSym::Sub => write!(f, "-"),
            FnSym::Mul => write!(f, "*"),
            FnSym::Neg => write!(f, "neg"),
            FnSym::Uninterp(name) => write!(f, "{name}"),
        }
    }
}

/// A first-order term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (program variable, store variable, bound variable, or
    /// Skolem constant).
    Var(String),
    /// An interpreted constant.
    Const(Cst),
    /// A function application.
    App(FnSym, Vec<Term>),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// The current-store variable `$`.
    pub fn store() -> Term {
        Term::Var(STORE.to_string())
    }

    /// The entry-store variable `$0`.
    pub fn store0() -> Term {
        Term::Var(STORE0.to_string())
    }

    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::Const(Cst::Int(n))
    }

    /// A boolean constant.
    pub fn boolean(b: bool) -> Term {
        Term::Const(Cst::Bool(b))
    }

    /// The `null` constant.
    pub fn null() -> Term {
        Term::Const(Cst::Null)
    }

    /// An attribute constant.
    pub fn attr(name: impl Into<String>) -> Term {
        Term::Const(Cst::Attr(name.into()))
    }

    /// `select(store, obj, attr)` — the paper's `S(X·A)`.
    pub fn select(store: Term, obj: Term, attr: Term) -> Term {
        Term::App(FnSym::Select, vec![store, obj, attr])
    }

    /// `update(store, obj, attr, val)` — the paper's `S(X·A := V)`.
    pub fn update(store: Term, obj: Term, attr: Term, val: Term) -> Term {
        Term::App(FnSym::Update, vec![store, obj, attr, val])
    }

    /// `new(store)` — the next object to be allocated.
    pub fn new_obj(store: Term) -> Term {
        Term::App(FnSym::New, vec![store])
    }

    /// `succ(store)` — the paper's `S⁺`.
    pub fn succ(store: Term) -> Term {
        Term::App(FnSym::Succ, vec![store])
    }

    /// Integer addition.
    // These are associated constructors, not operator methods; the `ops`
    // trait names are the natural builder vocabulary.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Term {
        Term::App(FnSym::Add, vec![a, b])
    }

    /// Integer subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::App(FnSym::Sub, vec![a, b])
    }

    /// Integer multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::App(FnSym::Mul, vec![a, b])
    }

    /// Integer negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(a: Term) -> Term {
        Term::App(FnSym::Neg, vec![a])
    }

    /// An application of an uninterpreted function symbol.
    pub fn uninterp(name: impl Into<String>, args: Vec<Term>) -> Term {
        Term::App(FnSym::Uninterp(name.into()), args)
    }

    /// Whether the term is exactly the variable `name`.
    pub fn is_var(&self, name: &str) -> bool {
        matches!(self, Term::Var(v) if v == name)
    }

    /// Simultaneously substitutes variables by terms.
    #[must_use]
    pub fn subst(&self, map: &[(String, Term)]) -> Term {
        match self {
            Term::Var(v) => {
                for (name, image) in map {
                    if name == v {
                        return image.clone();
                    }
                }
                self.clone()
            }
            Term::Const(_) => self.clone(),
            Term::App(f, args) => Term::App(f.clone(), args.iter().map(|a| a.subst(map)).collect()),
        }
    }

    /// Collects the free variables (all variables — terms have no binders).
    pub fn free_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Const(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// Visits every subterm, including `self`, in pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Term)) {
        visit(self);
        if let Term::App(_, args) = self {
            for a in args {
                a.walk(visit);
            }
        }
    }

    /// Number of nodes in the term tree.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::App(FnSym::Select, args) => {
                write!(f, "{}({}·{})", args[0], args[1], args[2])
            }
            Term::App(FnSym::Update, args) => {
                write!(f, "{}({}·{} := {})", args[0], args[1], args[2], args[3])
            }
            Term::App(FnSym::Succ, args) => write!(f, "{}⁺", args[0]),
            Term::App(FnSym::Add, args) => write!(f, "({} + {})", args[0], args[1]),
            Term::App(FnSym::Sub, args) => write!(f, "({} - {})", args[0], args[1]),
            Term::App(FnSym::Mul, args) => write!(f, "({} * {})", args[0], args[1]),
            Term::App(sym, args) => {
                write!(f, "{sym}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_replaces_all_occurrences() {
        // select($, t, #f) with $ := succ($)
        let t = Term::select(Term::store(), Term::var("t"), Term::attr("f"));
        let subbed = t.subst(&[(STORE.to_string(), Term::succ(Term::store()))]);
        assert_eq!(
            subbed,
            Term::select(Term::succ(Term::store()), Term::var("t"), Term::attr("f"))
        );
    }

    #[test]
    fn substitution_is_simultaneous() {
        // x := y, y := x swaps.
        let t = Term::add(Term::var("x"), Term::var("y"));
        let swapped = t.subst(&[
            ("x".to_string(), Term::var("y")),
            ("y".to_string(), Term::var("x")),
        ]);
        assert_eq!(swapped, Term::add(Term::var("y"), Term::var("x")));
    }

    #[test]
    fn free_vars_collects_everything() {
        let t = Term::select(Term::store(), Term::var("t"), Term::attr("f"));
        let mut vars = BTreeSet::new();
        t.free_vars(&mut vars);
        assert!(vars.contains(STORE));
        assert!(vars.contains("t"));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn display_uses_paper_notation() {
        let t = Term::select(Term::store(), Term::var("st"), Term::attr("vec"));
        assert_eq!(t.to_string(), "$(st·#vec)");
        let u = Term::update(Term::store(), Term::var("t"), Term::attr("f"), Term::int(3));
        assert_eq!(u.to_string(), "$(t·#f := 3)");
        assert_eq!(Term::succ(Term::store()).to_string(), "$⁺");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Term::var("x").size(), 1);
        assert_eq!(Term::add(Term::var("x"), Term::int(1)).size(), 3);
    }

    #[test]
    fn arity_of_interpreted_symbols() {
        assert_eq!(FnSym::Select.arity(), Some(3));
        assert_eq!(FnSym::Update.arity(), Some(4));
        assert_eq!(FnSym::Uninterp("sk".into()).arity(), None);
    }
}
