//! Global symbol interner and hash-consed term arena.
//!
//! Every name that enters the logic — program variables, attribute
//! constants, uninterpreted function symbols, fresh and Skolem names —
//! is interned once into a [`Symbol`] (a `u32` index into an append-only
//! global store). Every [`Term`](crate::Term) is hash-consed into a
//! global arena of immutable nodes: structurally equal terms share one
//! id, so term equality is a `u32` compare, clones are `Copy`, and the
//! prover can memoize per-term work in dense arrays indexed by id.
//!
//! # Concurrency and determinism
//!
//! The checker proves obligations from worker threads, so both stores
//! are concurrent: lookups are lock-free (two atomic loads), misses take
//! a short-lived write lock. Because interning order depends on thread
//! scheduling, **ids are not stable across runs** — nothing that is
//! persisted or user-visible may depend on id order. Content, on the
//! other hand, is stable: each symbol carries a precomputed FNV-1a hash
//! of its name and each term a precomputed 128-bit structural digest, and
//! the `Hash` impls of [`Symbol`] and [`Term`](crate::Term) write exactly
//! those. Hashing a formula therefore yields the same fingerprint in
//! every process, which is what the engine's content-addressed verdict
//! cache requires.
//!
//! Allocations are leaked deliberately: symbols and term nodes live for
//! the process lifetime (they back `&'static` references), which is the
//! classic interner trade — the population is bounded by the distinct
//! names and distinct term shapes of the workload.

use crate::stable_hash::StableHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned name: variable, attribute, uninterpreted function symbol,
/// data-group / field / procedure name. Equality is an id compare; the
/// `Hash` impl writes the name's content hash, so hashes are stable
/// across processes even though ids are not.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

struct SymData {
    name: &'static str,
    /// FNV-1a of the name bytes, precomputed at intern time.
    fnv: u64,
}

const SYM_PAGE_BITS: usize = 10;
const SYM_PAGE: usize = 1 << SYM_PAGE_BITS;
const SYM_PAGES: usize = 1 << 12;
type SymPage = [AtomicPtr<SymData>; SYM_PAGE];

struct SymStore {
    pages: Box<[AtomicPtr<SymPage>]>,
    dedup: RwLock<HashMap<&'static str, u32>>,
}

fn sym_store() -> &'static SymStore {
    static STORE: OnceLock<SymStore> = OnceLock::new();
    STORE.get_or_init(|| SymStore {
        pages: (0..SYM_PAGES)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect(),
        dedup: RwLock::new(HashMap::new()),
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Symbol {
    /// Interns `name`, returning its symbol (idempotent).
    pub fn intern(name: &str) -> Symbol {
        let store = sym_store();
        if let Some(&id) = store.dedup.read().expect("interner poisoned").get(name) {
            return Symbol(id);
        }
        let mut dedup = store.dedup.write().expect("interner poisoned");
        if let Some(&id) = dedup.get(name) {
            return Symbol(id);
        }
        let id = dedup.len() as u32;
        assert!((id as usize) < SYM_PAGES * SYM_PAGE, "symbol store full");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let data = Box::into_raw(Box::new(SymData {
            name: leaked,
            fnv: fnv1a(leaked.as_bytes()),
        }));
        let page_idx = id as usize >> SYM_PAGE_BITS;
        let mut page = store.pages[page_idx].load(Ordering::Acquire);
        if page.is_null() {
            let fresh: Box<SymPage> =
                Box::new(std::array::from_fn(
                    |_| AtomicPtr::new(std::ptr::null_mut()),
                ));
            page = Box::into_raw(fresh);
            // Only one writer holds the dedup lock, so a plain store is
            // race-free against other writers; Release pairs with reader
            // Acquires.
            store.pages[page_idx].store(page, Ordering::Release);
        }
        (unsafe { &*page })[id as usize & (SYM_PAGE - 1)].store(data, Ordering::Release);
        dedup.insert(leaked, id);
        Symbol(id)
    }

    fn data(self) -> &'static SymData {
        let store = sym_store();
        let page = store.pages[self.0 as usize >> SYM_PAGE_BITS].load(Ordering::Acquire);
        debug_assert!(!page.is_null(), "symbol id from a foreign store");
        let slot = unsafe { &*page }[self.0 as usize & (SYM_PAGE - 1)].load(Ordering::Acquire);
        // A Symbol is only obtainable from `intern`, which stores the slot
        // before publishing the id; both allocations are never freed.
        unsafe { &*slot }
    }

    /// The interned name.
    pub fn as_str(self) -> &'static str {
        self.data().name
    }

    /// The raw id (dense, process-local; not stable across runs).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hash, not id: keeps every derived `Hash` over formulas
        // process-stable (ids vary with thread scheduling).
        state.write_u64(self.data().fnv);
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like the `String` it replaced, so debug output (e.g. the
        // prover's relation names) is unchanged.
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// The hash-consed term arena. One node per distinct term shape; nodes
/// are immutable and live for the process lifetime.
use crate::term::{Term, TermNode};

pub(crate) struct TermData {
    pub(crate) node: TermNode,
    /// 128-bit structural digest, precomputed from child digests.
    pub(crate) digest: u128,
    /// Tree size (`1 +` sum of child tree sizes), saturating.
    pub(crate) size: u32,
    /// Whether the term contains no variables (invariant under
    /// substitution).
    pub(crate) ground: bool,
}

const TERM_PAGE_BITS: usize = 12;
const TERM_PAGE: usize = 1 << TERM_PAGE_BITS;
const TERM_PAGES: usize = 1 << 16;
type TermPage = [AtomicPtr<TermData>; TERM_PAGE];

struct TermStore {
    pages: Box<[AtomicPtr<TermPage>]>,
    dedup: RwLock<HashMap<&'static TermNode, u32>>,
}

fn term_store() -> &'static TermStore {
    static STORE: OnceLock<TermStore> = OnceLock::new();
    STORE.get_or_init(|| TermStore {
        pages: (0..TERM_PAGES)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect(),
        dedup: RwLock::new(HashMap::new()),
    })
}

/// Interns a term node, returning the canonical [`Term`] id. Structurally
/// equal nodes always return the same id ("intern twice ⇒ same id").
pub(crate) fn intern_term(node: TermNode) -> Term {
    let store = term_store();
    if let Some(&id) = store.dedup.read().expect("term arena poisoned").get(&node) {
        return Term::from_id(id);
    }
    let mut dedup = store.dedup.write().expect("term arena poisoned");
    if let Some(&id) = dedup.get(&node) {
        return Term::from_id(id);
    }
    let id = dedup.len() as u32;
    assert!((id as usize) < TERM_PAGES * TERM_PAGE, "term arena full");
    let digest = {
        let mut h = StableHasher::new();
        node.hash(&mut h);
        h.finish128()
    };
    let (size, ground) = match &node {
        TermNode::Var(_) => (1u32, false),
        TermNode::Const(_) => (1, true),
        TermNode::App(_, args) => args.iter().fold((1u32, true), |(s, g), a| {
            let d = a.data();
            (s.saturating_add(d.size), g && d.ground)
        }),
    };
    let data = Box::into_raw(Box::new(TermData {
        node,
        digest,
        size,
        ground,
    }));
    let node_ref: &'static TermNode = unsafe { &(*data).node };
    let page_idx = id as usize >> TERM_PAGE_BITS;
    let mut page = store.pages[page_idx].load(Ordering::Acquire);
    if page.is_null() {
        let fresh: Box<TermPage> =
            Box::new(std::array::from_fn(
                |_| AtomicPtr::new(std::ptr::null_mut()),
            ));
        page = Box::into_raw(fresh);
        store.pages[page_idx].store(page, Ordering::Release);
    }
    (unsafe { &*page })[id as usize & (TERM_PAGE - 1)].store(data, Ordering::Release);
    dedup.insert(node_ref, id);
    Term::from_id(id)
}

pub(crate) fn term_data(id: u32) -> &'static TermData {
    let store = term_store();
    let page = store.pages[id as usize >> TERM_PAGE_BITS].load(Ordering::Acquire);
    debug_assert!(!page.is_null(), "term id from a foreign arena");
    let slot = unsafe { &*page }[id as usize & (TERM_PAGE - 1)].load(Ordering::Acquire);
    // A Term id is only obtainable from `intern_term`, which stores the
    // slot before publishing the id; allocations are never freed.
    unsafe { &*slot }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_distinct() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        let c = Symbol::intern("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(a.to_string(), "alpha");
        assert_eq!(format!("{a:?}"), "\"alpha\"");
    }

    #[test]
    fn symbol_hash_is_content_based() {
        use crate::stable_hash::stable_hash128;
        let a = Symbol::intern("gamma");
        let b = Symbol::intern("gamma");
        assert_eq!(stable_hash128(&a), stable_hash128(&b));
        assert_ne!(stable_hash128(&a), stable_hash128(&Symbol::intern("delta")));
        // Locked values: the symbol digest must never drift silently —
        // it feeds every persisted fingerprint (cache format v4). These
        // are the published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..256).map(|i| format!("conc_{i}")).collect();
        let ids: Vec<Vec<Symbol>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| names.iter().map(|n| Symbol::intern(n)).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        for per_thread in &ids[1..] {
            assert_eq!(per_thread, &ids[0]);
        }
    }
}
