//! Declared activation policies for background axioms.
//!
//! Boogie's `UnivBackPred` annotates every background axiom with explicit
//! `PATS`/`MPAT` matching patterns so the prover's E-matching is driven by
//! *declared* triggers instead of heuristic inference. A [`PatternPolicy`]
//! carries that declaration for one axiom — the single-pattern alternatives
//! (`PATS`), the conjunction-gated multi-patterns (`MPAT`), and a
//! scheduling [`Phase`] that says *when* the axiom may fire in the
//! scope-shared two-phase prover schedule:
//!
//! - [`Phase::Eager`] axioms participate in background pre-saturation:
//!   they are registered and may instantiate while the scope context is
//!   built, before any obligation's goal exists. Cheap, scope-local
//!   enumerations belong here — their instances are reused by every
//!   obligation proved against the context.
//! - [`Phase::GoalDirected`] axioms arm only inside an obligation's trail
//!   frame, after the goal terms are asserted. Transitivity- and
//!   antisymmetry-shaped axioms belong here: saturating them against a
//!   goalless background over-instantiates (the E19 regression), while a
//!   goal-directed search stops at the first contradiction.
//!
//! The phase is *scheduling metadata*, not logic: a goal-directed axiom is
//! still asserted in every proof, so the set of derivable facts — and
//! therefore every verdict and refutation label — is unchanged. Only the
//! order (and hence the budget accounting) of instantiations moves.

use crate::formula::Trigger;
use std::fmt;

/// When a background axiom's quantifiers may fire in the two-phase
/// scope-shared prover schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Fires during background pre-saturation and inside obligation frames.
    Eager,
    /// Arms only inside an obligation's frame, after goal terms exist.
    GoalDirected,
}

impl Phase {
    /// Stable lower-case name, used in JSON output and event logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Eager => "eager",
            Phase::GoalDirected => "goal-directed",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The declared activation policy of one background axiom: its matching
/// patterns, split PATS/MPAT-style, plus its scheduling [`Phase`].
///
/// `triggers` holds the single-pattern alternatives (any one pattern
/// matching fires the axiom — Boogie's `PATS`); `multi_patterns` holds the
/// conjunction-gated alternatives (every pattern of one trigger must match
/// under a consistent binding — Boogie's `MPAT`). The quantifier's
/// effective trigger list is [`PatternPolicy::all_triggers`], in declared
/// order: `triggers` first, then `multi_patterns`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternPolicy {
    /// Single-pattern trigger alternatives (`PATS`).
    pub triggers: Vec<Trigger>,
    /// Multi-pattern (conjunction-gated) trigger alternatives (`MPAT`).
    pub multi_patterns: Vec<Trigger>,
    /// When the axiom's quantifiers may fire.
    pub phase: Phase,
}

impl PatternPolicy {
    /// Builds a policy from a mixed trigger list, classifying each trigger
    /// by arity: single-pattern triggers are `PATS`, multi-pattern triggers
    /// are `MPAT`. (All current axioms declare their single-pattern
    /// alternatives first, so [`PatternPolicy::all_triggers`] reproduces
    /// the declared order.)
    pub fn new(phase: Phase, declared: Vec<Trigger>) -> PatternPolicy {
        let (multi_patterns, triggers) = declared.into_iter().partition(|t| t.0.len() > 1);
        PatternPolicy {
            triggers,
            multi_patterns,
            phase,
        }
    }

    /// An eagerly scheduled policy (fires during pre-saturation).
    pub fn eager(declared: Vec<Trigger>) -> PatternPolicy {
        PatternPolicy::new(Phase::Eager, declared)
    }

    /// A goal-directed policy (arms only inside obligation frames).
    pub fn goal_directed(declared: Vec<Trigger>) -> PatternPolicy {
        PatternPolicy::new(Phase::GoalDirected, declared)
    }

    /// The quantifier's effective trigger list: the `PATS` alternatives
    /// followed by the `MPAT` alternatives.
    pub fn all_triggers(&self) -> Vec<Trigger> {
        let mut all = self.triggers.clone();
        all.extend(self.multi_patterns.iter().cloned());
        all
    }

    /// Whether the policy declares any pattern at all. A background axiom
    /// whose policy is empty would fall back to heuristic trigger
    /// inference, which the background gate test forbids.
    pub fn is_declared(&self) -> bool {
        !self.triggers.is_empty() || !self.multi_patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Pattern;
    use crate::Term;

    fn single(name: &str) -> Trigger {
        Trigger(vec![Pattern::Term(Term::uninterp(
            name,
            vec![Term::var("X")],
        ))])
    }

    fn pair(a: &str, b: &str) -> Trigger {
        Trigger(vec![
            Pattern::Term(Term::uninterp(a, vec![Term::var("X")])),
            Pattern::Term(Term::uninterp(b, vec![Term::var("X")])),
        ])
    }

    #[test]
    fn new_classifies_by_arity() {
        let p = PatternPolicy::eager(vec![single("f"), pair("f", "g"), single("g")]);
        assert_eq!(p.triggers.len(), 2);
        assert_eq!(p.multi_patterns.len(), 1);
        assert_eq!(p.phase, Phase::Eager);
        assert!(p.is_declared());
    }

    #[test]
    fn all_triggers_lists_pats_then_mpat() {
        let p = PatternPolicy::goal_directed(vec![single("f"), pair("g", "h")]);
        let all = p.all_triggers();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0.len(), 1);
        assert_eq!(all[1].0.len(), 2);
        assert_eq!(p.phase, Phase::GoalDirected);
    }

    #[test]
    fn empty_policy_is_undeclared() {
        let p = PatternPolicy::eager(vec![]);
        assert!(!p.is_declared());
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::Eager.as_str(), "eager");
        assert_eq!(Phase::GoalDirected.as_str(), "goal-directed");
    }
}
