//! Negation normal form and skolemization.
//!
//! The prover refutes `hypotheses ∧ ¬goal`. Both sides are first brought
//! into **skolemized negation normal form** ([`Nnf`]): negations pushed to
//! atoms, implications and bi-implications expanded, existentials replaced
//! by Skolem functions of the enclosing universals, and every bound
//! variable renamed to a globally fresh name (so downstream substitution
//! never captures).

use crate::formula::{Atom, Formula, Trigger};
use crate::intern::Symbol;
use crate::term::{SubstMemo, Term};

/// Generator of globally fresh variable and function names.
///
/// Generated names contain `!`, which cannot appear in oolong identifiers,
/// so they never collide with program variables.
#[derive(Debug, Default, Clone)]
pub struct FreshGen {
    next: u64,
}

impl FreshGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh interned name with the given prefix, e.g. `sk!7`.
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        let n = self.next;
        self.next += 1;
        Symbol::intern(&format!("{prefix}!{n}"))
    }
}

/// A formula in skolemized negation normal form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Nnf {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A possibly negated atom.
    Lit {
        /// The underlying atom.
        atom: Atom,
        /// `true` for the atom itself, `false` for its negation.
        positive: bool,
        /// The position label of the enclosing [`Formula::Labeled`]
        /// wrapper, if any. Logically inert: the prover asserts the
        /// literal exactly as if unlabelled, but records the label when
        /// the literal lands on a branch. Labels never occur inside
        /// quantifier bodies (conversion clears them), so quantifier
        /// identity is unaffected.
        label: Option<u32>,
    },
    /// Conjunction.
    And(Vec<Nnf>),
    /// Disjunction.
    Or(Vec<Nnf>),
    /// A (positive) universal quantifier with matching triggers.
    Forall {
        /// Bound variables (globally fresh names).
        vars: Vec<Symbol>,
        /// Matching triggers; empty means the prover infers them.
        triggers: Vec<Trigger>,
        /// The quantified body.
        body: Box<Nnf>,
    },
}

impl Nnf {
    /// Builds a conjunction, flattening and short-circuiting.
    pub fn and(parts: Vec<Nnf>) -> Nnf {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Nnf::True => {}
                Nnf::False => return Nnf::False,
                Nnf::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Nnf::True,
            1 => flat.pop().expect("len checked"),
            _ => Nnf::And(flat),
        }
    }

    /// Builds a disjunction, flattening and short-circuiting.
    pub fn or(parts: Vec<Nnf>) -> Nnf {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Nnf::False => {}
                Nnf::True => return Nnf::True,
                Nnf::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Nnf::False,
            1 => flat.pop().expect("len checked"),
            _ => Nnf::Or(flat),
        }
    }

    /// Substitutes variables by terms (used for quantifier instantiation).
    /// This is the prover's hottest rewrite; the memo rides the
    /// hash-consed ids so each distinct subterm is rewritten once.
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Nnf {
        self.subst_memo(map, &mut SubstMemo::new())
    }

    fn subst_memo(&self, map: &[(Symbol, Term)], memo: &mut SubstMemo) -> Nnf {
        match self {
            Nnf::True => Nnf::True,
            Nnf::False => Nnf::False,
            Nnf::Lit {
                atom,
                positive,
                label,
            } => Nnf::Lit {
                atom: atom.subst_memo(map, memo),
                positive: *positive,
                label: *label,
            },
            Nnf::And(ps) => Nnf::And(ps.iter().map(|p| p.subst_memo(map, memo)).collect()),
            Nnf::Or(ps) => Nnf::Or(ps.iter().map(|p| p.subst_memo(map, memo)).collect()),
            Nnf::Forall {
                vars,
                triggers,
                body,
            } => {
                if vars.iter().any(|v| map.iter().any(|(d, _)| d == v)) {
                    // Shadowed (bound variables are globally fresh, so
                    // this is the rare path): narrow the map.
                    let inner: Vec<(Symbol, Term)> = map
                        .iter()
                        .filter(|(v, _)| !vars.contains(v))
                        .copied()
                        .collect();
                    let mut inner_memo = SubstMemo::new();
                    let triggers = triggers
                        .iter()
                        .map(|t| {
                            Trigger(
                                t.0.iter()
                                    .map(|p| p.subst_memo(&inner, &mut inner_memo))
                                    .collect(),
                            )
                        })
                        .collect();
                    Nnf::Forall {
                        vars: vars.clone(),
                        triggers,
                        body: Box::new(body.subst_memo(&inner, &mut inner_memo)),
                    }
                } else {
                    let triggers = triggers
                        .iter()
                        .map(|t| Trigger(t.0.iter().map(|p| p.subst_memo(map, memo)).collect()))
                        .collect();
                    Nnf::Forall {
                        vars: vars.clone(),
                        triggers,
                        body: Box::new(body.subst_memo(map, memo)),
                    }
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Nnf::True | Nnf::False | Nnf::Lit { .. } => 1,
            Nnf::And(ps) | Nnf::Or(ps) => 1 + ps.iter().map(Nnf::size).sum::<usize>(),
            Nnf::Forall { body, .. } => 1 + body.size(),
        }
    }
}

impl std::fmt::Display for Nnf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Nnf::True => write!(f, "true"),
            Nnf::False => write!(f, "false"),
            Nnf::Lit {
                atom,
                positive: true,
                ..
            } => write!(f, "{atom}"),
            Nnf::Lit {
                atom,
                positive: false,
                ..
            } => write!(f, "¬({atom})"),
            Nnf::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Nnf::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Nnf::Forall {
                vars,
                triggers,
                body,
            } => {
                write!(f, "(∀ ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                for t in triggers {
                    write!(f, " {t}")?;
                }
                write!(f, " :: {body})")
            }
        }
    }
}

/// Converts `formula` (when `positive`) or its negation (when `!positive`)
/// to skolemized NNF.
///
/// Existential variables in positive positions (and universal variables in
/// negative positions) become applications of fresh Skolem functions to the
/// enclosing universal variables. All remaining bound variables are renamed
/// to fresh names.
pub fn to_nnf(formula: &Formula, positive: bool, fresh: &mut FreshGen) -> Nnf {
    convert(formula, positive, &mut Vec::new(), fresh, None)
}

fn convert(
    formula: &Formula,
    positive: bool,
    universals: &mut Vec<Symbol>,
    fresh: &mut FreshGen,
    label: Option<u32>,
) -> Nnf {
    match formula {
        Formula::True => {
            if positive {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        Formula::False => {
            if positive {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Formula::Atom(a) => Nnf::Lit {
            atom: *a,
            positive,
            label,
        },
        Formula::Not(p) => convert(p, !positive, universals, fresh, label),
        Formula::And(ps) => {
            let parts: Vec<Nnf> = ps
                .iter()
                .map(|p| convert(p, positive, universals, fresh, label))
                .collect();
            if positive {
                Nnf::and(parts)
            } else {
                Nnf::or(parts)
            }
        }
        Formula::Or(ps) => {
            let parts: Vec<Nnf> = ps
                .iter()
                .map(|p| convert(p, positive, universals, fresh, label))
                .collect();
            if positive {
                Nnf::or(parts)
            } else {
                Nnf::and(parts)
            }
        }
        Formula::Implies(p, q) => {
            // p ⇒ q  ≡  ¬p ∨ q
            let np = convert(p, !positive, universals, fresh, label);
            let nq = convert(q, positive, universals, fresh, label);
            if positive {
                Nnf::or(vec![np, nq])
            } else {
                Nnf::and(vec![np, nq])
            }
        }
        Formula::Iff(p, q) => {
            // p ⇔ q ≡ (p ⇒ q) ∧ (q ⇒ p); under negation: (p ∨ q) ∧ (¬p ∨ ¬q).
            let expanded = Formula::and(vec![
                Formula::Implies(p.clone(), q.clone()),
                Formula::Implies(q.clone(), p.clone()),
            ]);
            convert(&expanded, positive, universals, fresh, label)
        }
        Formula::Forall(vars, triggers, body) => {
            if positive {
                rename_and_quantify(vars, triggers, body, true, universals, fresh)
            } else {
                skolemize(vars, body, false, universals, fresh, label)
            }
        }
        Formula::Exists(vars, triggers, body) => {
            if positive {
                skolemize(vars, body, true, universals, fresh, label)
            } else {
                rename_and_quantify(vars, triggers, body, false, universals, fresh)
            }
        }
        // Labels are transparent for conversion: the wrapped subformula
        // converts as-is, with its literals stamped. Inner labels shadow
        // outer ones.
        Formula::Labeled(id, body) => convert(body, positive, universals, fresh, Some(*id)),
    }
}

/// A quantifier that stays universal in NNF (a positive `∀` with
/// `body_polarity = true`, or a negated `∃` with `body_polarity = false`):
/// rename the bound variables to fresh names and recurse on the body with
/// the given polarity.
fn rename_and_quantify(
    vars: &[Symbol],
    triggers: &[Trigger],
    body: &Formula,
    body_polarity: bool,
    universals: &mut Vec<Symbol>,
    fresh: &mut FreshGen,
) -> Nnf {
    let renaming: Vec<(Symbol, Term)> = vars
        .iter()
        .map(|v| (*v, Term::var(fresh.fresh(&format!("q_{v}")))))
        .collect();
    let new_names: Vec<Symbol> = renaming
        .iter()
        .map(|(_, t)| t.as_var().expect("renaming images are variables"))
        .collect();
    let mut memo = SubstMemo::new();
    let renamed_triggers: Vec<Trigger> = triggers
        .iter()
        .map(|t| {
            Trigger(
                t.0.iter()
                    .map(|p| p.subst_memo(&renaming, &mut memo))
                    .collect(),
            )
        })
        .collect();
    let renamed_body = body.subst(&renaming);
    let depth = universals.len();
    universals.extend(new_names.iter().copied());
    // Labels are cleared inside quantifier bodies: quantifiers are shared
    // (instantiated many times, deduplicated by body identity in the
    // prover), so a label inside would both leak across obligations and
    // split otherwise-identical quantifiers.
    let inner = convert(&renamed_body, body_polarity, universals, fresh, None);
    universals.truncate(depth);
    match inner {
        Nnf::True => Nnf::True,
        other => Nnf::Forall {
            vars: new_names,
            triggers: renamed_triggers,
            body: Box::new(other),
        },
    }
}

/// Positive existential (or negated universal): replace each bound variable
/// by a Skolem function of the enclosing universals.
fn skolemize(
    vars: &[Symbol],
    body: &Formula,
    body_polarity: bool,
    universals: &mut Vec<Symbol>,
    fresh: &mut FreshGen,
    label: Option<u32>,
) -> Nnf {
    let args: Vec<Term> = universals.iter().map(|v| Term::var(*v)).collect();
    let map: Vec<(Symbol, Term)> = vars
        .iter()
        .map(|v| {
            let name = fresh.fresh(&format!("sk_{v}"));
            let image = if args.is_empty() {
                Term::var(name)
            } else {
                Term::uninterp(name, args.clone())
            };
            (*v, image)
        })
        .collect();
    let skolemized = body.subst(&map);
    convert(&skolemized, body_polarity, universals, fresh, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula as F;
    use crate::formula::Pattern;
    use crate::term::Term as T;
    use crate::term::TermNode;

    fn atom(name: &str) -> F {
        F::Atom(Atom::BoolTerm(T::var(name)))
    }

    #[test]
    fn fresh_names_are_distinct_and_unparsable() {
        let mut gen = FreshGen::new();
        let a = gen.fresh("sk");
        let b = gen.fresh("sk");
        assert_ne!(a, b);
        assert!(a.as_str().contains('!'));
    }

    #[test]
    fn negation_pushes_to_literals() {
        let f = F::not(F::and(vec![atom("p"), atom("q")]));
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        match nnf {
            Nnf::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts.iter().all(|p| matches!(
                    p,
                    Nnf::Lit {
                        positive: false,
                        ..
                    }
                )));
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn implication_expands() {
        let f = F::implies(atom("p"), atom("q"));
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        assert!(matches!(nnf, Nnf::Or(_)));
        // Negated implication: p ∧ ¬q.
        let neg = to_nnf(&f, false, &mut FreshGen::new());
        match neg {
            Nnf::And(parts) => {
                assert!(matches!(&parts[0], Nnf::Lit { positive: true, .. }));
                assert!(matches!(
                    &parts[1],
                    Nnf::Lit {
                        positive: false,
                        ..
                    }
                ));
            }
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn iff_expands_to_two_implications() {
        let f = F::Iff(Box::new(atom("p")), Box::new(atom("q")));
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        assert!(
            matches!(nnf, Nnf::And(ref parts) if parts.len() == 2),
            "{nnf}"
        );
    }

    #[test]
    fn toplevel_existential_becomes_constant() {
        // ∃x :: x = 1  — skolemizes to sk = 1 with sk a fresh variable.
        let f = F::exists(vec!["x".into()], F::eq(T::var("x"), T::int(1)));
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        match nnf {
            Nnf::Lit {
                atom: Atom::Eq(lhs, _),
                positive: true,
                ..
            } => {
                let v = lhs.as_var().expect("skolem constant is a variable");
                assert!(v.as_str().starts_with("sk_x!"), "got {v}");
            }
            other => panic!("expected literal, got {other}"),
        }
    }

    #[test]
    fn existential_under_universal_becomes_function() {
        // ∀y :: ∃x :: x = y
        let f = F::forall(
            vec!["y".into()],
            vec![],
            F::exists(vec!["x".into()], F::eq(T::var("x"), T::var("y"))),
        );
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        match nnf {
            Nnf::Forall { vars, body, .. } => {
                assert_eq!(vars.len(), 1);
                match *body {
                    Nnf::Lit {
                        atom: Atom::Eq(lhs, _),
                        ..
                    } => match lhs.node() {
                        TermNode::App(_, args) => {
                            assert_eq!(args.len(), 1, "skolem fn applied to the universal");
                            assert_eq!(args[0], T::var(vars[0]));
                        }
                        other => panic!("expected skolem app, got {other:?}"),
                    },
                    other => panic!("expected skolem app, got {other}"),
                }
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn negated_universal_skolemizes() {
        // ¬(∀x :: p(x)) ≡ ∃x :: ¬p(x) → constant skolem, negative literal.
        let f = F::forall(
            vec!["x".into()],
            vec![],
            F::Atom(Atom::BoolTerm(T::var("x"))),
        );
        let nnf = to_nnf(&f, false, &mut FreshGen::new());
        assert!(
            matches!(
                nnf,
                Nnf::Lit {
                    positive: false,
                    ..
                }
            ),
            "{nnf}"
        );
    }

    #[test]
    fn bound_variables_are_renamed_fresh() {
        let f = F::forall(vec!["x".into()], vec![], F::eq(T::var("x"), T::var("x")));
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        match nnf {
            Nnf::Forall { vars, .. } => {
                assert_ne!(vars[0].as_str(), "x");
                assert!(vars[0].as_str().contains('!'));
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn triggers_survive_renaming() {
        let trig = Trigger(vec![Pattern::Term(T::select(
            T::store(),
            T::var("x"),
            T::attr("f"),
        ))]);
        let f = F::forall(
            vec!["x".into()],
            vec![trig],
            F::eq(T::select(T::store(), T::var("x"), T::attr("f")), T::null()),
        );
        let nnf = to_nnf(&f, true, &mut FreshGen::new());
        match nnf {
            Nnf::Forall { vars, triggers, .. } => {
                assert_eq!(triggers.len(), 1);
                match &triggers[0].0[0] {
                    Pattern::Term(t) => match t.node() {
                        TermNode::App(_, args) => {
                            assert_eq!(args[1], T::var(vars[0]), "trigger references renamed var");
                        }
                        other => panic!("unexpected pattern {other:?}"),
                    },
                    other => panic!("unexpected pattern {other:?}"),
                }
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn nnf_subst_instantiates() {
        let lit = Nnf::Lit {
            atom: Atom::Eq(T::var("v"), T::int(1)),
            positive: true,
            label: None,
        };
        let inst = lit.subst(&[("v".into(), T::var("c"))]);
        assert_eq!(
            inst,
            Nnf::Lit {
                atom: Atom::Eq(T::var("c"), T::int(1)),
                positive: true,
                label: None,
            }
        );
    }

    #[test]
    fn labels_stamp_literals_in_both_polarities() {
        // ⟨L7: p ∧ q⟩ converts to the same shape as p ∧ q, with every
        // literal stamped — under negation too.
        let f = F::labeled(7, F::and(vec![atom("p"), atom("q")]));
        for positive in [true, false] {
            let nnf = to_nnf(&f, positive, &mut FreshGen::new());
            let plain = to_nnf(&f.strip_labels(), positive, &mut FreshGen::new());
            let parts = match (&nnf, positive) {
                (Nnf::And(parts), true) | (Nnf::Or(parts), false) => parts,
                other => panic!("unexpected shape {other:?}"),
            };
            assert!(parts
                .iter()
                .all(|p| matches!(p, Nnf::Lit { label: Some(7), .. })));
            // Same structure modulo the stamp.
            assert_eq!(nnf.size(), plain.size());
        }
    }

    #[test]
    fn labels_survive_skolemization_but_not_quantification() {
        // Negated ⟨L2: ∀x :: p(x)⟩ skolemizes: the ground literal keeps
        // the label.
        let f = F::labeled(
            2,
            F::forall(
                vec!["x".into()],
                vec![],
                F::Atom(Atom::BoolTerm(T::var("x"))),
            ),
        );
        let neg = to_nnf(&f, false, &mut FreshGen::new());
        assert!(
            matches!(
                neg,
                Nnf::Lit {
                    positive: false,
                    label: Some(2),
                    ..
                }
            ),
            "{neg}"
        );
        // Positive ⟨L2: ∀x :: p(x)⟩ stays universal: the body is shared
        // across instantiations, so the label is cleared inside it.
        let pos = to_nnf(&f, true, &mut FreshGen::new());
        match pos {
            Nnf::Forall { body, .. } => {
                assert!(
                    matches!(*body, Nnf::Lit { label: None, .. }),
                    "labels never occur inside quantifier bodies"
                );
            }
            other => panic!("expected forall, got {other}"),
        }
    }
}
