//! Phase 1: static may-write analysis over guarded-command bodies.
//!
//! The analysis collects, for every implemented procedure, the set of heap
//! locations its body may write — expressed as *frame entries*: designator
//! paths `param.a₁.….aₙ` rooted at a formal parameter. Direct field and
//! slot writes contribute entries immediately; calls propagate the callee's
//! (declared or inferred-so-far) frame through the actual arguments, to
//! fixpoint across the call graph. Concrete locations are then lifted to
//! the smallest covering data groups, and everything not already covered
//! by the declared `modifies` list becomes a proposal.
//!
//! The static model deliberately mirrors the prover's inclusion axioms
//! (local inclusion closure, rep-inclusion chains, elementwise slot
//! chains) but is *not* required to be complete: phase 2 re-checks the
//! proposals through the engine and repairs anything this phase missed.

use std::collections::{BTreeMap, BTreeSet};

use oolong_sema::{AttrKind, Scope};
use oolong_syntax::ast::{Cmd, Decl, Expr, FieldDecl, ProcDecl, Program};
use oolong_syntax::Span;

/// One proposed (or declared) modifies-list entry: a designator path
/// rooted at formal parameter `param`, as attribute names.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameEntry {
    /// Index of the formal parameter the designator is rooted at.
    pub param: usize,
    /// Attribute path (names), non-empty.
    pub path: Vec<String>,
}

impl FrameEntry {
    /// Renders the entry against a parameter name list, e.g. `t.c.g`.
    pub fn render(&self, params: &[String]) -> String {
        let root = params
            .get(self.param)
            .map(String::as_str)
            .unwrap_or("<param>");
        let mut out = String::from(root);
        for a in &self.path {
            out.push('.');
            out.push_str(a);
        }
        out
    }
}

/// Longest designator path kept during propagation before attempting a
/// rep-inclusion collapse (guards recursive call graphs like the paper's
/// §5 cyclic example, whose concrete footprints are unbounded).
const MAX_PATH: usize = 4;

/// The group structure of a scope in name-keyed form, with an optional
/// overlay of *proposed* `in` memberships not yet in the source.
pub struct GroupGraph {
    /// attr name → direct enclosing groups (`in` clauses + overlay).
    includes: BTreeMap<String, BTreeSet<String>>,
    /// field name → `maps` clauses as (mapped, into-groups, elementwise).
    maps: BTreeMap<String, Vec<(String, Vec<String>, bool)>>,
    /// attr name → kind.
    kinds: BTreeMap<String, AttrKind>,
}

impl GroupGraph {
    /// Builds the graph from an analyzed scope.
    pub fn from_scope(scope: &Scope) -> GroupGraph {
        let mut includes: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut maps: BTreeMap<String, Vec<(String, Vec<String>, bool)>> = BTreeMap::new();
        let mut kinds = BTreeMap::new();
        for (id, info) in scope.attrs() {
            kinds.insert(info.name.clone(), info.kind);
            let encl = includes.entry(info.name.clone()).or_default();
            for &g in scope.enclosing_groups(id) {
                encl.insert(scope.attr_info(g).name.clone());
            }
            if !info.maps.is_empty() {
                let clauses = info
                    .maps
                    .iter()
                    .map(|c| {
                        (
                            scope.attr_info(c.mapped).name.clone(),
                            c.into
                                .iter()
                                .map(|&i| scope.attr_info(i).name.clone())
                                .collect(),
                            c.elementwise,
                        )
                    })
                    .collect();
                maps.insert(info.name.clone(), clauses);
            }
        }
        GroupGraph {
            includes,
            maps,
            kinds,
        }
    }

    /// Adds a proposed local inclusion `field in group` to the overlay.
    pub fn add_include(&mut self, field: &str, group: &str) {
        self.includes
            .entry(field.to_string())
            .or_default()
            .insert(group.to_string());
    }

    /// Whether `name` is a declared group.
    pub fn is_group(&self, name: &str) -> bool {
        self.kinds.get(name) == Some(&AttrKind::Group)
    }

    /// Whether `name` is a declared field.
    pub fn is_field(&self, name: &str) -> bool {
        self.kinds.get(name) == Some(&AttrKind::Field)
    }

    /// The reflexive-transitive upward closure of `a` under local
    /// inclusion: every attribute `b` with `o.a ≼ o.b`.
    pub fn up_closure(&self, a: &str) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut work = vec![a.to_string()];
        while let Some(x) = work.pop() {
            if !seen.insert(x.clone()) {
                continue;
            }
            if let Some(encl) = self.includes.get(&x) {
                work.extend(encl.iter().cloned());
            }
        }
        seen
    }

    /// The transitive member *fields* of group `g` (fields whose upward
    /// closure reaches `g`).
    pub fn member_fields(&self, g: &str) -> BTreeSet<String> {
        self.kinds
            .iter()
            .filter(|(name, kind)| **kind == AttrKind::Field && self.up_closure(name).contains(g))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Whether a modifies entry licensing attribute `a` of some object `o`
    /// covers the location reached from `o` by `path`: `loc(o, path) ≼
    /// o.a`. Single-attribute paths use the local-inclusion closure;
    /// longer paths must chain through a (non-elementwise) rep inclusion
    /// on the leading pivot field.
    pub fn covers(&self, a: &str, path: &[String]) -> bool {
        match path {
            [] => false,
            [f] => self.up_closure(f).contains(a),
            [p, rest @ ..] => {
                self.maps
                    .get(p)
                    .into_iter()
                    .flatten()
                    .any(|(mapped, into, elementwise)| {
                        !elementwise
                            && self.covers(mapped, rest)
                            && into.iter().any(|i| self.up_closure(i).contains(a))
                    })
            }
        }
    }

    /// Whether the entry with path `entry` covers the write path `write`
    /// (both rooted at the same parameter).
    pub fn entry_covers(&self, entry: &[String], write: &[String]) -> bool {
        let n = entry.len();
        if n == 0 || write.len() < n {
            return false;
        }
        if entry[..n - 1] != write[..n - 1] {
            return false;
        }
        self.covers(&entry[n - 1], &write[n - 1..])
    }

    /// Whether any entry in `frame` covers `e`.
    pub fn frame_covers(&self, frame: &BTreeSet<FrameEntry>, e: &FrameEntry) -> bool {
        frame
            .iter()
            .any(|d| d.param == e.param && self.entry_covers(&d.path, &e.path))
    }

    /// Collapses an over-long path through rep inclusions: replaces the
    /// suffix `p.rest` by the into-group of a clause `p maps m into g`
    /// whose mapped attribute covers `rest`. Returns `None` when no
    /// collapse applies.
    fn collapse(&self, path: &[String]) -> Option<Vec<String>> {
        for k in 0..path.len() - 1 {
            let p = &path[k];
            let rest = &path[k + 1..];
            for (mapped, into, elementwise) in self.maps.get(p).into_iter().flatten() {
                if !elementwise && self.covers(mapped, rest) {
                    if let Some(i) = into.first() {
                        let mut out = path[..k].to_vec();
                        out.push(i.clone());
                        return Some(out);
                    }
                }
            }
        }
        None
    }

    /// Bounds a propagated path to [`MAX_PATH`] by collapsing through rep
    /// inclusions; `None` when the path cannot be bounded (the entry is
    /// dropped and reported, and phase 2 is the backstop).
    fn bound(&self, mut path: Vec<String>) -> Option<Vec<String>> {
        while path.len() > MAX_PATH {
            path = self.collapse(&path)?;
        }
        Some(path)
    }
}

/// A designator path segment: an attribute selection or an array-slot
/// index (the concrete index is irrelevant to licensing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// `.a`
    Attr(String),
    /// `[i]`
    Slot,
}

/// Peels a designator expression into its root identifier and segments.
fn designator(expr: &Expr) -> Option<(String, Vec<Seg>)> {
    match expr {
        Expr::Id(x) => Some((x.text.clone(), Vec::new())),
        Expr::Select { base, attr, .. } => {
            let (root, mut segs) = designator(base)?;
            segs.push(Seg::Attr(attr.text.clone()));
            Some((root, segs))
        }
        Expr::Index { base, .. } => {
            let (root, mut segs) = designator(base)?;
            segs.push(Seg::Slot);
            Some((root, segs))
        }
        _ => None,
    }
}

/// The root of a write or argument designator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Root {
    /// Formal parameter by index.
    Param(usize),
    /// Local variable by slot id (see [`BodyEvents::locals`]).
    Local(usize),
}

/// An argument position of a recorded call.
#[derive(Debug, Clone)]
pub enum Arg {
    /// A designator rooted at a formal or local.
    Obj(Root, Vec<Seg>),
    /// Anything else (constants, operators): carries no license demand.
    Other,
}

/// One licensing-relevant event of a body.
#[derive(Debug, Clone)]
pub enum Event {
    /// A field, slot, or allocation write through a designator.
    Write {
        /// Root of the written designator.
        root: Root,
        /// Segments from the root to the written location.
        segs: Vec<Seg>,
        /// Span of the assignment command.
        span: Span,
    },
    /// A procedure call (license demands depend on the callee's frame).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments, normalized.
        args: Vec<Arg>,
        /// Span of the call command.
        span: Span,
    },
}

impl Event {
    /// The source span of the originating command.
    pub fn span(&self) -> Span {
        match self {
            Event::Write { span, .. } | Event::Call { span, .. } => *span,
        }
    }
}

/// A local variable slot with its (flow-insensitive) assignment summary.
#[derive(Debug, Clone)]
pub struct LocalSlot {
    /// Assigned by a plain `x := E` somewhere in the body.
    plain: bool,
    /// Assigned by `x := new()` somewhere in the body.
    newed: bool,
}

impl LocalSlot {
    /// A local is *fresh* when its only assignments are allocations: every
    /// object it can denote at a write is unallocated in the pre-store, so
    /// writes through it need no license. Never-assigned locals have
    /// arbitrary initial values and are not fresh.
    pub fn is_fresh(&self) -> bool {
        self.newed && !self.plain
    }
}

/// One heap dereference the body performs (a `select` or slot read in
/// any expression position the translation licenses).
#[derive(Debug, Clone)]
pub struct ReadEvent {
    /// Root of the dereferenced designator.
    pub root: Root,
    /// Segments from the root to the read location (last segment is the
    /// read itself; nested dereferences appear as their own events).
    pub segs: Vec<Seg>,
    /// Span of the dereference expression.
    pub span: Span,
    /// Whether the dereference occurs in a call-argument position. The
    /// static may-read phase skips these — under the permissive call
    /// model an argument dereference is attributable to either side of
    /// the call, so phase 1 leaves them to the prover, whose refuted
    /// read licenses the repair phase translates back (this is the
    /// deliberate incompleteness that makes phase 2 load-bearing).
    pub in_call: bool,
}

/// The licensing-relevant events of one implementation body.
pub struct BodyEvents {
    /// Events in syntactic order.
    pub events: Vec<Event>,
    /// Heap dereferences in syntactic order (innermost first within one
    /// expression, mirroring the translation's license order).
    pub reads: Vec<ReadEvent>,
    /// Local slots indexed by [`Root::Local`].
    pub locals: Vec<LocalSlot>,
    /// Formal parameters that are reassigned by the body (writes through
    /// them are not attributable to the caller's argument object).
    pub reassigned_params: BTreeSet<usize>,
}

/// Collects the events of `body` for a procedure with formals `params`.
pub fn collect_events(params: &[String], body: &Cmd) -> BodyEvents {
    struct Collector<'a> {
        params: &'a [String],
        env: Vec<(String, usize)>,
        out: BodyEvents,
    }
    impl Collector<'_> {
        fn resolve(&self, name: &str) -> Option<Root> {
            if let Some(&(_, slot)) = self.env.iter().rev().find(|(n, _)| n == name) {
                return Some(Root::Local(slot));
            }
            self.params.iter().position(|p| p == name).map(Root::Param)
        }

        fn assign(&mut self, lhs: &Expr, newed: bool, span: Span) {
            if let Expr::Id(x) = lhs {
                match self.resolve(&x.text) {
                    Some(Root::Local(slot)) => {
                        if newed {
                            self.out.locals[slot].newed = true;
                        } else {
                            self.out.locals[slot].plain = true;
                        }
                    }
                    Some(Root::Param(i)) if !newed => {
                        self.out.reassigned_params.insert(i);
                    }
                    Some(Root::Param(_)) | None => {}
                }
                return;
            }
            if let Some((root, segs)) = designator(lhs) {
                if let Some(root) = self.resolve(&root) {
                    self.out.events.push(Event::Write { root, segs, span });
                }
            }
        }

        /// Records every dereference `expr` performs (innermost first,
        /// matching the translation's license order).
        fn scan_reads(&mut self, expr: &Expr, in_call: bool) {
            match expr {
                Expr::Select { base, .. } => {
                    self.scan_reads(base, in_call);
                    self.push_read(expr, in_call);
                }
                Expr::Index { base, index, .. } => {
                    self.scan_reads(base, in_call);
                    self.scan_reads(index, in_call);
                    self.push_read(expr, in_call);
                }
                Expr::Binary { lhs, rhs, .. } => {
                    self.scan_reads(lhs, in_call);
                    self.scan_reads(rhs, in_call);
                }
                Expr::Unary { operand, .. } => self.scan_reads(operand, in_call),
                Expr::Const(..) | Expr::Id(_) => {}
            }
        }

        fn push_read(&mut self, expr: &Expr, in_call: bool) {
            let Some((root, segs)) = designator(expr) else {
                return;
            };
            let Some(root) = self.resolve(&root) else {
                return;
            };
            self.out.reads.push(ReadEvent {
                root,
                segs,
                span: expr.span(),
                in_call,
            });
        }

        /// Scans the dereferences of a write's left-hand side: the target
        /// location itself is written, not read, but reaching it reads
        /// every intermediate designator (and any slot index).
        fn scan_lhs_reads(&mut self, lhs: &Expr) {
            match lhs {
                Expr::Select { base, .. } => self.scan_reads(base, false),
                Expr::Index { base, index, .. } => {
                    self.scan_reads(base, false);
                    self.scan_reads(index, false);
                }
                _ => {}
            }
        }

        fn walk(&mut self, cmd: &Cmd) {
            match cmd {
                Cmd::Assert(e, _) | Cmd::Assume(e, _) => self.scan_reads(e, false),
                Cmd::Skip(_) => {}
                Cmd::Var(x, body, _) => {
                    let slot = self.out.locals.len();
                    self.out.locals.push(LocalSlot {
                        plain: false,
                        newed: false,
                    });
                    self.env.push((x.text.clone(), slot));
                    self.walk(body);
                    self.env.pop();
                }
                Cmd::Seq(a, b) | Cmd::Choice(a, b) => {
                    self.walk(a);
                    self.walk(b);
                }
                Cmd::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    // Desugaring turns the guard into `assume` commands,
                    // so its dereferences are licensed like any other.
                    self.scan_reads(cond, false);
                    self.walk(then_branch);
                    self.walk(else_branch);
                }
                Cmd::Assign { lhs, rhs, span } => {
                    self.scan_lhs_reads(lhs);
                    self.scan_reads(rhs, false);
                    self.assign(lhs, false, *span);
                }
                Cmd::AssignNew { lhs, span } => {
                    self.scan_lhs_reads(lhs);
                    self.assign(lhs, true, *span);
                }
                Cmd::Call { proc, args, span } => {
                    for a in args {
                        self.scan_reads(a, true);
                    }
                    let args = args
                        .iter()
                        .map(|a| match designator(a) {
                            Some((root, segs)) => match self.resolve(&root) {
                                Some(root) => Arg::Obj(root, segs),
                                None => Arg::Other,
                            },
                            None => Arg::Other,
                        })
                        .collect();
                    self.out.events.push(Event::Call {
                        callee: proc.text.clone(),
                        args,
                        span: *span,
                    });
                }
            }
        }
    }
    let mut c = Collector {
        params,
        env: Vec::new(),
        out: BodyEvents {
            events: Vec::new(),
            reads: Vec::new(),
            locals: Vec::new(),
            reassigned_params: BTreeSet::new(),
        },
    };
    c.walk(body);
    c.out
}

/// Resolution of one event against the group structure.
pub enum Resolution {
    /// The event demands these frame entries (one per licensed location).
    Entries(Vec<FrameEntry>),
    /// The event is licensed by freshness and demands nothing.
    Fresh,
    /// The demand cannot be expressed as a modifies entry rooted at a
    /// formal (write through a non-fresh local or reassigned formal, or a
    /// slot chain with no elementwise rep inclusion).
    Unexpressible(String),
}

/// Lifts a segment path (possibly containing slots) to a pure attribute
/// path licensing the same location. Slot and element accesses are lifted
/// through the elementwise rep inclusions of the array field; a path
/// without a suitable `maps elem` clause is inexpressible.
fn lift_segs(graph: &GroupGraph, segs: &[Seg]) -> Option<Vec<String>> {
    let slot_at = segs.iter().position(|s| matches!(s, Seg::Slot));
    let Some(j) = slot_at else {
        return Some(
            segs.iter()
                .map(|s| match s {
                    Seg::Attr(a) => a.clone(),
                    Seg::Slot => unreachable!("no slots in this branch"),
                })
                .collect(),
        );
    };
    if j == 0 {
        // A slot of a bare parameter: no field declaration carries the
        // elementwise inclusion, so there is nothing to license through.
        return None;
    }
    let Seg::Attr(arr) = &segs[j - 1] else {
        return None;
    };
    let rest = lift_segs(graph, &segs[j + 1..])?;
    for (mapped, into, elementwise) in graph.maps.get(arr).into_iter().flatten() {
        if *elementwise && (rest.is_empty() || graph.covers(mapped, &rest)) {
            if let Some(i) = into.first() {
                let mut path: Vec<String> = segs[..j - 1]
                    .iter()
                    .map(|s| match s {
                        Seg::Attr(a) => a.clone(),
                        Seg::Slot => unreachable!("j is the first slot"),
                    })
                    .collect();
                path.push(i.clone());
                return Some(path);
            }
        }
    }
    None
}

/// Resolves a designator demand (root + segments + extra callee path) to
/// frame entries, handling freshness and slot lifting.
fn resolve_demand(
    graph: &GroupGraph,
    body: &BodyEvents,
    root: Root,
    segs: &[Seg],
    callee_path: &[String],
    what: &str,
) -> Resolution {
    match root {
        Root::Local(slot) => {
            if body.locals[slot].is_fresh() {
                Resolution::Fresh
            } else {
                Resolution::Unexpressible(format!(
                    "{what} through a local that is not provably fresh"
                ))
            }
        }
        Root::Param(i) => {
            if body.reassigned_params.contains(&i) {
                return Resolution::Unexpressible(format!(
                    "{what} through a reassigned formal parameter"
                ));
            }
            let mut all: Vec<Seg> = segs.to_vec();
            all.extend(callee_path.iter().cloned().map(Seg::Attr));
            match lift_segs(graph, &all).and_then(|p| graph.bound(p)) {
                Some(path) if !path.is_empty() => {
                    Resolution::Entries(vec![FrameEntry { param: i, path }])
                }
                Some(_) => Resolution::Unexpressible(format!(
                    "{what} targets a bare parameter and licenses nothing"
                )),
                None => Resolution::Unexpressible(format!(
                    "{what} has no covering data-group path (missing `maps elem` clause \
                     or unboundable recursion)"
                )),
            }
        }
    }
}

/// The needed frame entries of one event, given the callee frames known so
/// far. Returns the demanded entries plus any inexpressibility notes.
pub fn event_demands(
    graph: &GroupGraph,
    body: &BodyEvents,
    event: &Event,
    frames: &BTreeMap<String, BTreeSet<FrameEntry>>,
) -> (Vec<FrameEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut notes = Vec::new();
    match event {
        Event::Write { root, segs, .. } => {
            match resolve_demand(graph, body, *root, segs, &[], "write") {
                Resolution::Entries(es) => entries.extend(es),
                Resolution::Fresh => {}
                Resolution::Unexpressible(n) => notes.push(n),
            }
        }
        Event::Call { callee, args, .. } => {
            let Some(callee_frame) = frames.get(callee) else {
                return (entries, notes);
            };
            for entry in callee_frame {
                if let Some(Arg::Obj(root, segs)) = args.get(entry.param) {
                    match resolve_demand(
                        graph,
                        body,
                        *root,
                        segs,
                        &entry.path,
                        &format!("call to `{callee}`"),
                    ) {
                        Resolution::Entries(es) => entries.extend(es),
                        Resolution::Fresh => {}
                        Resolution::Unexpressible(n) => notes.push(n),
                    }
                }
            }
        }
    }
    (entries, notes)
}

/// The `reads` entries one dereference demands, plus any
/// inexpressibility notes — the read-side analogue of [`event_demands`].
pub fn read_demands(
    graph: &GroupGraph,
    body: &BodyEvents,
    read: &ReadEvent,
) -> (Vec<FrameEntry>, Vec<String>) {
    match resolve_demand(graph, body, read.root, &read.segs, &[], "read") {
        Resolution::Entries(es) => (es, Vec::new()),
        Resolution::Fresh => (Vec::new(), Vec::new()),
        Resolution::Unexpressible(n) => (Vec::new(), vec![n]),
    }
}

/// Per-procedure result of the static phase.
pub struct ProcFrames {
    /// Declared modifies entries (name form).
    pub declared: BTreeSet<FrameEntry>,
    /// Entries the body demands beyond `declared`, after fixpoint.
    pub inferred: BTreeSet<FrameEntry>,
    /// Formal parameter names (for rendering).
    pub params: Vec<String>,
}

/// Result of the static may-write fixpoint.
pub struct StaticAnalysis {
    /// Frames per procedure name (implemented procedures get `inferred`
    /// entries; interface-only procedures carry just their declaration).
    pub procs: BTreeMap<String, ProcFrames>,
    /// Inexpressible demands encountered (phase 2 is the backstop).
    pub notes: Vec<String>,
}

/// Declared modifies entries of `proc` in name form.
pub fn declared_entries(scope: &Scope, proc: oolong_sema::ProcId) -> BTreeSet<FrameEntry> {
    scope
        .proc_info(proc)
        .modifies
        .iter()
        .map(|t| FrameEntry {
            param: t.param,
            path: t
                .path
                .iter()
                .map(|&a| scope.attr_info(a).name.clone())
                .collect(),
        })
        .collect()
}

/// Runs the may-write fixpoint over every implementation in `scope`.
pub fn static_frames(scope: &Scope, graph: &GroupGraph) -> StaticAnalysis {
    let mut procs: BTreeMap<String, ProcFrames> = BTreeMap::new();
    for (id, info) in scope.procs() {
        procs.insert(
            info.name.clone(),
            ProcFrames {
                declared: declared_entries(scope, id),
                inferred: BTreeSet::new(),
                params: info.params.clone(),
            },
        );
    }
    // Pre-collect events per implementation.
    let impls: Vec<(String, BodyEvents)> = scope
        .impls()
        .map(|(_, info)| {
            let pinfo = scope.proc_info(info.proc);
            (
                pinfo.name.clone(),
                collect_events(&pinfo.params, &info.body),
            )
        })
        .collect();
    let mut notes: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        // Effective frames snapshot for callee lookup.
        let frames: BTreeMap<String, BTreeSet<FrameEntry>> = procs
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    f.declared.union(&f.inferred).cloned().collect(),
                )
            })
            .collect();
        for (proc_name, body) in &impls {
            for event in &body.events {
                let (demands, ns) = event_demands(graph, body, event, &frames);
                for n in ns {
                    notes.insert(format!("{proc_name}: {n}"));
                }
                let pf = procs.get_mut(proc_name).expect("impl has a proc decl");
                for e in demands {
                    let effective: BTreeSet<FrameEntry> =
                        pf.declared.union(&pf.inferred).cloned().collect();
                    if !graph.frame_covers(&effective, &e) {
                        pf.inferred.insert(e);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    StaticAnalysis {
        procs,
        notes: notes.into_iter().collect(),
    }
}

/// Per-procedure result of the static may-read phase.
pub struct ProcReads {
    /// Declared `reads` entries in name form; `None` when the declaration
    /// carries no `reads` clause (reads unconstrained, no obligations).
    pub declared: Option<BTreeSet<FrameEntry>>,
    /// Entries the body's (non-call-argument) dereferences demand.
    pub demanded: BTreeSet<FrameEntry>,
    /// Formal parameter names (for rendering).
    pub params: Vec<String>,
}

/// Result of the static may-read analysis.
pub struct ReadAnalysis {
    /// Read frames per *implemented* procedure name.
    pub procs: BTreeMap<String, ProcReads>,
    /// Inexpressible read demands (phase 2 is the backstop).
    pub notes: Vec<String>,
}

/// Declared `reads` entries of `proc` in name form (`None` = no clause).
pub fn declared_read_entries(
    scope: &Scope,
    proc: oolong_sema::ProcId,
) -> Option<BTreeSet<FrameEntry>> {
    scope.proc_info(proc).reads.as_ref().map(|reads| {
        reads
            .iter()
            .map(|t| FrameEntry {
                param: t.param,
                path: t
                    .path
                    .iter()
                    .map(|&a| scope.attr_info(a).name.clone())
                    .collect(),
            })
            .collect()
    })
}

/// Runs the static may-read analysis over every implementation in `scope`.
///
/// Unlike the may-write fixpoint there is no propagation through calls:
/// the static reads model is *permissive* at call sites (a callee's
/// dereferences are its own concern, checked against its own clause), so
/// one pass over the direct dereferences of each body suffices.
/// Call-argument dereferences are deliberately skipped here (see
/// [`ReadEvent::in_call`]) — the prover licenses them at the call site,
/// and the repair phase translates any refutation back to an entry.
pub fn static_read_frames(scope: &Scope, graph: &GroupGraph) -> ReadAnalysis {
    let mut procs: BTreeMap<String, ProcReads> = BTreeMap::new();
    let mut notes: BTreeSet<String> = BTreeSet::new();
    for (_, info) in scope.impls() {
        let pinfo = scope.proc_info(info.proc);
        let body = collect_events(&pinfo.params, &info.body);
        let entry = procs
            .entry(pinfo.name.clone())
            .or_insert_with(|| ProcReads {
                declared: declared_read_entries(scope, info.proc),
                demanded: BTreeSet::new(),
                params: pinfo.params.clone(),
            });
        for read in &body.reads {
            if read.in_call {
                continue;
            }
            match resolve_demand(graph, &body, read.root, &read.segs, &[], "read") {
                Resolution::Entries(es) => entry.demanded.extend(es),
                Resolution::Fresh => {}
                Resolution::Unexpressible(n) => {
                    notes.insert(format!("{}: {n}", pinfo.name));
                }
            }
        }
    }
    ReadAnalysis {
        procs,
        notes: notes.into_iter().collect(),
    }
}

/// Canonicalizes a proc's inferred entries: absorbs entries covered by the
/// declared frame or by other kept entries, then lifts complete member
/// sets of written fields to their covering group.
///
/// `rigid` entries are call-inherited: owner exclusion at a call transfers
/// pointwise by entry *identity*, so a callee's entry must survive in the
/// caller's list verbatim — a covering group licenses the writes but does
/// not entail the callee entry's exclusion obligation. Rigid entries are
/// kept unless the declaration already carries them literally, and are
/// never absorbed or consumed by group lifting.
pub fn canonicalize(
    graph: &GroupGraph,
    declared: &BTreeSet<FrameEntry>,
    inferred: &BTreeSet<FrameEntry>,
    rigid: &BTreeSet<FrameEntry>,
) -> BTreeSet<FrameEntry> {
    // Coverage-power order: group-licensing entries first, then shorter
    // paths, then lexicographic — so `t.g` absorbs `t.f` in one pass.
    let mut entries: Vec<&FrameEntry> = inferred.iter().collect();
    entries.sort_by_key(|e| {
        let last = e.path.last().map(String::as_str).unwrap_or("");
        (!graph.is_group(last), e.path.len(), e.param, e.path.clone())
    });
    let mut kept: BTreeSet<FrameEntry> = rigid.difference(declared).cloned().collect();
    for e in entries {
        let mut cover: BTreeSet<FrameEntry> = declared.clone();
        cover.extend(kept.iter().cloned());
        if !graph.frame_covers(&cover, e) {
            kept.insert(e.clone());
        }
    }
    // Group lifting: per parameter, replace a complete set of written
    // member fields by the group itself (largest groups first).
    let params: BTreeSet<usize> = kept.iter().map(|e| e.param).collect();
    for param in params {
        let written: BTreeSet<String> = kept
            .iter()
            .filter(|e| e.param == param && e.path.len() == 1 && graph.is_field(&e.path[0]))
            .map(|e| e.path[0].clone())
            .collect();
        if written.is_empty() {
            continue;
        }
        let mut groups: Vec<(String, BTreeSet<String>)> = graph
            .kinds
            .iter()
            .filter(|(_, k)| **k == AttrKind::Group)
            .map(|(g, _)| (g.clone(), graph.member_fields(g)))
            .filter(|(_, members)| !members.is_empty())
            .collect();
        groups.sort_by_key(|(g, members)| (usize::MAX - members.len(), g.clone()));
        let mut remaining = written;
        for (g, members) in groups {
            if members.is_subset(&remaining) {
                for f in &members {
                    let e = FrameEntry {
                        param,
                        path: vec![f.clone()],
                    };
                    if !rigid.contains(&e) {
                        kept.remove(&e);
                    }
                }
                remaining = remaining.difference(&members).cloned().collect();
                kept.insert(FrameEntry {
                    param,
                    path: vec![g.clone()],
                });
            }
        }
    }
    // Final absorb pass (lifted groups may now cover longer entries).
    let snapshot: Vec<FrameEntry> = kept.iter().cloned().collect();
    for e in snapshot {
        if rigid.contains(&e) {
            continue;
        }
        let mut cover: BTreeSet<FrameEntry> = declared.clone();
        cover.extend(kept.iter().filter(|k| **k != e).cloned());
        if graph.frame_covers(&cover, &e) {
            kept.remove(&e);
        }
    }
    kept
}

/// The final per-procedure frames: the canonicalized inferred entries with
/// call-inherited callee entries kept verbatim, resolved bottom-up over
/// the call graph to a fixpoint.
///
/// A caller's list must carry each callee entry literally (see
/// [`canonicalize`] on rigidity), and the callee's *final* list is itself
/// canonical — so the rigid sets depend on the callees' results. The loop
/// re-derives every procedure's canonical frame from the current snapshot
/// until nothing changes; on a call DAG this settles in depth-many rounds,
/// and the round cap makes pathological (recursive) inputs terminate with
/// the repair phase as backstop.
pub fn final_frames(
    scope: &Scope,
    graph: &GroupGraph,
    analysis: &StaticAnalysis,
) -> BTreeMap<String, BTreeSet<FrameEntry>> {
    let impls: Vec<(String, BodyEvents)> = scope
        .impls()
        .map(|(_, info)| {
            let pinfo = scope.proc_info(info.proc);
            (
                pinfo.name.clone(),
                collect_events(&pinfo.params, &info.body),
            )
        })
        .collect();
    let mut canon: BTreeMap<String, BTreeSet<FrameEntry>> = analysis
        .procs
        .iter()
        .map(|(name, f)| {
            (
                name.clone(),
                canonicalize(graph, &f.declared, &f.inferred, &BTreeSet::new()),
            )
        })
        .collect();
    for _ in 0..=impls.len() {
        let mut changed = false;
        for (proc_name, body) in &impls {
            let frames = &analysis.procs[proc_name];
            let mut rigid: BTreeSet<FrameEntry> = BTreeSet::new();
            for event in &body.events {
                let Event::Call { callee, args, .. } = event else {
                    continue;
                };
                let Some(callee_frames) = analysis.procs.get(callee) else {
                    continue;
                };
                let final_callee: BTreeSet<FrameEntry> = callee_frames
                    .declared
                    .union(&canon[callee])
                    .cloned()
                    .collect();
                // Only a bare-parameter argument makes the substituted
                // callee entry a literal caller-list path: that is the
                // pointwise-transfer case rigidity exists for. Arguments
                // reached through pivots resolve to a *bounding* entry
                // whose exclusion obligation is discharged from the
                // ground rep-inclusion facts instead, and absorbing it
                // stays correct.
                for entry in &final_callee {
                    if let Some(Arg::Obj(Root::Param(i), segs)) = args.get(entry.param) {
                        if segs.is_empty() && !body.reassigned_params.contains(i) {
                            rigid.insert(FrameEntry {
                                param: *i,
                                path: entry.path.clone(),
                            });
                        }
                    }
                }
            }
            let next = canonicalize(graph, &frames.declared, &frames.inferred, &rigid);
            if canon[proc_name] != next {
                canon.insert(proc_name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    canon
}

/// Collects every `proc` declaration of a program, recursing into modules.
pub fn all_proc_decls(program: &Program) -> Vec<&ProcDecl> {
    fn go<'a>(decls: &'a [Decl], out: &mut Vec<&'a ProcDecl>) {
        for d in decls {
            match d {
                Decl::Proc(p) => out.push(p),
                Decl::Module(m) => go(&m.decls, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&program.decls, &mut out);
    out
}

/// Collects every `field` declaration of a program, recursing into modules.
pub fn all_field_decls(program: &Program) -> Vec<&FieldDecl> {
    fn go<'a>(decls: &'a [Decl], out: &mut Vec<&'a FieldDecl>) {
        for d in decls {
            match d {
                Decl::Field(f) => out.push(f),
                Decl::Module(m) => go(&m.decls, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&program.decls, &mut out);
    out
}

/// Collects the names of every implemented procedure, recursing into
/// modules.
pub fn implemented_procs(program: &Program) -> BTreeSet<String> {
    fn go(decls: &[Decl], out: &mut BTreeSet<String>) {
        for d in decls {
            match d {
                Decl::Impl(i) => {
                    out.insert(i.name.text.clone());
                }
                Decl::Module(m) => go(&m.decls, out),
                _ => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    go(&program.decls, &mut out);
    out
}
