//! Automatic frame inference for oolong programs.
//!
//! Given a unit whose procedures lack (or under-specify) their `modifies`
//! clauses, this crate infers candidate frames in two phases:
//!
//! 1. **Static analysis** ([`analysis`]): a may-write analysis over
//!    guarded-command bodies, run to fixpoint across the call graph, with
//!    concrete write locations lifted to the smallest covering data groups —
//!    plus a may-*read* sibling that completes declared `reads` clauses
//!    (and, opt-in, proposes new ones) from the body's direct dereferences.
//! 2. **Counterexample-guided repair** ([`repair`]): candidates are checked
//!    through the verification engine; each refuted modifies obligation or
//!    read license names the offending location, which is translated into
//!    the minimal annotation edit (a `modifies` extension, an `in`
//!    membership, or a `reads` extension) and re-checked, iterating to
//!    fixpoint under a bounded round count. For reads the repair phase is
//!    load-bearing by design: the static phase skips call-argument
//!    dereferences, whose licenses only the prover attributes precisely.
//!
//! Proposals are emitted as span-anchored, machine-applicable edits
//! ([`edits`]); [`report`] renders them as JSON (shared byte-for-byte with
//! the serve daemon) and measures accuracy against generator ground truth.

pub mod analysis;
pub mod edits;
pub mod repair;
pub mod report;
pub mod workload;

pub use analysis::{FrameEntry, GroupGraph, ReadAnalysis, ReadEvent};
pub use edits::{
    apply_edits, render_edits, strip_implemented_modifies, strip_implemented_reads, Edit, Proposal,
    ProposalKind, Provenance,
};
pub use repair::{infer, InferOptions, InferOutcome};
pub use report::{accuracy, infer_json, Accuracy, GroundTruth, Match};
pub use workload::{resolve_spec, InferUnit};
