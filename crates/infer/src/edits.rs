//! Proposals and machine-applicable span-anchored edits.
//!
//! A [`Proposal`] is an annotation change: extending a procedure's
//! `modifies` list with a frame entry, or adding a local `in` membership
//! to a field declaration. [`render_edits`] turns proposals into concrete
//! [`Edit`]s anchored in the *base* source (insertion points computed from
//! declaration spans), and [`apply_edits`] splices them. Edits at the same
//! anchor apply in listed order: a later insert lands after the text of an
//! earlier one, so per-proposal edits compose to the same result as the
//! grouped rendering used internally.

use std::collections::BTreeMap;

use oolong_syntax::ast::Program;

use crate::analysis::{all_field_decls, all_proc_decls, implemented_procs, FrameEntry};

/// Where a proposal came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Phase 1: the static may-write analysis.
    Static,
    /// Phase 2: translated from a refuted obligation.
    Repair,
}

impl Provenance {
    /// Stable lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::Static => "static",
            Provenance::Repair => "repair",
        }
    }
}

/// The annotation change a proposal makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposalKind {
    /// Append `entry` to the `modifies` list of the procedure.
    Extend(FrameEntry),
    /// Add `field in group` to the field's declaration.
    Membership {
        /// The field gaining a membership.
        field: String,
        /// The group it joins.
        group: String,
    },
    /// Append `entry` to the `reads` clause of the procedure (creating
    /// the clause when the declaration has none).
    ReadsExtend(FrameEntry),
}

/// One proposed annotation edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// The procedure whose obligation demanded the change.
    pub proc: String,
    /// What to change.
    pub kind: ProposalKind,
    /// Phase that produced it.
    pub provenance: Provenance,
    /// Repair round that produced it (0 for static).
    pub round: usize,
}

impl Proposal {
    /// Renders the proposal target, e.g. `t.c.g` or `b in g`.
    pub fn target(&self, params_of: &dyn Fn(&str) -> Vec<String>) -> String {
        match &self.kind {
            ProposalKind::Extend(e) | ProposalKind::ReadsExtend(e) => {
                e.render(&params_of(&self.proc))
            }
            ProposalKind::Membership { field, group } => format!("{field} in {group}"),
        }
    }

    /// Stable kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            ProposalKind::Extend(_) => "modifies-extension",
            ProposalKind::Membership { .. } => "group-membership",
            ProposalKind::ReadsExtend(_) => "reads-extension",
        }
    }
}

/// A span-anchored text edit: replace `source[start..end]` with `insert`
/// (`start == end` for pure insertion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte offset where the edit starts.
    pub start: usize,
    /// Byte offset where the edit ends.
    pub end: usize,
    /// Replacement text.
    pub insert: String,
}

/// Renders one edit per proposal against the base program. Returns `None`
/// for a proposal whose target declaration cannot be found (the caller
/// reports it as a note).
///
/// `modifies` extensions anchor after the last declared modifies target —
/// or after the parameter list's closing paren when the clause is missing —
/// so they never land inside a trailing `reads` clause (the grammar puts
/// `modifies` strictly before `reads`). `reads` extensions anchor at the
/// end of the declaration. Proposals at the same anchor compose in listed
/// order, so callers keep `ReadsExtend` proposals after `Extend` ones.
pub fn render_edits(program: &Program, source: &str, proposals: &[Proposal]) -> Vec<Option<Edit>> {
    let procs: BTreeMap<&str, _> = all_proc_decls(program)
        .into_iter()
        .map(|p| (p.name.text.as_str(), p))
        .collect();
    let fields: BTreeMap<&str, _> = all_field_decls(program)
        .into_iter()
        .map(|f| (f.name.text.as_str(), f))
        .collect();
    let mut prior_ext: BTreeMap<&str, usize> = BTreeMap::new();
    let mut prior_mem: BTreeMap<&str, usize> = BTreeMap::new();
    let mut prior_reads: BTreeMap<&str, usize> = BTreeMap::new();
    proposals
        .iter()
        .map(|p| match &p.kind {
            ProposalKind::Extend(entry) => {
                let decl = procs.get(p.proc.as_str())?;
                let params: Vec<String> = decl.params.iter().map(|i| i.text.clone()).collect();
                let prior = prior_ext.entry(p.proc.as_str()).or_insert(0);
                let has_list = !decl.modifies.is_empty() || *prior > 0;
                *prior += 1;
                let anchor = if let Some(last) = decl.modifies.last() {
                    last.span().end as usize
                } else {
                    let start = decl.span.start as usize;
                    let end = decl.span.end as usize;
                    start + source[start..end].find(')').map_or(end - start, |i| i + 1)
                };
                let text = if has_list {
                    format!(", {}", entry.render(&params))
                } else {
                    format!(" modifies {}", entry.render(&params))
                };
                Some(Edit {
                    start: anchor,
                    end: anchor,
                    insert: text,
                })
            }
            ProposalKind::ReadsExtend(entry) => {
                let decl = procs.get(p.proc.as_str())?;
                let params: Vec<String> = decl.params.iter().map(|i| i.text.clone()).collect();
                let prior = prior_reads.entry(p.proc.as_str()).or_insert(0);
                let has_list = decl.reads.as_ref().is_some_and(|r| !r.is_empty()) || *prior > 0;
                *prior += 1;
                let anchor = match decl.reads.as_ref().and_then(|r| r.last()) {
                    Some(last) => last.span().end as usize,
                    None => decl.span.end as usize,
                };
                let text = if has_list {
                    format!(", {}", entry.render(&params))
                } else {
                    format!(" reads {}", entry.render(&params))
                };
                Some(Edit {
                    start: anchor,
                    end: anchor,
                    insert: text,
                })
            }
            ProposalKind::Membership { field, group } => {
                let decl = fields.get(field.as_str())?;
                let prior = prior_mem.entry(field.as_str()).or_insert(0);
                let has_list = !decl.includes.is_empty() || *prior > 0;
                *prior += 1;
                let anchor = if let Some(last) = decl.includes.last() {
                    last.span.end as usize
                } else {
                    decl.name.span.end as usize
                };
                let text = if has_list {
                    format!(", {group}")
                } else {
                    format!(" in {group}")
                };
                Some(Edit {
                    start: anchor,
                    end: anchor,
                    insert: text,
                })
            }
        })
        .collect()
}

/// Applies edits to `source`. Same-anchor inserts land in listed order.
pub fn apply_edits(source: &str, edits: &[Edit]) -> String {
    let mut order: Vec<usize> = (0..edits.len()).collect();
    order.sort_by_key(|&i| (edits[i].start, i));
    let mut out = source.to_string();
    for &i in order.iter().rev() {
        let e = &edits[i];
        out.replace_range(e.start..e.end, &e.insert);
    }
    out
}

/// Removes the `modifies` clause of every procedure that has an
/// implementation in the unit (interface-only procedures keep their
/// declared frames — there is no body to infer one from). Returns the
/// stripped source.
pub fn strip_implemented_modifies(source: &str) -> Result<String, String> {
    let program = oolong_syntax::parse_program(source).map_err(|d| format!("parse error: {d}"))?;
    let implemented = implemented_procs(&program);
    let mut deletions: Vec<(usize, usize)> = Vec::new();
    for decl in all_proc_decls(&program) {
        if decl.modifies.is_empty() || !implemented.contains(&decl.name.text) {
            continue;
        }
        let first = decl.modifies[0].span().start as usize;
        let Some(kw) = source[..first].rfind("modifies") else {
            continue;
        };
        // A trailing `reads` clause survives the strip: end the deletion at
        // its keyword instead of the declaration end (which covers it).
        let end = match decl.reads.as_ref().and_then(|r| r.first()) {
            Some(first_read) => {
                let rs = first_read.span().start as usize;
                match source[..rs].rfind("reads") {
                    Some(rkw) => rkw,
                    None => continue,
                }
            }
            None => decl.span.end as usize,
        };
        let mut start = kw;
        if decl.reads.is_none() {
            while start > 0 && source.as_bytes()[start - 1].is_ascii_whitespace() {
                start -= 1;
            }
        }
        deletions.push((start, end));
    }
    deletions.sort();
    let mut out = source.to_string();
    for &(start, end) in deletions.iter().rev() {
        out.replace_range(start..end, "");
    }
    Ok(out)
}

/// Removes the `reads` clause of every procedure that has an implementation
/// in the unit, mirroring [`strip_implemented_modifies`]. Returns the
/// stripped source.
pub fn strip_implemented_reads(source: &str) -> Result<String, String> {
    let program = oolong_syntax::parse_program(source).map_err(|d| format!("parse error: {d}"))?;
    let implemented = implemented_procs(&program);
    let mut deletions: Vec<(usize, usize)> = Vec::new();
    for decl in all_proc_decls(&program) {
        let Some(reads) = decl.reads.as_ref().filter(|r| !r.is_empty()) else {
            continue;
        };
        if !implemented.contains(&decl.name.text) {
            continue;
        }
        let first = reads[0].span().start as usize;
        let Some(kw) = source[..first].rfind("reads") else {
            continue;
        };
        let mut start = kw;
        while start > 0 && source.as_bytes()[start - 1].is_ascii_whitespace() {
            start -= 1;
        }
        deletions.push((start, decl.span.end as usize));
    }
    deletions.sort();
    let mut out = source.to_string();
    for &(start, end) in deletions.iter().rev() {
        out.replace_range(start..end, "");
    }
    Ok(out)
}
